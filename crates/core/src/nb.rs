//! Nonblocking-mode hooks — the core side of the deferred op-DAG.
//!
//! GraphBLAS allows an implementation to run in *nonblocking* mode:
//! operations may be queued rather than executed, as long as the
//! program cannot tell the difference when it finally reads data out.
//! PyGB's paper evaluates per-op dispatch; this module adds the
//! deferred execution mode on top of the same dispatch layer.
//!
//! The actual DAG, fusion pass, and scheduler live in the
//! `pygb-runtime` crate. To avoid a dependency cycle (that crate calls
//! back into [`crate::dispatch`] to execute nodes), the engine is
//! installed here as a process-wide table of function pointers
//! ([`EngineOps`]) via [`install_engine`]. Everything else in this
//! module is bookkeeping shared by the two crates:
//!
//! - **Mode flag.** [`enter`] returns a guard; while at least one
//!   guard is alive on the current thread, assignments *enqueue*
//!   ([`VecOpDesc`]/[`MatOpDesc`]) instead of dispatching.
//! - **Pending-value identity.** At enqueue time the target container's
//!   store handle is swapped for a freshly minted empty store of the
//!   same shape and dtype. The `Arc` pointer identity of that
//!   placeholder *is* the name of the pending value: expression
//!   snapshots that capture it become DAG edges for free, and the
//!   engine's thread-local resolution map translates it to the real
//!   store after the node runs.
//! - **Flush-on-read.** Every blocking entry point and every data
//!   accessor resolves operands through `resolved_vec`/
//!   `resolved_mat`, which flush the DAG when they see a pending
//!   placeholder.
//!
//! The DAG and its resolution map are thread-local: containers holding
//! unflushed placeholders must be read (or [`crate::Vector::settle`]d)
//! on the thread that deferred them before crossing threads.

use std::cell::Cell;
use std::sync::{Arc, OnceLock};

use gbtl::ops::kind::{BinaryOpKind, KindMonoid};
use gbtl::Indices;

use crate::error::{PygbError, Result};
use crate::expr::{MatrixExpr, VectorExpr};
use crate::matrix::Matrix;
use crate::store::{MatrixStore, VectorStore};
use crate::value::DynScalar;
use crate::vector::Vector;

// ---------------------------------------------------------------------
// Deferred-operation descriptors.
// ---------------------------------------------------------------------

/// The right-hand side of a deferred vector assignment.
#[derive(Clone, Debug)]
pub enum VecRhs {
    /// An expression (`w[m] = A @ u`, ...).
    Expr(VectorExpr),
    /// A broadcast constant (`w[m][:] = k`).
    Scalar(DynScalar),
}

/// The right-hand side of a deferred matrix assignment.
#[derive(Clone, Debug)]
pub enum MatRhs {
    /// An expression (`C[M] = A @ B`, ...).
    Expr(MatrixExpr),
    /// A broadcast constant.
    Scalar(DynScalar),
}

/// One deferred vector operation: everything
/// `dispatch::eval_vector` / `dispatch::assign_vector_scalar` would
/// have consumed, plus
/// the output placeholder minted at enqueue time.
#[derive(Clone, Debug)]
pub struct VecOpDesc {
    /// The target's store *before* this operation (old `C`, merged
    /// under mask/accumulate semantics).
    pub target: Arc<VectorStore>,
    /// The placeholder the target container now holds; its pointer
    /// identity names this node's result until the flush resolves it.
    pub out: Arc<VectorStore>,
    /// Optional mask store and complement flag.
    pub mask: Option<(Arc<VectorStore>, bool)>,
    /// Accumulator, if the assignment was `+=`.
    pub accum: Option<BinaryOpKind>,
    /// GraphBLAS replace flag.
    pub replace: bool,
    /// Index region for `w[i:j] = ...` forms.
    pub region: Option<Indices>,
    /// What to evaluate.
    pub rhs: VecRhs,
}

/// One deferred matrix operation (see [`VecOpDesc`]).
#[derive(Clone, Debug)]
pub struct MatOpDesc {
    /// The target's store before this operation.
    pub target: Arc<MatrixStore>,
    /// The freshly minted output placeholder.
    pub out: Arc<MatrixStore>,
    /// Optional mask store and complement flag.
    pub mask: Option<(Arc<MatrixStore>, bool)>,
    /// Accumulator, if the assignment was `+=`.
    pub accum: Option<BinaryOpKind>,
    /// GraphBLAS replace flag.
    pub replace: bool,
    /// Index region for `C[i:j, k:l] = ...` forms.
    pub region: Option<(Indices, Indices)>,
    /// What to evaluate.
    pub rhs: MatRhs,
}

impl VecOpDesc {
    /// A *plain* node: no mask, no accumulator, no index region, and an
    /// expression right-hand side — the shape the fusion and CSE passes
    /// reason about without merge semantics getting in the way.
    pub fn is_plain(&self) -> bool {
        self.mask.is_none()
            && self.accum.is_none()
            && self.region.is_none()
            && matches!(self.rhs, VecRhs::Expr(_))
    }

    /// Whether executing this node writes the target wholesale without
    /// reading its prior contents: no mask, no accumulator, no region.
    /// (Both expression and scalar-broadcast right-hand sides fully
    /// overwrite in that configuration.) The liveness pass uses this to
    /// classify the `target` edge as a non-reading use.
    pub fn overwrites_fully(&self) -> bool {
        self.mask.is_none() && self.accum.is_none() && self.region.is_none()
    }
}

impl MatOpDesc {
    /// Matrix analog of [`VecOpDesc::is_plain`].
    pub fn is_plain(&self) -> bool {
        self.mask.is_none()
            && self.accum.is_none()
            && self.region.is_none()
            && matches!(self.rhs, MatRhs::Expr(_))
    }

    /// Matrix analog of [`VecOpDesc::overwrites_fully`].
    pub fn overwrites_fully(&self) -> bool {
        self.mask.is_none() && self.accum.is_none() && self.region.is_none()
    }
}

/// What the engine knows about a store handle.
pub enum Resolution<S> {
    /// Not produced by a deferred operation — use as-is.
    Clean,
    /// Produced by a deferred operation that has since executed; here
    /// is the real store.
    Resolved(Arc<S>),
    /// Produced by a deferred operation that has not run yet.
    Pending,
}

/// The function-pointer vtable the `pygb-runtime` crate installs.
pub struct EngineOps {
    /// Append a deferred vector operation to the calling thread's DAG.
    pub enqueue_vector: fn(VecOpDesc) -> Result<()>,
    /// Append a deferred matrix operation to the calling thread's DAG.
    pub enqueue_matrix: fn(MatOpDesc) -> Result<()>,
    /// Fuse, schedule, and execute every node in the calling thread's
    /// DAG. Must be a no-op (Ok) when the DAG is empty or mid-flush.
    pub flush: fn() -> Result<()>,
    /// Classify a vector store handle against the thread's DAG state.
    pub resolve_vector: fn(&Arc<VectorStore>) -> Resolution<VectorStore>,
    /// Classify a matrix store handle against the thread's DAG state.
    pub resolve_matrix: fn(&Arc<MatrixStore>) -> Resolution<MatrixStore>,
    /// Reduce a (possibly pending) vector to a scalar, fusing the
    /// reduction into the producing eWise node when profitable.
    /// Returns `Ok(None)` when the store is not pending (the caller
    /// then dispatches a plain reduction itself).
    pub reduce_vector: fn(&Arc<VectorStore>, KindMonoid) -> Result<Option<DynScalar>>,
}

static ENGINE: OnceLock<EngineOps> = OnceLock::new();

thread_local! {
    /// Nesting depth of nonblocking guards on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// True while the engine is executing DAG nodes through the
    /// blocking dispatch path (so those dispatches neither re-enqueue
    /// nor re-flush).
    static SUSPENDED: Cell<bool> = const { Cell::new(false) };
}

/// Install the execution engine. Returns `false` if one was already
/// installed (the first installation wins; installing the same vtable
/// twice is harmless).
pub fn install_engine(ops: EngineOps) -> bool {
    ENGINE.set(ops).is_ok()
}

/// Whether an execution engine has been installed in this process.
pub fn engine_installed() -> bool {
    ENGINE.get().is_some()
}

fn engine() -> Option<&'static EngineOps> {
    ENGINE.get()
}

fn suspended() -> bool {
    SUSPENDED.with(|s| s.get())
}

/// Whether operations on the current thread are being deferred.
pub fn is_deferring() -> bool {
    !suspended() && DEPTH.with(|d| d.get()) > 0 && engine_installed()
}

/// Enter nonblocking mode on the current thread. Returns a guard;
/// while it (or any nested guard) is alive, assignments enqueue into
/// the thread's op-DAG instead of dispatching. Dropping the outermost
/// guard flushes.
///
/// Errors with [`PygbError::Unsupported`] if no engine is installed —
/// the mode needs the `pygb-runtime` crate (use
/// `pygb_runtime::nonblocking()`, which installs it).
pub fn enter() -> Result<DeferGuard> {
    if !engine_installed() {
        return Err(PygbError::Unsupported {
            context: "nonblocking mode requires an execution engine; link the `pygb-runtime` \
                      crate and enter the mode through `pygb_runtime::nonblocking()`"
                .to_string(),
        });
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    Ok(DeferGuard {
        _not_send: std::marker::PhantomData,
    })
}

/// RAII guard for nonblocking mode (see [`enter`]). Thread-bound: the
/// DAG it governs is thread-local.
pub struct DeferGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for DeferGuard {
    fn drop(&mut self) {
        let depth = DEPTH.with(|d| {
            let n = d.get().saturating_sub(1);
            d.set(n);
            n
        });
        if depth == 0 {
            // The outermost guard is a flush point (scope exit is a
            // terminating event). A deferred failure has nowhere to
            // surface here but a panic — use `flush()` before the
            // scope ends to handle errors as values.
            if let Err(e) = flush() {
                if !std::thread::panicking() {
                    panic!("deferred PyGB operation failed at flush: {e}");
                }
            }
        }
    }
}

/// Execute every deferred operation on the current thread's DAG.
/// Explicit flush point; no-op when nothing is pending or no engine is
/// installed.
pub fn flush() -> Result<()> {
    match engine() {
        Some(ops) if !suspended() => (ops.flush)(),
        _ => Ok(()),
    }
}

/// Blocking entry points call this before evaluating: any deferred
/// work their operands might depend on must land first.
pub(crate) fn flush_pending() -> Result<()> {
    flush()
}

/// Run `f` with deferral and flushing suppressed — how the engine
/// executes DAG nodes through the ordinary blocking dispatch path.
fn suspend<R>(f: impl FnOnce() -> R) -> R {
    SUSPENDED.with(|s| {
        struct Restore<'a>(&'a Cell<bool>, bool);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _restore = Restore(s, s.get());
        s.set(true);
        f()
    })
}

// ---------------------------------------------------------------------
// Enqueue (called from dispatch when `is_deferring()`).
// ---------------------------------------------------------------------

pub(crate) fn enqueue_vector(
    target: &mut Vector,
    mask: Option<(Arc<VectorStore>, bool)>,
    accum: Option<BinaryOpKind>,
    replace: bool,
    region: Option<Indices>,
    rhs: VecRhs,
) -> Result<()> {
    let ops = engine().expect("is_deferring() implies an installed engine");
    let _sp = pygb_obs::span(pygb_obs::Cat::Enqueue, "enqueue/vector");
    // The placeholder is a real empty store with the target's shape and
    // dtype, so size/dtype queries never need a flush.
    let out = Arc::new(VectorStore::new(target.size(), target.dtype()));
    let desc = VecOpDesc {
        target: target.store_arc(),
        out: Arc::clone(&out),
        mask,
        accum,
        replace,
        region,
        rhs,
    };
    (ops.enqueue_vector)(desc)?;
    target.store = out;
    crate::dispatch::runtime().cache().stats().record_deferred();
    Ok(())
}

pub(crate) fn enqueue_matrix(
    target: &mut Matrix,
    mask: Option<(Arc<MatrixStore>, bool)>,
    accum: Option<BinaryOpKind>,
    replace: bool,
    region: Option<(Indices, Indices)>,
    rhs: MatRhs,
) -> Result<()> {
    let ops = engine().expect("is_deferring() implies an installed engine");
    let _sp = pygb_obs::span(pygb_obs::Cat::Enqueue, "enqueue/matrix");
    let (r, c) = (target.nrows(), target.ncols());
    let out = Arc::new(MatrixStore::new(r, c, target.dtype()));
    let desc = MatOpDesc {
        target: Arc::clone(&target.store),
        out: Arc::clone(&out),
        mask,
        accum,
        replace,
        region,
        rhs,
    };
    (ops.enqueue_matrix)(desc)?;
    target.store = out;
    crate::dispatch::runtime().cache().stats().record_deferred();
    Ok(())
}

// ---------------------------------------------------------------------
// Resolution (called from dispatch and container accessors).
// ---------------------------------------------------------------------

/// Translate a possibly-pending vector store handle to its real store,
/// flushing the DAG if its producer has not run yet.
pub(crate) fn resolved_vec(store: &Arc<VectorStore>) -> Result<Arc<VectorStore>> {
    let Some(ops) = engine() else {
        return Ok(Arc::clone(store));
    };
    match (ops.resolve_vector)(store) {
        Resolution::Clean => Ok(Arc::clone(store)),
        Resolution::Resolved(real) => Ok(real),
        Resolution::Pending => {
            (ops.flush)()?;
            match (ops.resolve_vector)(store) {
                Resolution::Resolved(real) => Ok(real),
                _ => Err(unresolved()),
            }
        }
    }
}

/// Matrix analog of [`resolved_vec`].
pub(crate) fn resolved_mat(store: &Arc<MatrixStore>) -> Result<Arc<MatrixStore>> {
    let Some(ops) = engine() else {
        return Ok(Arc::clone(store));
    };
    match (ops.resolve_matrix)(store) {
        Resolution::Clean => Ok(Arc::clone(store)),
        Resolution::Resolved(real) => Ok(real),
        Resolution::Pending => {
            (ops.flush)()?;
            match (ops.resolve_matrix)(store) {
                Resolution::Resolved(real) => Ok(real),
                _ => Err(unresolved()),
            }
        }
    }
}

/// Non-flushing peek at a vector store for the analyzer's advisory
/// checks: the real store if the handle is clean or already resolved,
/// `None` if it names a pending value (whose contents are unknowable
/// without a flush the analyzer must not trigger).
pub(crate) fn peek_vec(store: &Arc<VectorStore>) -> Option<Arc<VectorStore>> {
    match engine() {
        None => Some(Arc::clone(store)),
        Some(ops) => match (ops.resolve_vector)(store) {
            Resolution::Clean => Some(Arc::clone(store)),
            Resolution::Resolved(real) => Some(real),
            Resolution::Pending => None,
        },
    }
}

/// Matrix analog of [`peek_vec`].
pub(crate) fn peek_mat(store: &Arc<MatrixStore>) -> Option<Arc<MatrixStore>> {
    match engine() {
        None => Some(Arc::clone(store)),
        Some(ops) => match (ops.resolve_matrix)(store) {
            Resolution::Clean => Some(Arc::clone(store)),
            Resolution::Resolved(real) => Some(real),
            Resolution::Pending => None,
        },
    }
}

fn unresolved() -> PygbError {
    PygbError::Unsupported {
        context: "nonblocking flush did not resolve a pending operand (was the container \
                  deferred on another thread?)"
            .to_string(),
    }
}

/// Ask the engine to reduce a vector, fusing into the producing eWise
/// node when possible. `Ok(None)` means "not pending, reduce normally".
pub(crate) fn try_fused_reduce(
    store: &Arc<VectorStore>,
    monoid: KindMonoid,
) -> Result<Option<DynScalar>> {
    match engine() {
        Some(ops) if !suspended() => (ops.reduce_vector)(store, monoid),
        _ => Ok(None),
    }
}

// ---------------------------------------------------------------------
// Node execution (called by the engine during a flush).
// ---------------------------------------------------------------------

/// Execute one deferred vector operation through the blocking dispatch
/// path and return the resulting store. The descriptor's operand
/// handles must already be substituted with resolved stores; deferral
/// and flushing are suspended for the duration so the evaluation
/// cannot re-enter the engine.
pub fn run_vec_op(desc: VecOpDesc) -> Result<VectorStore> {
    suspend(|| {
        let mut target = Vector { store: desc.target };
        match desc.rhs {
            VecRhs::Expr(expr) => crate::dispatch::eval_vector(
                &mut target,
                desc.mask,
                desc.accum,
                Some(desc.replace),
                desc.region,
                expr,
            )?,
            VecRhs::Scalar(value) => crate::dispatch::assign_vector_scalar(
                &mut target,
                desc.mask,
                desc.accum,
                desc.replace,
                desc.region,
                value,
            )?,
        }
        Ok(target.take_store())
    })
}

/// Matrix analog of [`run_vec_op`].
pub fn run_mat_op(desc: MatOpDesc) -> Result<MatrixStore> {
    suspend(|| {
        let mut target = Matrix { store: desc.target };
        match desc.rhs {
            MatRhs::Expr(expr) => crate::dispatch::eval_matrix(
                &mut target,
                desc.mask,
                desc.accum,
                Some(desc.replace),
                desc.region,
                expr,
            )?,
            MatRhs::Scalar(value) => crate::dispatch::assign_matrix_scalar(
                &mut target,
                desc.mask,
                desc.accum,
                desc.replace,
                desc.region,
                value,
            )?,
        }
        Ok(target.take_store())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_without_engine_errors() {
        // The core crate's own test binary never installs an engine,
        // so the guard constructor must refuse.
        if !engine_installed() {
            assert!(matches!(enter(), Err(PygbError::Unsupported { .. })));
        }
    }

    #[test]
    fn flush_without_engine_is_noop() {
        assert!(flush().is_ok());
    }

    #[test]
    fn resolution_defaults_to_clean() {
        let store = Arc::new(VectorStore::new(3, crate::DType::Fp64));
        let r = resolved_vec(&store).unwrap();
        assert!(Arc::ptr_eq(&r, &store));
    }
}
