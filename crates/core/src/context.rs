//! The operator context stack — Python's `with` blocks.
//!
//! "Behind the scenes, this `with` statement modifies a global stack of
//! operators. Every operation requires an operator of a specific type.
//! When an operation is called, it searches through the stack to find
//! the first operator that it can use." (Sec. IV.)
//!
//! The stack is **thread-local**, realizing the per-thread operator
//! stacks the paper identifies as the fix for its multi-threading
//! limitation: guards are `!Send`, so a context cannot leak across
//! threads, and each thread resolves against its own stack.

use std::cell::RefCell;
use std::marker::PhantomData;

use gbtl::ops::kind::{AppliedUnaryKind, BinaryOpKind, KindMonoid, KindSemiring};

/// One entry on the operator stack — what a `with gb.X:` block pushes.
///
/// Obtained from an operator object via [`ContextOp::ctx_entry`] and
/// normally managed by `enter()` guards or a [`Session`]; exposed so
/// multi-tenant embedders (the `pygb-serve` request loop) can build
/// operator contexts as data.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum CtxEntry {
    /// A semiring (provides ⊕, ⊗, a monoid, and an accumulator fallback).
    Semiring(KindSemiring),
    /// A monoid (provides ⊕/⊗ and an accumulator fallback).
    Monoid(KindMonoid),
    /// A bare binary operator.
    Binary(BinaryOpKind),
    /// A unary operator (possibly a bound binary).
    Unary(AppliedUnaryKind),
    /// An explicit accumulator.
    Accum(BinaryOpKind),
    /// The replace flag.
    Replace,
    /// The strict-types flag: lossy dtype promotions become errors.
    Strict,
}

thread_local! {
    static STACK: RefCell<Vec<CtxEntry>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one stack entry: created by the operator objects'
/// `enter()` methods, pops its entry when dropped (the end of the
/// `with` block). `!Send` by construction.
#[derive(Debug)]
pub struct ContextGuard {
    depth: usize,
    _not_send: PhantomData<*const ()>,
}

pub(crate) fn push(entry: CtxEntry) -> ContextGuard {
    let depth = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(entry);
        s.len()
    });
    ContextGuard {
        depth,
        _not_send: PhantomData,
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(
                s.len(),
                self.depth,
                "context guards dropped out of order (interleave `let _g = op.enter()` \
                 bindings so they nest like `with` blocks)"
            );
            s.pop();
        });
    }
}

/// Current stack depth (diagnostics and tests).
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// An operator object that can contribute a [`CtxEntry`] — implemented
/// by every `enter()`-capable type in [`crate::operators`].
pub trait ContextOp {
    /// The stack entry this object pushes when brought into context.
    fn ctx_entry(&self) -> CtxEntry;
}

/// An owned, thread-portable operator context — the multi-tenant
/// alternative to the implicit thread-local stack.
///
/// The `enter()` guards realize Python's `with` blocks: they mutate the
/// *calling thread's* stack, which is exactly right for the single-user
/// DSL but couples an operator context to one thread for its whole
/// lifetime. A long-lived server handling many tenants needs to *own*
/// each request's operator context as a value: build a `Session` once
/// (possibly on another thread), ship it to whichever worker picks the
/// request up, and [`activate`](Session::activate) it there for the
/// duration of the evaluation. Activation layers the session's entries
/// onto the worker's thread-local stack, so resolution (innermost wins,
/// accumulator-anywhere, monoid fallback) behaves identically to nested
/// `with` blocks and the existing single-user path is untouched.
///
/// ```
/// use pygb::{ContextOp, MinPlusSemiring, Accumulator, Session};
///
/// let session = Session::new()
///     .with(&MinPlusSemiring)
///     .with(&Accumulator::new("Min").unwrap());
/// // ... possibly on a different thread:
/// let _active = session.activate();
/// // `+=` now resolves to Min, `@` to MinPlus, until `_active` drops.
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Session {
    entries: Vec<CtxEntry>,
}

impl Session {
    /// An empty session (no operators in context).
    pub fn new() -> Session {
        Session::default()
    }

    /// Capture the calling thread's current stack as an owned session —
    /// hand-off from `with`-block code into a worker.
    pub fn capture() -> Session {
        Session {
            entries: STACK.with(|s| s.borrow().clone()),
        }
    }

    /// Builder form: append `op`'s entry (innermost so far).
    pub fn with(mut self, op: &dyn ContextOp) -> Session {
        self.entries.push(op.ctx_entry());
        self
    }

    /// Append `op`'s entry in place.
    pub fn push_op(&mut self, op: &dyn ContextOp) {
        self.entries.push(op.ctx_entry());
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the session holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Layer this session's entries onto the current thread's operator
    /// stack, innermost last. The returned guard pops them (in reverse)
    /// when dropped; like [`ContextGuard`] it is `!Send`, but the
    /// `Session` itself is `Send + Sync` and can be activated any
    /// number of times, on any thread.
    pub fn activate(&self) -> SessionGuard {
        SessionGuard {
            guards: self.entries.iter().map(|&e| push(e)).collect(),
        }
    }
}

/// RAII guard for an activated [`Session`]: pops the session's entries
/// off the thread's stack, innermost first, when dropped.
#[derive(Debug)]
pub struct SessionGuard {
    guards: Vec<ContextGuard>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        // LIFO: pop the innermost entry first (a plain Vec drop would
        // run front-to-back and trip the ordering debug assertion).
        while self.guards.pop().is_some() {}
    }
}

fn search<T>(f: impl Fn(&CtxEntry) -> Option<T>) -> Option<T> {
    STACK.with(|s| s.borrow().iter().rev().find_map(f))
}

/// Nearest semiring (for `@` / mxm / mxv / vxm).
pub(crate) fn resolve_semiring() -> Option<KindSemiring> {
    search(|e| match e {
        CtxEntry::Semiring(sr) => Some(*sr),
        _ => None,
    })
}

/// Nearest ⊕-capable operator (for `+` / eWiseAdd): a bare binary op,
/// a monoid's op, or a semiring's additive op.
pub(crate) fn resolve_add_op() -> Option<BinaryOpKind> {
    search(|e| match e {
        CtxEntry::Binary(op) => Some(*op),
        CtxEntry::Monoid(m) => Some(m.op),
        CtxEntry::Semiring(sr) => Some(sr.add.op),
        _ => None,
    })
}

/// Nearest ⊗-capable operator (for `*` / eWiseMult): a bare binary op,
/// a monoid's op, or a semiring's multiplicative op.
pub(crate) fn resolve_mult_op() -> Option<BinaryOpKind> {
    search(|e| match e {
        CtxEntry::Binary(op) => Some(*op),
        CtxEntry::Monoid(m) => Some(m.op),
        CtxEntry::Semiring(sr) => Some(sr.mult),
        _ => None,
    })
}

/// Nearest monoid (for `reduce`): a monoid entry, a semiring's additive
/// monoid, or a bare binary op that has a default identity.
pub(crate) fn resolve_monoid() -> Option<KindMonoid> {
    search(|e| match e {
        CtxEntry::Monoid(m) => Some(*m),
        CtxEntry::Semiring(sr) => Some(sr.add),
        CtxEntry::Binary(op) => KindMonoid::from_op(*op),
        _ => None,
    })
}

/// Nearest unary operator (for `apply`).
pub(crate) fn resolve_unary() -> Option<AppliedUnaryKind> {
    search(|e| match e {
        CtxEntry::Unary(u) => Some(*u),
        _ => None,
    })
}

/// Accumulator for `+=`: an explicit `Accumulator` *anywhere* on the
/// stack wins — Fig. 7 writes `with gb.Accumulator("Second"),
/// gb.Semiring(...)`, where the semiring is innermost but the explicit
/// accumulator must still govern `+=`. Only when no `Accumulator` is in
/// context does the paper's fallback apply: the monoid op of the
/// nearest monoid/semiring ("will fall back to the MinMonoid from the
/// MinPlusSemiring").
pub(crate) fn resolve_accum() -> Option<BinaryOpKind> {
    search(|e| match e {
        CtxEntry::Accum(op) => Some(*op),
        _ => None,
    })
    .or_else(|| {
        search(|e| match e {
            CtxEntry::Monoid(m) => Some(m.op),
            CtxEntry::Semiring(sr) => Some(sr.add.op),
            _ => None,
        })
    })
}

/// Whether replace semantics are in context.
pub(crate) fn replace_active() -> bool {
    search(|e| matches!(e, CtxEntry::Replace).then_some(())).is_some()
}

/// Whether strict-types semantics are in context (the analyzer turns
/// lossy-promotion lints into hard errors).
pub(crate) fn strict_types_active() -> bool {
    search(|e| matches!(e, CtxEntry::Strict).then_some(())).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{
        Accumulator, ArithmeticSemiring, BinaryOp, MinMonoid, MinPlusSemiring, Replace, UnaryOp,
    };
    use gbtl::ops::kind::IdentityKind;

    #[test]
    fn guards_push_and_pop() {
        assert_eq!(depth(), 0);
        {
            let _a = ArithmeticSemiring.enter();
            assert_eq!(depth(), 1);
            {
                let _b = MinMonoid.enter();
                assert_eq!(depth(), 2);
            }
            assert_eq!(depth(), 1);
        }
        assert_eq!(depth(), 0);
    }

    #[test]
    fn innermost_wins() {
        let _outer = ArithmeticSemiring.enter();
        assert_eq!(resolve_mult_op(), Some(BinaryOpKind::Times));
        {
            let _inner = BinaryOp::new("Minus").unwrap().enter();
            // Fig. 7 line 28: BinaryOp("Minus") takes precedence over
            // the enclosing semiring.
            assert_eq!(resolve_add_op(), Some(BinaryOpKind::Minus));
            assert_eq!(resolve_mult_op(), Some(BinaryOpKind::Minus));
            // But the semiring is still the nearest *semiring*.
            assert_eq!(
                resolve_semiring().map(|s| s.mult),
                Some(BinaryOpKind::Times)
            );
        }
        assert_eq!(resolve_add_op(), Some(BinaryOpKind::Plus));
    }

    #[test]
    fn accumulator_fallback_to_semiring_monoid() {
        // Fig. 4a: with MinPlusSemiring alone, `+=` uses the MinMonoid.
        let _sr = MinPlusSemiring.enter();
        assert_eq!(resolve_accum(), Some(BinaryOpKind::Min));
        {
            let _acc = Accumulator::new("Max").unwrap().enter();
            assert_eq!(resolve_accum(), Some(BinaryOpKind::Max));
        }
        assert_eq!(resolve_accum(), Some(BinaryOpKind::Min));
    }

    #[test]
    fn monoid_from_semiring_for_reduce() {
        let _sr = MinPlusSemiring.enter();
        let m = resolve_monoid().unwrap();
        assert_eq!(m.op, BinaryOpKind::Min);
        assert_eq!(m.identity, IdentityKind::MinIdentity);
    }

    #[test]
    fn bare_binary_provides_monoid_if_it_can() {
        let _b = BinaryOp::new("Plus").unwrap().enter();
        assert_eq!(resolve_monoid().map(|m| m.op), Some(BinaryOpKind::Plus));
        drop(_b);
        let _b2 = BinaryOp::new("Minus").unwrap().enter();
        assert_eq!(resolve_monoid(), None); // Minus has no identity
    }

    #[test]
    fn unary_resolution() {
        assert_eq!(resolve_unary(), None);
        let _u = UnaryOp::bound("Times", 0.85).unwrap().enter();
        assert!(matches!(
            resolve_unary(),
            Some(AppliedUnaryKind::Bind2nd(BinaryOpKind::Times, _))
        ));
    }

    #[test]
    fn replace_flag() {
        assert!(!replace_active());
        {
            let _r = Replace.enter();
            assert!(replace_active());
        }
        assert!(!replace_active());
    }

    #[test]
    fn empty_stack_resolves_nothing() {
        assert_eq!(resolve_semiring(), None);
        assert_eq!(resolve_add_op(), None);
        assert_eq!(resolve_accum(), None);
    }

    #[test]
    fn stacks_are_thread_local() {
        let _sr = ArithmeticSemiring.enter();
        let other = std::thread::spawn(depth).join().unwrap();
        assert_eq!(other, 0);
        assert_eq!(depth(), 1);
    }

    #[test]
    fn session_layers_and_unwinds() {
        let session = Session::new()
            .with(&MinPlusSemiring)
            .with(&Accumulator::new("Max").unwrap());
        assert_eq!(session.len(), 2);
        assert_eq!(depth(), 0);
        {
            let _active = session.activate();
            assert_eq!(depth(), 2);
            assert_eq!(resolve_accum(), Some(BinaryOpKind::Max));
            assert_eq!(resolve_semiring().map(|s| s.mult), Some(BinaryOpKind::Plus));
        }
        assert_eq!(depth(), 0);
        assert_eq!(resolve_semiring(), None);
    }

    #[test]
    fn session_nests_with_thread_local_guards() {
        let session = Session::new().with(&ArithmeticSemiring);
        let _outer = MinPlusSemiring.enter();
        {
            let _active = session.activate();
            // Session entries layer innermost, like a nested `with`.
            assert_eq!(
                resolve_semiring().map(|s| s.mult),
                Some(BinaryOpKind::Times)
            );
        }
        assert_eq!(resolve_semiring().map(|s| s.mult), Some(BinaryOpKind::Plus));
    }

    #[test]
    fn session_is_send_and_reusable_across_threads() {
        let session = Session::new().with(&MinPlusSemiring).with(&Replace);
        let results: Vec<_> = (0..4)
            .map(|_| {
                let s = session.clone();
                std::thread::spawn(move || {
                    let _active = s.activate();
                    (
                        resolve_semiring().map(|sr| sr.add.op),
                        replace_active(),
                        depth(),
                    )
                })
            })
            .map(|h| h.join().unwrap())
            .collect();
        for (add, replace, d) in results {
            assert_eq!(add, Some(BinaryOpKind::Min));
            assert!(replace);
            assert_eq!(d, 2);
        }
        // The spawning thread's stack never saw the session.
        assert_eq!(depth(), 0);
    }

    #[test]
    fn capture_snapshots_current_stack() {
        let captured;
        {
            let _sr = ArithmeticSemiring.enter();
            captured = Session::capture();
        }
        assert_eq!(depth(), 0);
        let _active = captured.activate();
        assert_eq!(
            resolve_semiring().map(|s| s.mult),
            Some(BinaryOpKind::Times)
        );
    }
}
