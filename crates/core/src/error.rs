//! DSL-level errors: everything Python PyGB would raise as an exception.

use std::fmt;

pub use gbtl::GblasError;
pub use pygb_jit::JitError;

/// Errors surfaced by the PyGB DSL.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PygbError {
    /// An operation needed an operator (semiring, monoid, binary op,
    /// unary op, accumulator) and none was in context — the analog of a
    /// Python `LookupError` from the operator stack.
    MissingOperator {
        /// What kind of operator was required.
        needed: &'static str,
        /// Which operation required it.
        operation: &'static str,
    },
    /// An operator name was not one of the Fig. 6 names.
    UnknownOperator {
        /// The name that failed to parse.
        name: String,
    },
    /// A dtype name was not one of the 11 supported type names.
    UnknownDType {
        /// The name that failed to parse.
        name: String,
    },
    /// The underlying GraphBLAS substrate rejected the operation.
    Graphblas(GblasError),
    /// The JIT layer failed (unknown function, bad key, ...).
    Jit(JitError),
    /// The operation isn't expressible (e.g. an identity element the
    /// kind system cannot represent).
    Unsupported {
        /// Human-readable description.
        context: String,
    },
    /// The static analyzer ([`crate::analyze`]) rejected the operation
    /// before any kernel dispatched — at expression-build or DAG-enqueue
    /// time. Carries the op name, why it is invalid, and the rendered
    /// source expression with every operand's shape and dtype.
    Invalid {
        /// The GraphBLAS operation (`mxm`, `mxv`, `eWiseAdd`, ...).
        op: &'static str,
        /// What is wrong, including the offending dimensions/dtypes.
        reason: String,
        /// The rendered source expression, operands as `[shape dtype]`.
        expr: String,
    },
    /// A dispatch-time failure wrapped with the operation that caused
    /// it, so every error names the failing GraphBLAS op even when the
    /// underlying layer (kernel, JIT cache) has no idea which op it was
    /// serving.
    Op {
        /// The GraphBLAS operation that was dispatching.
        op: &'static str,
        /// The rendered operands, as `[shape dtype]` summaries.
        operands: String,
        /// The underlying failure.
        source: Box<PygbError>,
    },
}

impl PygbError {
    /// Build the analyzer's rejection error.
    pub fn invalid(op: &'static str, reason: impl Into<String>, expr: impl Into<String>) -> Self {
        PygbError::Invalid {
            op,
            reason: reason.into(),
            expr: expr.into(),
        }
    }

    /// Attach op provenance to a dispatch-time failure. Errors that
    /// already name their op ([`PygbError::Invalid`], an existing
    /// [`PygbError::Op`] wrapper, [`PygbError::MissingOperator`]) pass
    /// through unchanged.
    pub fn with_op(self, op: &'static str, operands: impl Into<String>) -> Self {
        match self {
            e @ (PygbError::Invalid { .. }
            | PygbError::Op { .. }
            | PygbError::MissingOperator { .. }) => e,
            source => PygbError::Op {
                op,
                operands: operands.into(),
                source: Box::new(source),
            },
        }
    }
}

impl fmt::Display for PygbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PygbError::MissingOperator { needed, operation } => write!(
                f,
                "no {needed} in context for `{operation}` (enter one with a `with`-style guard)"
            ),
            PygbError::UnknownOperator { name } => write!(f, "unknown operator name `{name}`"),
            PygbError::UnknownDType { name } => write!(f, "unknown dtype `{name}`"),
            PygbError::Graphblas(e) => write!(f, "GraphBLAS error: {e}"),
            PygbError::Jit(e) => write!(f, "JIT error: {e}"),
            PygbError::Unsupported { context } => write!(f, "unsupported: {context}"),
            PygbError::Invalid { op, reason, expr } => {
                write!(f, "invalid `{op}`: {reason}; in {expr}")
            }
            PygbError::Op {
                op,
                operands,
                source,
            } => write!(f, "`{op}` on {operands} failed: {source}"),
        }
    }
}

impl std::error::Error for PygbError {}

impl From<GblasError> for PygbError {
    fn from(e: GblasError) -> Self {
        PygbError::Graphblas(e)
    }
}

impl From<JitError> for PygbError {
    fn from(e: JitError) -> Self {
        // Substrate failures travel through the JIT layer as strings;
        // keep them distinguishable.
        PygbError::Jit(e)
    }
}

/// Result alias for the DSL.
pub type Result<T> = std::result::Result<T, PygbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_missing_operator() {
        let e = PygbError::MissingOperator {
            needed: "semiring",
            operation: "mxm",
        };
        let s = e.to_string();
        assert!(s.contains("semiring"));
        assert!(s.contains("mxm"));
    }

    #[test]
    fn display_invalid_names_op_and_shapes() {
        let e = PygbError::invalid(
            "mxm",
            "inner dimensions disagree: 2x3 @ 4x2",
            "mxm([2x3 fp64], [4x2 fp64])",
        );
        assert_eq!(
            e.to_string(),
            "invalid `mxm`: inner dimensions disagree: 2x3 @ 4x2; in mxm([2x3 fp64], [4x2 fp64])"
        );
    }

    #[test]
    fn with_op_wraps_once_and_passes_self_describing_errors() {
        let inner: PygbError = JitError::bad_key("k").into();
        let wrapped = inner.with_op("mxv", "mxv([3x3 fp64], [3 fp64])");
        let s = wrapped.to_string();
        assert!(s.starts_with("`mxv` on mxv([3x3 fp64], [3 fp64])"), "{s}");
        // Re-wrapping (outer dispatch layer) must not stack contexts.
        let rewrapped = wrapped.clone().with_op("assign", "[3 fp64]");
        assert_eq!(rewrapped, wrapped);
        // Errors that already name their op pass through untouched.
        let missing = PygbError::MissingOperator {
            needed: "semiring",
            operation: "mxm",
        };
        assert_eq!(missing.clone().with_op("mxm", "x"), missing);
    }

    #[test]
    fn conversions() {
        let g: PygbError = GblasError::dim("x").into();
        assert!(matches!(g, PygbError::Graphblas(_)));
        let j: PygbError = JitError::bad_key("k").into();
        assert!(matches!(j, PygbError::Jit(_)));
    }
}
