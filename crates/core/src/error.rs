//! DSL-level errors: everything Python PyGB would raise as an exception.

use std::fmt;

pub use gbtl::GblasError;
pub use pygb_jit::JitError;

/// Errors surfaced by the PyGB DSL.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PygbError {
    /// An operation needed an operator (semiring, monoid, binary op,
    /// unary op, accumulator) and none was in context — the analog of a
    /// Python `LookupError` from the operator stack.
    MissingOperator {
        /// What kind of operator was required.
        needed: &'static str,
        /// Which operation required it.
        operation: &'static str,
    },
    /// An operator name was not one of the Fig. 6 names.
    UnknownOperator {
        /// The name that failed to parse.
        name: String,
    },
    /// A dtype name was not one of the 11 supported type names.
    UnknownDType {
        /// The name that failed to parse.
        name: String,
    },
    /// The underlying GraphBLAS substrate rejected the operation.
    Graphblas(GblasError),
    /// The JIT layer failed (unknown function, bad key, ...).
    Jit(JitError),
    /// The operation isn't expressible (e.g. an identity element the
    /// kind system cannot represent).
    Unsupported {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for PygbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PygbError::MissingOperator { needed, operation } => write!(
                f,
                "no {needed} in context for `{operation}` (enter one with a `with`-style guard)"
            ),
            PygbError::UnknownOperator { name } => write!(f, "unknown operator name `{name}`"),
            PygbError::UnknownDType { name } => write!(f, "unknown dtype `{name}`"),
            PygbError::Graphblas(e) => write!(f, "GraphBLAS error: {e}"),
            PygbError::Jit(e) => write!(f, "JIT error: {e}"),
            PygbError::Unsupported { context } => write!(f, "unsupported: {context}"),
        }
    }
}

impl std::error::Error for PygbError {}

impl From<GblasError> for PygbError {
    fn from(e: GblasError) -> Self {
        PygbError::Graphblas(e)
    }
}

impl From<JitError> for PygbError {
    fn from(e: JitError) -> Self {
        // Substrate failures travel through the JIT layer as strings;
        // keep them distinguishable.
        PygbError::Jit(e)
    }
}

/// Result alias for the DSL.
pub type Result<T> = std::result::Result<T, PygbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_missing_operator() {
        let e = PygbError::MissingOperator {
            needed: "semiring",
            operation: "mxm",
        };
        let s = e.to_string();
        assert!(s.contains("semiring"));
        assert!(s.contains("mxm"));
    }

    #[test]
    fn conversions() {
        let g: PygbError = GblasError::dim("x").into();
        assert!(matches!(g, PygbError::Graphblas(_)));
        let j: PygbError = JitError::bad_key("k").into();
        assert!(matches!(j, PygbError::Jit(_)));
    }
}
