//! Deferred expression objects — PyGB's lazy right-hand sides.
//!
//! "The `A + B` operator returns an expression object wrapping the `A`
//! and `B` operands … The expression object also captures the value of
//! the binary operator from the context of the `A + B` expression."
//! (Sec. IV.) Construction is cheap (`Arc` snapshots of the operands),
//! captures the relevant operator from the context stack *now*, and
//! records how long construction and context search took so the
//! dispatch trace can report the Fig. 9 stages.
//!
//! A missing operator is remembered as `None` and surfaces as
//! [`crate::error::PygbError::MissingOperator`] when the expression is
//! evaluated — the moment Python would raise.

use std::sync::Arc;
use std::time::Instant;

use gbtl::ops::kind::{AppliedUnaryKind, BinaryOpKind, KindMonoid, KindSemiring, UnaryOpKind};
use gbtl::Indices;

use crate::context;
use crate::dtype::DType;
use crate::matrix::Matrix;
use crate::store::{MatrixStore, VectorStore};
use crate::vector::Vector;

/// A matrix operand snapshot: storage plus a transposition flag.
#[derive(Clone, Debug)]
pub struct MatOperand {
    /// The snapshotted storage. Public so the nonblocking runtime can
    /// rebuild operands after resolving deferred placeholders.
    pub store: Arc<MatrixStore>,
    /// Whether the operand is used transposed (`A.T`).
    pub transposed: bool,
}

impl MatOperand {
    /// Logical row count.
    pub fn nrows(&self) -> usize {
        if self.transposed {
            self.store.ncols()
        } else {
            self.store.nrows()
        }
    }

    /// Logical column count.
    pub fn ncols(&self) -> usize {
        if self.transposed {
            self.store.nrows()
        } else {
            self.store.ncols()
        }
    }

    /// The operand's dtype.
    pub fn dtype(&self) -> DType {
        self.store.dtype()
    }
}

/// A transposed matrix view — the value of `m.t()` (`A.T`).
#[derive(Clone, Debug)]
pub struct TransposedMatrix {
    pub(crate) store: Arc<MatrixStore>,
}

impl TransposedMatrix {
    fn operand(&self) -> MatOperand {
        MatOperand {
            store: Arc::clone(&self.store),
            transposed: true,
        }
    }

    /// `A.T @ B` — matrix-matrix multiply with a transposed left side.
    pub fn matmul(&self, rhs: impl MatrixOperandArg) -> MatrixExpr {
        MatrixExpr::mxm(self.operand(), rhs.into_operand())
    }

    /// `A.T @ u` — matrix-vector multiply with a transposed matrix
    /// (the BFS traversal direction, Fig. 2b).
    pub fn mxv(&self, u: &Vector) -> VectorExpr {
        VectorExpr::mxv(self.operand(), u.store_arc())
    }

    /// `A.T + B` — eWiseAdd with a transposed operand.
    pub fn ewise_add(&self, rhs: impl MatrixOperandArg) -> MatrixExpr {
        MatrixExpr::ewise_add(self.operand(), rhs.into_operand())
    }

    /// `A.T * B` — eWiseMult with a transposed operand.
    pub fn ewise_mult(&self, rhs: impl MatrixOperandArg) -> MatrixExpr {
        MatrixExpr::ewise_mult(self.operand(), rhs.into_operand())
    }

    /// `C = A.T` as an expression (the transpose *operation*).
    pub fn expr(&self) -> MatrixExpr {
        MatrixExpr::build(|| MatrixExprKind::Transpose {
            a: Arc::clone(&self.store),
        })
    }
}

/// Anything that can appear as a matrix operand in an expression:
/// `&Matrix`, `&TransposedMatrix`, or `TransposedMatrix` by value
/// (so `a.matmul(b.t())` reads like `A @ B.T`).
pub trait MatrixOperandArg {
    /// Convert into an operand snapshot.
    fn into_operand(self) -> MatOperand;
}

impl MatrixOperandArg for &Matrix {
    fn into_operand(self) -> MatOperand {
        self.operand()
    }
}

impl MatrixOperandArg for &TransposedMatrix {
    fn into_operand(self) -> MatOperand {
        self.operand()
    }
}

impl MatrixOperandArg for TransposedMatrix {
    fn into_operand(self) -> MatOperand {
        MatOperand {
            store: self.store,
            transposed: true,
        }
    }
}

/// A deferred matrix-valued expression.
#[derive(Clone, Debug)]
pub struct MatrixExpr {
    /// What to compute. Public so the nonblocking runtime's fusion
    /// pass can inspect and rewrite deferred expressions.
    pub kind: MatrixExprKind,
    /// Nanoseconds spent building the expression object (Fig. 9's
    /// construction stage; `0` for expressions rebuilt by the runtime).
    pub build_ns: u64,
}

/// The shape of a deferred matrix expression (see [`MatrixExpr::kind`]).
#[derive(Clone, Debug)]
pub enum MatrixExprKind {
    /// `A ⊕.⊗ B`
    MxM {
        /// Left operand.
        a: MatOperand,
        /// Right operand.
        b: MatOperand,
        /// Semiring captured from context (`None` surfaces at eval).
        semiring: Option<KindSemiring>,
    },
    /// `A ⊕ B`
    EWiseAdd {
        /// Left operand.
        a: MatOperand,
        /// Right operand.
        b: MatOperand,
        /// Binary operator captured from context.
        op: Option<BinaryOpKind>,
    },
    /// `A ⊗ B`
    EWiseMult {
        /// Left operand.
        a: MatOperand,
        /// Right operand.
        b: MatOperand,
        /// Binary operator captured from context.
        op: Option<BinaryOpKind>,
    },
    /// `f(A)`
    Apply {
        /// The operand.
        a: MatOperand,
        /// Unary operator captured from context.
        op: Option<AppliedUnaryKind>,
    },
    /// `Aᵀ`
    Transpose {
        /// The operand's storage.
        a: Arc<MatrixStore>,
    },
    /// `A(rows, cols)`
    Extract {
        /// The operand.
        a: MatOperand,
        /// Row selection.
        rows: Indices,
        /// Column selection.
        cols: Indices,
    },
    /// A bare container reference (`C[None] = A`).
    Ref {
        /// The referenced container's storage.
        a: Arc<MatrixStore>,
    },
}

impl MatrixExpr {
    fn build(f: impl FnOnce() -> MatrixExprKind) -> MatrixExpr {
        let start = Instant::now();
        let kind = f();
        MatrixExpr {
            kind,
            build_ns: start.elapsed().as_nanos() as u64,
        }
    }

    pub(crate) fn mxm(a: MatOperand, b: MatOperand) -> MatrixExpr {
        Self::build(|| MatrixExprKind::MxM {
            a,
            b,
            semiring: context::resolve_semiring(),
        })
    }

    pub(crate) fn ewise_add(a: MatOperand, b: MatOperand) -> MatrixExpr {
        // Fig. 7 uses `+` outside any `with` block: default arithmetic.
        Self::build(|| MatrixExprKind::EWiseAdd {
            a,
            b,
            op: context::resolve_add_op().or(Some(BinaryOpKind::Plus)),
        })
    }

    pub(crate) fn ewise_mult(a: MatOperand, b: MatOperand) -> MatrixExpr {
        Self::build(|| MatrixExprKind::EWiseMult {
            a,
            b,
            op: context::resolve_mult_op().or(Some(BinaryOpKind::Times)),
        })
    }

    pub(crate) fn apply(a: MatOperand) -> MatrixExpr {
        Self::build(|| MatrixExprKind::Apply {
            a,
            op: context::resolve_unary(),
        })
    }

    pub(crate) fn extract(a: MatOperand, rows: Indices, cols: Indices) -> MatrixExpr {
        Self::build(|| MatrixExprKind::Extract { a, rows, cols })
    }

    /// The dtype the result would naturally have (operand promotion).
    pub fn result_dtype(&self) -> DType {
        match &self.kind {
            MatrixExprKind::MxM { a, b, .. }
            | MatrixExprKind::EWiseAdd { a, b, .. }
            | MatrixExprKind::EWiseMult { a, b, .. } => DType::promote(a.dtype(), b.dtype()),
            MatrixExprKind::Apply { a, .. } | MatrixExprKind::Extract { a, .. } => a.dtype(),
            MatrixExprKind::Transpose { a } | MatrixExprKind::Ref { a } => a.dtype(),
        }
    }

    /// Run the static analyzer on this expression alone: operand
    /// conformability plus (strict-mode) dtype promotion — see
    /// [`crate::analyze::validate_matrix_expr`].
    pub fn validate(&self) -> crate::error::Result<()> {
        crate::analyze::validate_matrix_expr(self)
    }

    /// Render the expression with every operand as `[shape dtype]` —
    /// the form analyzer diagnostics quote.
    pub fn describe(&self) -> String {
        crate::analyze::describe_matrix_expr(self)
    }

    /// The `(nrows, ncols)` of the result.
    pub fn result_shape(&self) -> (usize, usize) {
        match &self.kind {
            MatrixExprKind::MxM { a, b, .. } => (a.nrows(), b.ncols()),
            MatrixExprKind::EWiseAdd { a, .. } | MatrixExprKind::EWiseMult { a, .. } => {
                (a.nrows(), a.ncols())
            }
            MatrixExprKind::Apply { a, .. } => (a.nrows(), a.ncols()),
            MatrixExprKind::Transpose { a } => (a.ncols(), a.nrows()),
            MatrixExprKind::Extract { a, rows, cols } => (rows.len(a.nrows()), cols.len(a.ncols())),
            MatrixExprKind::Ref { a } => (a.nrows(), a.ncols()),
        }
    }
}

impl From<&Matrix> for MatrixExpr {
    /// A bare container on the right-hand side (`C[None] = A`).
    fn from(m: &Matrix) -> MatrixExpr {
        MatrixExpr::build(|| MatrixExprKind::Ref {
            a: Arc::clone(&m.store),
        })
    }
}

impl From<&TransposedMatrix> for MatrixExpr {
    /// `C[None] = A.T`.
    fn from(t: &TransposedMatrix) -> MatrixExpr {
        t.expr()
    }
}

/// A deferred vector-valued expression.
#[derive(Clone, Debug)]
pub struct VectorExpr {
    /// What to compute. Public so the nonblocking runtime's fusion
    /// pass can inspect and rewrite deferred expressions.
    pub kind: VectorExprKind,
    /// Nanoseconds spent building the expression object (`0` for
    /// expressions rebuilt by the runtime).
    pub build_ns: u64,
}

/// The shape of a deferred vector expression (see [`VectorExpr::kind`]).
#[derive(Clone, Debug)]
pub enum VectorExprKind {
    /// `A ⊕.⊗ u`
    MxV {
        /// Matrix operand.
        a: MatOperand,
        /// Vector operand.
        u: Arc<VectorStore>,
        /// Semiring captured from context (`None` surfaces at eval).
        semiring: Option<KindSemiring>,
    },
    /// `uᵀ ⊕.⊗ A`
    VxM {
        /// Vector operand.
        u: Arc<VectorStore>,
        /// Matrix operand.
        a: MatOperand,
        /// Semiring captured from context.
        semiring: Option<KindSemiring>,
    },
    /// `u ⊕ v`
    EWiseAdd {
        /// Left operand.
        u: Arc<VectorStore>,
        /// Right operand.
        v: Arc<VectorStore>,
        /// Binary operator captured from context.
        op: Option<BinaryOpKind>,
    },
    /// `u ⊗ v`
    EWiseMult {
        /// Left operand.
        u: Arc<VectorStore>,
        /// Right operand.
        v: Arc<VectorStore>,
        /// Binary operator captured from context.
        op: Option<BinaryOpKind>,
    },
    /// `f(u)`
    Apply {
        /// The operand.
        u: Arc<VectorStore>,
        /// Unary operator captured from context.
        op: Option<AppliedUnaryKind>,
    },
    /// `u(ix)`
    Extract {
        /// The operand.
        u: Arc<VectorStore>,
        /// Index selection.
        ix: Indices,
    },
    /// Row-wise reduction of a matrix: `w = ⊕ⱼ A(:, j)`.
    ReduceRows {
        /// The matrix operand.
        a: MatOperand,
        /// Monoid captured from context.
        monoid: Option<KindMonoid>,
    },
    /// A bare container reference (`w[None] = u`).
    Ref {
        /// The referenced container's storage.
        u: Arc<VectorStore>,
    },
    /// Section V's planned deferred-chain compilation, implemented for
    /// the (matrix × vector) → apply pattern: `f(A ⊕.⊗ u)` runs as ONE
    /// module (one dispatch, no intermediate write-back pass). With
    /// `vxm` set the product is `uᵀ ⊕.⊗ A` instead.
    FusedMxvApply {
        /// Matrix operand.
        a: MatOperand,
        /// Vector operand.
        u: Arc<VectorStore>,
        /// Semiring for the product.
        semiring: Option<KindSemiring>,
        /// Unary operator for the fused apply.
        unary: Option<AppliedUnaryKind>,
        /// Whether the product is `uᵀ ⊕.⊗ A` rather than `A ⊕.⊗ u`.
        vxm: bool,
    },
    /// Two chained element-wise operations run as ONE module:
    /// `t = u inner v; result = t outer w` (or `w outer t` when
    /// `inner_left` is false, or `t outer t` when `w` is `None` — the
    /// "square" form `(u inner v) outer (u inner v)`). Produced only by
    /// the nonblocking runtime's fusion pass; the front end never
    /// builds it directly.
    FusedEwiseChain {
        /// Left operand of the inner element-wise op.
        u: Arc<VectorStore>,
        /// Right operand of the inner element-wise op.
        v: Arc<VectorStore>,
        /// The outer op's other operand; `None` means both outer slots
        /// take the inner result (square form).
        w: Option<Arc<VectorStore>>,
        /// The inner binary operator.
        inner: BinaryOpKind,
        /// The outer binary operator.
        outer: BinaryOpKind,
        /// Whether the inner op is eWiseAdd (`true`) or eWiseMult.
        inner_add: bool,
        /// Whether the outer op is eWiseAdd (`true`) or eWiseMult.
        outer_add: bool,
        /// Whether the inner result feeds the outer op's left slot.
        inner_left: bool,
    },
}

impl VectorExpr {
    fn build(f: impl FnOnce() -> VectorExprKind) -> VectorExpr {
        let start = Instant::now();
        let kind = f();
        VectorExpr {
            kind,
            build_ns: start.elapsed().as_nanos() as u64,
        }
    }

    pub(crate) fn mxv(a: MatOperand, u: Arc<VectorStore>) -> VectorExpr {
        Self::build(|| VectorExprKind::MxV {
            a,
            u,
            semiring: context::resolve_semiring(),
        })
    }

    pub(crate) fn vxm(u: Arc<VectorStore>, a: MatOperand) -> VectorExpr {
        Self::build(|| VectorExprKind::VxM {
            u,
            a,
            semiring: context::resolve_semiring(),
        })
    }

    pub(crate) fn ewise_add(u: Arc<VectorStore>, v: Arc<VectorStore>) -> VectorExpr {
        Self::build(|| VectorExprKind::EWiseAdd {
            u,
            v,
            op: context::resolve_add_op().or(Some(BinaryOpKind::Plus)),
        })
    }

    pub(crate) fn ewise_mult(u: Arc<VectorStore>, v: Arc<VectorStore>) -> VectorExpr {
        Self::build(|| VectorExprKind::EWiseMult {
            u,
            v,
            op: context::resolve_mult_op().or(Some(BinaryOpKind::Times)),
        })
    }

    pub(crate) fn apply(u: Arc<VectorStore>) -> VectorExpr {
        Self::build(|| VectorExprKind::Apply {
            u,
            op: context::resolve_unary(),
        })
    }

    pub(crate) fn extract(u: Arc<VectorStore>, ix: Indices) -> VectorExpr {
        Self::build(|| VectorExprKind::Extract { u, ix })
    }

    pub(crate) fn reduce_rows(a: MatOperand) -> VectorExpr {
        // Fig. 5a reduces outside the `with` block: default PlusMonoid,
        // as the paper's text ("Reduce uses the PlusMonoid") implies.
        Self::build(|| VectorExprKind::ReduceRows {
            a,
            monoid: context::resolve_monoid().or(Some(KindMonoid {
                op: BinaryOpKind::Plus,
                identity: gbtl::ops::kind::IdentityKind::Zero,
            })),
        })
    }

    /// Fuse a pending `apply` onto a matrix-vector product so the chain
    /// dispatches as a single module — Section V's "series of operations
    /// ... compiled into a single module", implemented for this chain
    /// shape. The unary operator is captured from context *now*, like
    /// any other expression construction. Chains whose head is not a
    /// matrix-vector product are unsupported.
    pub fn then_apply(self) -> crate::error::Result<VectorExpr> {
        let build_ns = self.build_ns;
        let kind = match self.kind {
            VectorExprKind::MxV { a, u, semiring } => VectorExprKind::FusedMxvApply {
                a,
                u,
                semiring,
                unary: context::resolve_unary(),
                vxm: false,
            },
            VectorExprKind::VxM { u, a, semiring } => VectorExprKind::FusedMxvApply {
                a,
                u,
                semiring,
                unary: context::resolve_unary(),
                vxm: true,
            },
            other => {
                return Err(crate::error::PygbError::Unsupported {
                    context: format!("deferred-chain fusion supports mxv/vxm heads, not {other:?}"),
                })
            }
        };
        Ok(VectorExpr { kind, build_ns })
    }

    /// The dtype the result would naturally have.
    pub fn result_dtype(&self) -> DType {
        match &self.kind {
            VectorExprKind::MxV { a, u, .. }
            | VectorExprKind::VxM { u, a, .. }
            | VectorExprKind::FusedMxvApply { a, u, .. } => DType::promote(a.dtype(), u.dtype()),
            VectorExprKind::EWiseAdd { u, v, .. } | VectorExprKind::EWiseMult { u, v, .. } => {
                DType::promote(u.dtype(), v.dtype())
            }
            VectorExprKind::FusedEwiseChain { u, v, w, .. } => {
                let inner = DType::promote(u.dtype(), v.dtype());
                match w {
                    Some(w) => DType::promote(inner, w.dtype()),
                    None => inner,
                }
            }
            VectorExprKind::Apply { u, .. }
            | VectorExprKind::Extract { u, .. }
            | VectorExprKind::Ref { u } => u.dtype(),
            VectorExprKind::ReduceRows { a, .. } => a.dtype(),
        }
    }

    /// Run the static analyzer on this expression alone — see
    /// [`crate::analyze::validate_vector_expr`].
    pub fn validate(&self) -> crate::error::Result<()> {
        crate::analyze::validate_vector_expr(self)
    }

    /// Render the expression with every operand as `[size dtype]` —
    /// the form analyzer diagnostics quote.
    pub fn describe(&self) -> String {
        crate::analyze::describe_vector_expr(self)
    }

    /// The dimension of the result.
    pub fn result_size(&self) -> usize {
        match &self.kind {
            VectorExprKind::MxV { a, .. } => a.nrows(),
            VectorExprKind::VxM { a, .. } => a.ncols(),
            VectorExprKind::FusedMxvApply { a, vxm, .. } => {
                if *vxm {
                    a.ncols()
                } else {
                    a.nrows()
                }
            }
            VectorExprKind::EWiseAdd { u, .. }
            | VectorExprKind::EWiseMult { u, .. }
            | VectorExprKind::FusedEwiseChain { u, .. } => u.size(),
            VectorExprKind::Apply { u, .. } | VectorExprKind::Ref { u } => u.size(),
            VectorExprKind::Extract { u, ix } => ix.len(u.size()),
            VectorExprKind::ReduceRows { a, .. } => a.nrows(),
        }
    }
}

impl From<&Vector> for VectorExpr {
    fn from(v: &Vector) -> VectorExpr {
        VectorExpr::build(|| VectorExprKind::Ref { u: v.store_arc() })
    }
}

// ---------------------------------------------------------------------
// Operator overloads: `&a + &b`, `&a * &b` on both container kinds.
// ---------------------------------------------------------------------

impl std::ops::Add<&Matrix> for &Matrix {
    type Output = MatrixExpr;
    fn add(self, rhs: &Matrix) -> MatrixExpr {
        MatrixExpr::ewise_add(self.operand(), rhs.operand())
    }
}

impl std::ops::Mul<&Matrix> for &Matrix {
    type Output = MatrixExpr;
    fn mul(self, rhs: &Matrix) -> MatrixExpr {
        MatrixExpr::ewise_mult(self.operand(), rhs.operand())
    }
}

impl std::ops::Add<&Vector> for &Vector {
    type Output = VectorExpr;
    fn add(self, rhs: &Vector) -> VectorExpr {
        VectorExpr::ewise_add(self.store_arc(), rhs.store_arc())
    }
}

impl std::ops::Mul<&Vector> for &Vector {
    type Output = VectorExpr;
    fn mul(self, rhs: &Vector) -> VectorExpr {
        VectorExpr::ewise_mult(self.store_arc(), rhs.store_arc())
    }
}

// ---------------------------------------------------------------------
// Free functions: `apply(...)`, `reduce_rows(...)`.
// ---------------------------------------------------------------------

/// The `gb.apply(x)` operation: the unary operator comes from context.
/// Works on matrices and vectors.
pub fn apply<A: ApplyArg>(a: A) -> A::Output {
    a.build_apply()
}

/// Operand kinds accepted by [`apply`].
pub trait ApplyArg {
    /// The expression type produced.
    type Output;
    /// Build the apply expression.
    fn build_apply(self) -> Self::Output;
}

impl ApplyArg for &Matrix {
    type Output = MatrixExpr;
    fn build_apply(self) -> MatrixExpr {
        MatrixExpr::apply(self.operand())
    }
}

impl ApplyArg for &Vector {
    type Output = VectorExpr;
    fn build_apply(self) -> VectorExpr {
        VectorExpr::apply(self.store_arc())
    }
}

/// Row-wise reduce: `w[m, z] = reduce(monoid, A)` (Table I). The monoid
/// comes from context.
pub fn reduce_rows(a: &Matrix) -> VectorExpr {
    VectorExpr::reduce_rows(a.operand())
}

/// Row-wise reduce of a transposed matrix (column reduce).
pub fn reduce_rows_t(a: &TransposedMatrix) -> VectorExpr {
    VectorExpr::reduce_rows(MatOperand {
        store: Arc::clone(&a.store),
        transposed: true,
    })
}

/// An identity [`AppliedUnaryKind`] for forced `Ref` evaluation.
pub(crate) fn identity_unary() -> AppliedUnaryKind {
    AppliedUnaryKind::Pure(UnaryOpKind::Identity)
}

// ---------------------------------------------------------------------
// Structural identity — hash-consing keys for the runtime's CSE pass.
//
// Two expression kinds are structurally identical when they name the
// SAME operand storages (Arc pointer identity plus transposition flags)
// and captured the same operators. Pointer identity is the right notion
// for a deferred DAG: operands snapshotted from the same container (or
// the same pending placeholder) are the same value at flush time.
// `Extract` never participates — `Indices` carries range/list forms
// whose equality is not pointer identity, so extracts conservatively
// fingerprint to `None` and compare unequal.
// ---------------------------------------------------------------------

use std::hash::{Hash, Hasher};

fn hash_mat_operand<H: Hasher>(a: &MatOperand, h: &mut H) {
    (Arc::as_ptr(&a.store) as usize).hash(h);
    a.transposed.hash(h);
}

fn mat_operand_eq(a: &MatOperand, b: &MatOperand) -> bool {
    Arc::ptr_eq(&a.store, &b.store) && a.transposed == b.transposed
}

fn hash_vec_store<H: Hasher>(u: &Arc<VectorStore>, h: &mut H) {
    (Arc::as_ptr(u) as usize).hash(h);
}

fn hash_mat_store<H: Hasher>(a: &Arc<MatrixStore>, h: &mut H) {
    (Arc::as_ptr(a) as usize).hash(h);
}

// `AppliedUnaryKind` carries `Bind1st/Bind2nd` f64 payloads whose derived
// `PartialEq` is float equality; hash and compare through the stable
// `key_string` form instead so hashing and equality agree exactly.
fn hash_unary<H: Hasher>(op: &Option<AppliedUnaryKind>, h: &mut H) {
    match op {
        Some(k) => {
            1u8.hash(h);
            k.key_string().hash(h);
        }
        None => 0u8.hash(h),
    }
}

fn unary_eq(a: &Option<AppliedUnaryKind>, b: &Option<AppliedUnaryKind>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x.key_string() == y.key_string(),
        (None, None) => true,
        _ => false,
    }
}

impl VectorExprKind {
    /// A structural fingerprint for hash-consing: `Some(hash)` when the
    /// expression shape is eligible for structural comparison, `None`
    /// for excluded forms (`Extract`). Equal fingerprints are necessary
    /// but not sufficient — confirm with [`VectorExprKind::structural_eq`].
    pub fn structural_fingerprint<H: Hasher>(&self, h: &mut H) -> bool {
        use VectorExprKind as K;
        std::mem::discriminant(self).hash(h);
        match self {
            K::MxV { a, u, semiring } => {
                hash_mat_operand(a, h);
                hash_vec_store(u, h);
                semiring.hash(h);
            }
            K::VxM { u, a, semiring } => {
                hash_vec_store(u, h);
                hash_mat_operand(a, h);
                semiring.hash(h);
            }
            K::EWiseAdd { u, v, op } | K::EWiseMult { u, v, op } => {
                hash_vec_store(u, h);
                hash_vec_store(v, h);
                op.hash(h);
            }
            K::Apply { u, op } => {
                hash_vec_store(u, h);
                hash_unary(op, h);
            }
            K::Extract { .. } => return false,
            K::ReduceRows { a, monoid } => {
                hash_mat_operand(a, h);
                monoid.hash(h);
            }
            K::Ref { u } => hash_vec_store(u, h),
            K::FusedMxvApply {
                a,
                u,
                semiring,
                unary,
                vxm,
            } => {
                hash_mat_operand(a, h);
                hash_vec_store(u, h);
                semiring.hash(h);
                hash_unary(unary, h);
                vxm.hash(h);
            }
            K::FusedEwiseChain {
                u,
                v,
                w,
                inner,
                outer,
                inner_add,
                outer_add,
                inner_left,
            } => {
                hash_vec_store(u, h);
                hash_vec_store(v, h);
                match w {
                    Some(w) => {
                        1u8.hash(h);
                        hash_vec_store(w, h);
                    }
                    None => 0u8.hash(h),
                }
                (inner, outer, inner_add, outer_add, inner_left).hash(h);
            }
        }
        true
    }

    /// Exact structural equality behind [`VectorExprKind::structural_fingerprint`]
    /// — hash-collision safety for the CSE pass.
    pub fn structural_eq(&self, other: &VectorExprKind) -> bool {
        use VectorExprKind as K;
        match (self, other) {
            (
                K::MxV { a, u, semiring },
                K::MxV {
                    a: a2,
                    u: u2,
                    semiring: s2,
                },
            ) => mat_operand_eq(a, a2) && Arc::ptr_eq(u, u2) && semiring == s2,
            (
                K::VxM { u, a, semiring },
                K::VxM {
                    u: u2,
                    a: a2,
                    semiring: s2,
                },
            ) => Arc::ptr_eq(u, u2) && mat_operand_eq(a, a2) && semiring == s2,
            (
                K::EWiseAdd { u, v, op },
                K::EWiseAdd {
                    u: u2,
                    v: v2,
                    op: o2,
                },
            )
            | (
                K::EWiseMult { u, v, op },
                K::EWiseMult {
                    u: u2,
                    v: v2,
                    op: o2,
                },
            ) => Arc::ptr_eq(u, u2) && Arc::ptr_eq(v, v2) && op == o2,
            (K::Apply { u, op }, K::Apply { u: u2, op: o2 }) => {
                Arc::ptr_eq(u, u2) && unary_eq(op, o2)
            }
            (K::ReduceRows { a, monoid }, K::ReduceRows { a: a2, monoid: m2 }) => {
                mat_operand_eq(a, a2) && monoid == m2
            }
            (K::Ref { u }, K::Ref { u: u2 }) => Arc::ptr_eq(u, u2),
            (
                K::FusedMxvApply {
                    a,
                    u,
                    semiring,
                    unary,
                    vxm,
                },
                K::FusedMxvApply {
                    a: a2,
                    u: u2,
                    semiring: s2,
                    unary: un2,
                    vxm: x2,
                },
            ) => {
                mat_operand_eq(a, a2)
                    && Arc::ptr_eq(u, u2)
                    && semiring == s2
                    && unary_eq(unary, un2)
                    && vxm == x2
            }
            (
                K::FusedEwiseChain {
                    u,
                    v,
                    w,
                    inner,
                    outer,
                    inner_add,
                    outer_add,
                    inner_left,
                },
                K::FusedEwiseChain {
                    u: u2,
                    v: v2,
                    w: w2,
                    inner: i2,
                    outer: o2,
                    inner_add: ia2,
                    outer_add: oa2,
                    inner_left: il2,
                },
            ) => {
                let w_eq = match (w, w2) {
                    (Some(x), Some(y)) => Arc::ptr_eq(x, y),
                    (None, None) => true,
                    _ => false,
                };
                Arc::ptr_eq(u, u2)
                    && Arc::ptr_eq(v, v2)
                    && w_eq
                    && inner == i2
                    && outer == o2
                    && inner_add == ia2
                    && outer_add == oa2
                    && inner_left == il2
            }
            _ => false,
        }
    }
}

impl MatrixExprKind {
    /// Matrix analog of [`VectorExprKind::structural_fingerprint`].
    pub fn structural_fingerprint<H: Hasher>(&self, h: &mut H) -> bool {
        use MatrixExprKind as K;
        std::mem::discriminant(self).hash(h);
        match self {
            K::MxM { a, b, semiring } => {
                hash_mat_operand(a, h);
                hash_mat_operand(b, h);
                semiring.hash(h);
            }
            K::EWiseAdd { a, b, op } | K::EWiseMult { a, b, op } => {
                hash_mat_operand(a, h);
                hash_mat_operand(b, h);
                op.hash(h);
            }
            K::Apply { a, op } => {
                hash_mat_operand(a, h);
                hash_unary(op, h);
            }
            K::Transpose { a } => hash_mat_store(a, h),
            K::Extract { .. } => return false,
            K::Ref { a } => hash_mat_store(a, h),
        }
        true
    }

    /// Matrix analog of [`VectorExprKind::structural_eq`].
    pub fn structural_eq(&self, other: &MatrixExprKind) -> bool {
        use MatrixExprKind as K;
        match (self, other) {
            (
                K::MxM { a, b, semiring },
                K::MxM {
                    a: a2,
                    b: b2,
                    semiring: s2,
                },
            ) => mat_operand_eq(a, a2) && mat_operand_eq(b, b2) && semiring == s2,
            (
                K::EWiseAdd { a, b, op },
                K::EWiseAdd {
                    a: a2,
                    b: b2,
                    op: o2,
                },
            )
            | (
                K::EWiseMult { a, b, op },
                K::EWiseMult {
                    a: a2,
                    b: b2,
                    op: o2,
                },
            ) => mat_operand_eq(a, a2) && mat_operand_eq(b, b2) && op == o2,
            (K::Apply { a, op }, K::Apply { a: a2, op: o2 }) => {
                mat_operand_eq(a, a2) && unary_eq(op, o2)
            }
            (K::Transpose { a }, K::Transpose { a: a2 }) => Arc::ptr_eq(a, a2),
            (K::Ref { a }, K::Ref { a: a2 }) => Arc::ptr_eq(a, a2),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{ArithmeticSemiring, BinaryOp, MinPlusSemiring};

    fn m2() -> Matrix {
        Matrix::from_dense(&[vec![1i64, 0], vec![0, 1]]).unwrap()
    }

    #[test]
    fn matmul_captures_semiring_at_construction() {
        let a = m2();
        let b = m2();
        let expr = {
            let _sr = MinPlusSemiring.enter();
            a.matmul(&b)
        };
        // The context guard is gone, but the expression kept MinPlus.
        match expr.kind {
            MatrixExprKind::MxM { semiring, .. } => {
                assert_eq!(semiring, Some(MinPlusSemiring.kind));
            }
            _ => panic!("expected MxM"),
        }
    }

    #[test]
    fn missing_semiring_recorded_as_none() {
        let a = m2();
        let expr = a.matmul(&a);
        match expr.kind {
            MatrixExprKind::MxM { semiring, .. } => assert_eq!(semiring, None),
            _ => panic!(),
        }
    }

    #[test]
    fn operator_overloads_capture_ops() {
        let a = m2();
        let b = m2();
        let _sr = ArithmeticSemiring.enter();
        match (&a + &b).kind {
            MatrixExprKind::EWiseAdd { op, .. } => {
                assert_eq!(op.map(|o| o.name()), Some("Plus"))
            }
            _ => panic!(),
        }
        match (&a * &b).kind {
            MatrixExprKind::EWiseMult { op, .. } => {
                assert_eq!(op.map(|o| o.name()), Some("Times"))
            }
            _ => panic!(),
        }
        // Inner BinaryOp overrides both (Fig. 7 line 27-28).
        let _minus = BinaryOp::new("Minus").unwrap().enter();
        match (&a + &b).kind {
            MatrixExprKind::EWiseAdd { op, .. } => {
                assert_eq!(op.map(|o| o.name()), Some("Minus"))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn shapes_and_dtypes() {
        let a = Matrix::new(2, 3, DType::Int32);
        let b = Matrix::new(3, 4, DType::Fp32);
        let expr = a.matmul(&b);
        assert_eq!(expr.result_shape(), (2, 4));
        assert_eq!(expr.result_dtype(), DType::Fp32); // promotion

        let t = b.t().expr();
        assert_eq!(t.result_shape(), (4, 3));
    }

    #[test]
    fn transposed_operand_dimensions() {
        let a = Matrix::new(2, 3, DType::Fp64);
        let expr = a.t().matmul(&a); // (3x2) @ (2x3) → 3x3
        assert_eq!(expr.result_shape(), (3, 3));
    }

    #[test]
    fn vector_expr_shapes() {
        let a = Matrix::new(2, 3, DType::Fp64);
        let u = Vector::new(3, DType::Fp64);
        assert_eq!(a.mxv(&u).result_size(), 2);
        let w = Vector::new(2, DType::Fp64);
        assert_eq!(w.vxm(&a).result_size(), 3);
        assert_eq!(reduce_rows(&a).result_size(), 2);
        assert_eq!(u.extract(0..2).result_size(), 2);
    }

    #[test]
    fn apply_on_both_kinds() {
        let m = m2();
        let v = Vector::new(2, DType::Int64);
        let _u = crate::operators::UnaryOp::new("LogicalNot")
            .unwrap()
            .enter();
        match apply(&m).kind {
            MatrixExprKind::Apply { op, .. } => assert!(op.is_some()),
            _ => panic!(),
        }
        match apply(&v).kind {
            VectorExprKind::Apply { op, .. } => assert!(op.is_some()),
            _ => panic!(),
        }
    }
}
