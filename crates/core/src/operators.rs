//! Dynamic operator objects — the `gb.BinaryOp("Plus")`,
//! `gb.Monoid(PlusOp, 0)`, `gb.Semiring(PlusMonoid, TimesOp)`,
//! `gb.Accumulator("Min")` constructors of Fig. 6, plus every
//! predefined operator the paper's algorithms use.
//!
//! Operator objects are small `Copy` values wrapping the runtime kinds
//! from `gbtl::ops::kind`. Bringing one "into context" (the `with`
//! statement) is done with [`crate::context::ContextGuard`]s returned by
//! each object's `enter()` method.

use gbtl::ops::kind::{
    AppliedUnaryKind, BinaryOpKind, IdentityKind, KindMonoid, KindSemiring, UnaryOpKind,
};

use crate::context::{self, ContextGuard, ContextOp, CtxEntry};
use crate::error::{PygbError, Result};

/// A named binary operator (`gb.BinaryOp("Plus")`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BinaryOp {
    pub(crate) kind: BinaryOpKind,
}

impl BinaryOp {
    /// Construct from a Fig. 6 name.
    pub fn new(name: &str) -> Result<Self> {
        BinaryOpKind::from_name(name)
            .map(|kind| BinaryOp { kind })
            .ok_or_else(|| PygbError::UnknownOperator { name: name.into() })
    }

    /// The operator's name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Define a *user* binary operator (Section VIII future work,
    /// implemented): the paper defers this to "an intermediate language
    /// such as Cython or forcing the user to write code directly in
    /// C++"; here a plain function registers it under a name usable
    /// everywhere a Fig. 6 operator is — including inside monoids,
    /// semirings, accumulators, and JIT module keys. Computation
    /// crosses an `f64` boundary, like a Python-defined operator would.
    pub fn define(name: &str, f: fn(f64, f64) -> f64) -> BinaryOp {
        BinaryOp {
            kind: gbtl::ops::kind::register_user_binary_op(name, f, None),
        }
    }

    /// Define a user binary operator that also has a named identity, so
    /// it can serve as a monoid/semiring ⊕ (e.g. a custom `Hypot` with
    /// identity 0).
    pub fn define_with_identity(
        name: &str,
        f: fn(f64, f64) -> f64,
        identity: &str,
    ) -> Result<BinaryOp> {
        let id = gbtl::ops::kind::IdentityKind::from_name(identity).ok_or_else(|| {
            PygbError::UnknownOperator {
                name: identity.into(),
            }
        })?;
        Ok(BinaryOp {
            kind: gbtl::ops::kind::register_user_binary_op(name, f, Some(id)),
        })
    }

    /// Bring this operator into context (a `with gb.BinaryOp(...)` block).
    pub fn enter(&self) -> ContextGuard {
        context::push(CtxEntry::Binary(self.kind))
    }
}

/// A named unary operator, possibly a bound binary op
/// (`gb.UnaryOp("Times", damping_factor)` binds the constant as the
/// second argument, as the paper's PageRank does).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct UnaryOp {
    pub(crate) kind: AppliedUnaryKind,
}

impl UnaryOp {
    /// Construct a pure unary operator from a Fig. 6 name.
    pub fn new(name: &str) -> Result<Self> {
        UnaryOpKind::from_name(name)
            .map(|k| UnaryOp {
                kind: AppliedUnaryKind::Pure(k),
            })
            .ok_or_else(|| PygbError::UnknownOperator { name: name.into() })
    }

    /// `gb.UnaryOp("Times", k)`: bind `k` as the second argument of a
    /// binary operator.
    pub fn bound(name: &str, k: f64) -> Result<Self> {
        BinaryOpKind::from_name(name)
            .map(|b| UnaryOp {
                kind: AppliedUnaryKind::Bind2nd(b, k),
            })
            .ok_or_else(|| PygbError::UnknownOperator { name: name.into() })
    }

    /// Define a *user* unary operator (Section VIII), computing through
    /// `f64` like [`BinaryOp::define`].
    pub fn define(name: &str, f: fn(f64) -> f64) -> UnaryOp {
        UnaryOp {
            kind: AppliedUnaryKind::Pure(gbtl::ops::kind::register_user_unary_op(name, f)),
        }
    }

    /// Bind `k` as the *first* argument instead.
    pub fn bound_first(name: &str, k: f64) -> Result<Self> {
        BinaryOpKind::from_name(name)
            .map(|b| UnaryOp {
                kind: AppliedUnaryKind::Bind1st(b, k),
            })
            .ok_or_else(|| PygbError::UnknownOperator { name: name.into() })
    }

    /// Bring this operator into context.
    pub fn enter(&self) -> ContextGuard {
        context::push(CtxEntry::Unary(self.kind))
    }
}

/// A monoid (`gb.Monoid("Min", "MinIdentity")`, `gb.Monoid(PlusOp, 0)`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Monoid {
    pub(crate) kind: KindMonoid,
}

impl Monoid {
    /// Construct from operator and identity names.
    pub fn new(op: &str, identity: &str) -> Result<Self> {
        let op_kind = BinaryOpKind::from_name(op)
            .ok_or_else(|| PygbError::UnknownOperator { name: op.into() })?;
        let id_kind =
            IdentityKind::from_name(identity).ok_or_else(|| PygbError::UnknownOperator {
                name: identity.into(),
            })?;
        Ok(Monoid {
            kind: KindMonoid::new(op_kind, id_kind),
        })
    }

    /// `gb.Monoid(PlusOp, 0)`: operator object plus a numeric identity.
    /// Only identities representable as named elements (0, 1) are
    /// supported; others are [`PygbError::Unsupported`].
    pub fn from_op(op: BinaryOp, identity: f64) -> Result<Self> {
        let id_kind = if identity == 0.0 {
            IdentityKind::Zero
        } else if identity == 1.0 {
            IdentityKind::One
        } else {
            return Err(PygbError::Unsupported {
                context: format!(
                    "monoid identity {identity}: only 0, 1, MinIdentity, MaxIdentity are nameable"
                ),
            });
        };
        Ok(Monoid {
            kind: KindMonoid::new(op.kind, id_kind),
        })
    }

    /// Bring this monoid into context.
    pub fn enter(&self) -> ContextGuard {
        context::push(CtxEntry::Monoid(self.kind))
    }
}

/// A semiring (`gb.Semiring(PlusMonoid, TimesOp)` /
/// `gb.Semiring(gb.PlusMonoid, "Times")`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Semiring {
    pub(crate) kind: KindSemiring,
}

impl Semiring {
    /// Construct from a monoid object and a multiplicative op name.
    pub fn new(add: Monoid, mult: &str) -> Result<Self> {
        let mult_kind = BinaryOpKind::from_name(mult)
            .ok_or_else(|| PygbError::UnknownOperator { name: mult.into() })?;
        Ok(Semiring {
            kind: KindSemiring::new(add.kind, mult_kind),
        })
    }

    /// Construct from a monoid and a binary operator object.
    pub fn from_parts(add: Monoid, mult: BinaryOp) -> Self {
        Semiring {
            kind: KindSemiring::new(add.kind, mult.kind),
        }
    }

    /// Construct a predefined semiring by its GBTL name
    /// (`"ArithmeticSemiring"`, ...).
    pub fn predefined(name: &str) -> Result<Self> {
        KindSemiring::from_name(name)
            .map(|kind| Semiring { kind })
            .ok_or_else(|| PygbError::UnknownOperator { name: name.into() })
    }

    /// Bring this semiring into context.
    pub fn enter(&self) -> ContextGuard {
        context::push(CtxEntry::Semiring(self.kind))
    }
}

/// An accumulator (`gb.Accumulator("Min")`) — governs `+=` assignment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Accumulator {
    pub(crate) op: BinaryOpKind,
}

impl Accumulator {
    /// Construct from a binary operator name.
    pub fn new(name: &str) -> Result<Self> {
        BinaryOpKind::from_name(name)
            .map(|op| Accumulator { op })
            .ok_or_else(|| PygbError::UnknownOperator { name: name.into() })
    }

    /// Construct from an operator object (`gb.Accumulator(PlusOp)`).
    pub fn from_op(op: BinaryOp) -> Self {
        Accumulator { op: op.kind }
    }

    /// Bring this accumulator into context.
    pub fn enter(&self) -> ContextGuard {
        context::push(CtxEntry::Accum(self.op))
    }
}

/// The replace flag (`gb.Replace`): while in context, masked operations
/// clear masked-out output positions instead of merging.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplaceFlag;

impl ReplaceFlag {
    /// Bring replace semantics into context.
    pub fn enter(&self) -> ContextGuard {
        context::push(CtxEntry::Replace)
    }
}

// ---------------------------------------------------------------------
// Predefined operators, spelled like the paper's `gb.*` attributes
// (CamelCase consts on purpose, to echo the PyGB surface syntax).
// ---------------------------------------------------------------------

macro_rules! predefined_semiring {
    ($(#[$doc:meta])* $name:ident, $add:ident, $identity:ident, $mult:ident) => {
        $(#[$doc])*
        #[allow(non_upper_case_globals)]
        pub const $name: Semiring = Semiring {
            kind: KindSemiring {
                add: KindMonoid {
                    op: BinaryOpKind::$add,
                    identity: IdentityKind::$identity,
                },
                mult: BinaryOpKind::$mult,
            },
        };
    };
}

predefined_semiring!(
    /// `(+, ×, 0)` — `gb.ArithmeticSemiring`.
    ArithmeticSemiring, Plus, Zero, Times
);
predefined_semiring!(
    /// `(∨, ∧, false)` — `gb.LogicalSemiring` (BFS).
    LogicalSemiring, LogicalOr, Zero, LogicalAnd
);
predefined_semiring!(
    /// `(min, +, ∞)` — `gb.MinPlusSemiring` (SSSP).
    MinPlusSemiring, Min, MinIdentity, Plus
);
predefined_semiring!(
    /// `(max, ×, −∞)` — `gb.MaxTimesSemiring`.
    MaxTimesSemiring, Max, MaxIdentity, Times
);
predefined_semiring!(
    /// `(min, select1st, ∞)` — `gb.MinSelect1stSemiring`.
    MinSelect1stSemiring, Min, MinIdentity, First
);
predefined_semiring!(
    /// `(min, select2nd, ∞)` — `gb.MinSelect2ndSemiring`.
    MinSelect2ndSemiring, Min, MinIdentity, Second
);
predefined_semiring!(
    /// `(max, select1st, −∞)` — `gb.MaxSelect1stSemiring`.
    MaxSelect1stSemiring, Max, MaxIdentity, First
);
predefined_semiring!(
    /// `(max, select2nd, −∞)` — `gb.MaxSelect2ndSemiring`.
    MaxSelect2ndSemiring, Max, MaxIdentity, Second
);

macro_rules! predefined_monoid {
    ($(#[$doc:meta])* $name:ident, $op:ident, $identity:ident) => {
        $(#[$doc])*
        #[allow(non_upper_case_globals)]
        pub const $name: Monoid = Monoid {
            kind: KindMonoid {
                op: BinaryOpKind::$op,
                identity: IdentityKind::$identity,
            },
        };
    };
}

predefined_monoid!(
    /// `(+, 0)` — `gb.PlusMonoid`.
    PlusMonoid, Plus, Zero
);
predefined_monoid!(
    /// `(×, 1)` — `gb.TimesMonoid`.
    TimesMonoid, Times, One
);
predefined_monoid!(
    /// `(min, MAX)` — `gb.MinMonoid`.
    MinMonoid, Min, MinIdentity
);
predefined_monoid!(
    /// `(max, MIN)` — `gb.MaxMonoid`.
    MaxMonoid, Max, MaxIdentity
);
predefined_monoid!(
    /// `(∨, false)` — `gb.LogicalOrMonoid`.
    LogicalOrMonoid, LogicalOr, Zero
);
predefined_monoid!(
    /// `(∧, true)` — `gb.LogicalAndMonoid`.
    LogicalAndMonoid, LogicalAnd, One
);

/// `gb.Replace` — the replace-flag context object.
#[allow(non_upper_case_globals)]
pub const Replace: ReplaceFlag = ReplaceFlag;

/// The strict-types flag: while in context, the static analyzer
/// ([`crate::analyze`]) treats lossy dtype promotions and lossy
/// result-into-target casts as hard [`crate::PygbError::Invalid`]
/// errors instead of recording them as lints.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StrictTypesFlag;

impl StrictTypesFlag {
    /// Bring strict-types semantics into context.
    pub fn enter(&self) -> ContextGuard {
        context::push(CtxEntry::Strict)
    }
}

/// `gb.StrictTypes` — the strict-types context object.
#[allow(non_upper_case_globals)]
pub const StrictTypes: StrictTypesFlag = StrictTypesFlag;

// ---------------------------------------------------------------------
// ContextOp: every `enter()`-capable object can also contribute its
// stack entry to an owned `Session` (multi-tenant embedding).
// ---------------------------------------------------------------------

impl ContextOp for BinaryOp {
    fn ctx_entry(&self) -> CtxEntry {
        CtxEntry::Binary(self.kind)
    }
}

impl ContextOp for UnaryOp {
    fn ctx_entry(&self) -> CtxEntry {
        CtxEntry::Unary(self.kind)
    }
}

impl ContextOp for Monoid {
    fn ctx_entry(&self) -> CtxEntry {
        CtxEntry::Monoid(self.kind)
    }
}

impl ContextOp for Semiring {
    fn ctx_entry(&self) -> CtxEntry {
        CtxEntry::Semiring(self.kind)
    }
}

impl ContextOp for Accumulator {
    fn ctx_entry(&self) -> CtxEntry {
        CtxEntry::Accum(self.op)
    }
}

impl ContextOp for ReplaceFlag {
    fn ctx_entry(&self) -> CtxEntry {
        CtxEntry::Replace
    }
}

impl ContextOp for StrictTypesFlag {
    fn ctx_entry(&self) -> CtxEntry {
        CtxEntry::Strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_op_names() {
        assert_eq!(BinaryOp::new("Plus").unwrap().name(), "Plus");
        assert!(BinaryOp::new("Frobnicate").is_err());
    }

    #[test]
    fn fig6_constructor_chain() {
        // AdditiveInv = gb.UnaryOp("AdditiveInverse")
        let _ainv = UnaryOp::new("AdditiveInverse").unwrap();
        // PlusOp = gb.BinaryOp("Plus"); TimesOp = gb.BinaryOp("Times")
        let plus = BinaryOp::new("Plus").unwrap();
        let times = BinaryOp::new("Times").unwrap();
        // PlusAccumulate = gb.Accumulator(PlusOp)
        let _acc = Accumulator::from_op(plus);
        // PlusMonoid = gb.Monoid(PlusOp, 0)
        let pm = Monoid::from_op(plus, 0.0).unwrap();
        // ArithmeticSR = gb.Semiring(PlusMonoid, TimesOp)
        let sr = Semiring::from_parts(pm, times);
        assert_eq!(sr, ArithmeticSemiring);
    }

    #[test]
    fn named_monoid_matches_predefined() {
        let m = Monoid::new("Min", "MinIdentity").unwrap();
        assert_eq!(m, MinMonoid);
    }

    #[test]
    fn semiring_from_monoid_and_name() {
        // gb.Semiring(gb.MinMonoid, "Plus") == gb.MinPlusSemiring
        let sr = Semiring::new(MinMonoid, "Plus").unwrap();
        assert_eq!(sr, MinPlusSemiring);
    }

    #[test]
    fn predefined_by_name() {
        assert_eq!(
            Semiring::predefined("LogicalSemiring").unwrap(),
            LogicalSemiring
        );
        assert!(Semiring::predefined("NopeSemiring").is_err());
    }

    #[test]
    fn unsupported_identity_rejected() {
        let plus = BinaryOp::new("Plus").unwrap();
        assert!(Monoid::from_op(plus, 7.5).is_err());
        assert!(Monoid::from_op(plus, 1.0).is_ok());
    }

    #[test]
    fn bound_unary() {
        let damp = UnaryOp::bound("Times", 0.85).unwrap();
        match damp.kind {
            AppliedUnaryKind::Bind2nd(BinaryOpKind::Times, k) => assert_eq!(k, 0.85),
            other => panic!("unexpected {other:?}"),
        }
        assert!(UnaryOp::bound("NotAnOp", 1.0).is_err());
    }
}
