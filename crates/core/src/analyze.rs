//! Plan-time static analysis — `pygb-analyze`, the expression half.
//!
//! Every dispatch entry point ([`crate::dispatch`]) runs this pass
//! *before* deciding whether to execute or enqueue, so a malformed
//! operation fails at the statement that built it — with a diagnostic
//! naming the op, every operand's shape and dtype, and the rendered
//! source expression — never first at a nonblocking flush far from the
//! offending line. The DAG half (aliasing and fusion legality) lives in
//! `pygb-runtime`'s `analyze` module.
//!
//! Three families of checks:
//!
//! 1. **Shape/size inference** over [`MatrixExpr`]/[`VectorExpr`] trees:
//!    `mxm`/`mxv`/`vxm` conformability, element-wise operand equality,
//!    extract/assign index bounds, region-length agreement, and
//!    result-vs-target dimensions.
//! 2. **Dtype promotion** against the Table 1 lattice
//!    ([`DType::promote_checked`]): lossy promotions and lossy
//!    result-into-target casts are recorded as lints by default and
//!    become hard [`PygbError::Invalid`] errors while a
//!    [`crate::operators::StrictTypes`] guard is in context. (Every
//!    pair of the 11 dtypes has a defined promotion, so an *undefined*
//!    promotion cannot arise; lossy ones can.)
//! 3. **Mask-domain checks**: a mask whose size differs from the
//!    output's is an error; `replace` without a mask and a complemented
//!    empty mask are lints (see [`take_lints`]).
//!
//! Lints accumulate in a thread-local buffer drained by [`take_lints`];
//! they never fail an operation in default mode.

use std::cell::RefCell;
use std::sync::Arc;

use gbtl::Indices;

use crate::context;
use crate::dtype::DType;
use crate::error::{PygbError, Result};
use crate::expr::{MatOperand, MatrixExpr, MatrixExprKind, VectorExpr, VectorExprKind};
use crate::matrix::Matrix;
use crate::store::{MatrixStore, VectorStore};
use crate::value::DynScalar;
use crate::vector::Vector;

// ---------------------------------------------------------------------
// Lints.
// ---------------------------------------------------------------------

/// Keep the lint buffer bounded when nobody drains it.
const LINT_CAP: usize = 64;

thread_local! {
    static LINTS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn push_lint(msg: String) {
    LINTS.with(|l| {
        let mut l = l.borrow_mut();
        if l.len() < LINT_CAP {
            l.push(msg);
        }
    });
}

/// Drain the calling thread's analyzer lints (advisory findings that
/// did not fail the operation: lossy promotions in default mode,
/// `replace` without a mask, a complemented empty mask).
pub fn take_lints() -> Vec<String> {
    LINTS.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// Append a lint from another analysis layer (the runtime's sparsity
/// pass emits structure lints — provably-empty results consumed
/// downstream, masks provably disjoint from the operand pattern — into
/// the same buffer so they ride the serve `OK … WARN k` frames).
pub fn emit_lint(msg: String) {
    push_lint(msg);
}

fn strict() -> bool {
    context::strict_types_active()
}

// ---------------------------------------------------------------------
// Rendering: operands as `[shape dtype]`, expressions as `op(...)`.
// ---------------------------------------------------------------------

fn vfmt(s: &VectorStore) -> String {
    format!("[{} {}]", s.size(), s.dtype())
}

fn ofmt(a: &MatOperand) -> String {
    format!("[{}x{} {}]", a.nrows(), a.ncols(), a.dtype())
}

fn sfmt(s: &MatrixStore) -> String {
    format!("[{}x{} {}]", s.nrows(), s.ncols(), s.dtype())
}

/// The GraphBLAS op name a vector expression dispatches as.
pub fn vec_op_name(e: &VectorExpr) -> &'static str {
    match &e.kind {
        VectorExprKind::MxV { .. } => "mxv",
        VectorExprKind::VxM { .. } => "vxm",
        VectorExprKind::EWiseAdd { .. } => "eWiseAdd",
        VectorExprKind::EWiseMult { .. } => "eWiseMult",
        VectorExprKind::Apply { .. } => "apply",
        VectorExprKind::Extract { .. } => "extract",
        VectorExprKind::ReduceRows { .. } => "reduce",
        VectorExprKind::Ref { .. } => "assign",
        VectorExprKind::FusedMxvApply { vxm: true, .. } => "vxm",
        VectorExprKind::FusedMxvApply { vxm: false, .. } => "mxv",
        VectorExprKind::FusedEwiseChain { .. } => "eWise chain",
    }
}

/// The GraphBLAS op name a matrix expression dispatches as.
pub fn mat_op_name(e: &MatrixExpr) -> &'static str {
    match &e.kind {
        MatrixExprKind::MxM { .. } => "mxm",
        MatrixExprKind::EWiseAdd { .. } => "eWiseAdd",
        MatrixExprKind::EWiseMult { .. } => "eWiseMult",
        MatrixExprKind::Apply { .. } => "apply",
        MatrixExprKind::Transpose { .. } => "transpose",
        MatrixExprKind::Extract { .. } => "extract",
        MatrixExprKind::Ref { .. } => "assign",
    }
}

/// Render a vector expression with every operand's shape and dtype —
/// the `expr` field of analyzer diagnostics.
pub fn describe_vector_expr(e: &VectorExpr) -> String {
    match &e.kind {
        VectorExprKind::MxV { a, u, .. } => format!("mxv({}, {})", ofmt(a), vfmt(u)),
        VectorExprKind::VxM { u, a, .. } => format!("vxm({}, {})", vfmt(u), ofmt(a)),
        VectorExprKind::EWiseAdd { u, v, .. } => format!("eWiseAdd({}, {})", vfmt(u), vfmt(v)),
        VectorExprKind::EWiseMult { u, v, .. } => format!("eWiseMult({}, {})", vfmt(u), vfmt(v)),
        VectorExprKind::Apply { u, .. } => format!("apply({})", vfmt(u)),
        VectorExprKind::Extract { u, ix } => format!("extract({}, {})", vfmt(u), ix.describe()),
        VectorExprKind::ReduceRows { a, .. } => format!("reduce({})", ofmt(a)),
        VectorExprKind::Ref { u } => vfmt(u),
        VectorExprKind::FusedMxvApply { a, u, vxm, .. } => {
            if *vxm {
                format!("apply(vxm({}, {}))", vfmt(u), ofmt(a))
            } else {
                format!("apply(mxv({}, {}))", ofmt(a), vfmt(u))
            }
        }
        VectorExprKind::FusedEwiseChain { u, v, w, .. } => match w {
            Some(w) => format!("eWiseChain({}, {}, {})", vfmt(u), vfmt(v), vfmt(w)),
            None => format!("eWiseChain({}, {})", vfmt(u), vfmt(v)),
        },
    }
}

/// Render a matrix expression with every operand's shape and dtype.
pub fn describe_matrix_expr(e: &MatrixExpr) -> String {
    match &e.kind {
        MatrixExprKind::MxM { a, b, .. } => format!("mxm({}, {})", ofmt(a), ofmt(b)),
        MatrixExprKind::EWiseAdd { a, b, .. } => format!("eWiseAdd({}, {})", ofmt(a), ofmt(b)),
        MatrixExprKind::EWiseMult { a, b, .. } => format!("eWiseMult({}, {})", ofmt(a), ofmt(b)),
        MatrixExprKind::Apply { a, .. } => format!("apply({})", ofmt(a)),
        MatrixExprKind::Transpose { a } => format!("transpose({})", sfmt(a)),
        MatrixExprKind::Extract { a, rows, cols } => format!(
            "extract({}, {}, {})",
            ofmt(a),
            rows.describe(),
            cols.describe()
        ),
        MatrixExprKind::Ref { a } => sfmt(a),
    }
}

// ---------------------------------------------------------------------
// Dtype pass.
// ---------------------------------------------------------------------

/// Check one binary promotion; errors under `StrictTypes`, lints
/// otherwise.
fn check_promotion(op: &'static str, a: DType, b: DType, rendered: &str) -> Result<()> {
    let (p, loss) = DType::promote_checked(a, b);
    if let Some((victim, why)) = loss {
        let reason = format!("lossy dtype promotion {a} ⊕ {b} → {p} ({victim}: {why})");
        if strict() {
            return Err(PygbError::invalid(op, reason, rendered));
        }
        push_lint(format!("`{op}`: {reason}; in {rendered}"));
    }
    Ok(())
}

/// Check the implicit cast of the expression result into the output
/// container's dtype.
fn check_result_cast(op: &'static str, from: DType, to: DType, rendered: &str) -> Result<()> {
    if let Some(why) = from.cast_loss(to) {
        let reason = format!("result dtype {from} does not fit output dtype {to} ({why})");
        if strict() {
            return Err(PygbError::invalid(op, reason, rendered));
        }
        push_lint(format!("`{op}`: {reason}; in {rendered}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Streaming-update pass.
// ---------------------------------------------------------------------

/// Validate a streamed edge-mutation batch against the container it
/// targets (see [`crate::stream::StreamingMatrix::update_edges`]).
/// Out-of-bounds coordinates are hard errors — the batch must not have
/// mutated anything when this fires. Lossy value-into-container casts
/// and same-coordinate duplicates (which coalesce, last write wins)
/// are lints, promoted to errors under `StrictTypes` like every other
/// dtype finding.
pub fn validate_update_batch(
    shape: (usize, usize),
    dtype: DType,
    batch: &[crate::stream::EdgeUpdate],
) -> Result<()> {
    let (nrows, ncols) = shape;
    let rendered = format!(
        "update [{nrows}x{ncols} {dtype}] batch(len={})",
        batch.len()
    );
    let mut seen = std::collections::BTreeSet::new();
    let mut dups = 0usize;
    for (k, u) in batch.iter().enumerate() {
        if u.row >= nrows || u.col >= ncols {
            return Err(PygbError::invalid(
                "update",
                format!(
                    "edge ({}, {}) out of bounds for [{nrows}x{ncols}] at batch[{k}]",
                    u.row, u.col
                ),
                rendered,
            ));
        }
        if let Some(v) = u.val {
            if let Some(why) = v.dtype().cast_loss(dtype) {
                let reason = format!("lossy edge value cast {} → {dtype} ({why})", v.dtype());
                if strict() {
                    return Err(PygbError::invalid("update", reason, rendered));
                }
                push_lint(format!("`update`: {reason}; in {rendered}"));
            }
        }
        if !seen.insert((u.row, u.col)) {
            dups += 1;
        }
    }
    if dups > 0 {
        push_lint(format!(
            "`update`: {dups} duplicate coordinate(s) in one batch coalesce (last write wins); in {rendered}"
        ));
    }
    Ok(())
}

fn vec_expr_dtypes(e: &VectorExpr, rendered: &str) -> Result<()> {
    let op = vec_op_name(e);
    match &e.kind {
        VectorExprKind::MxV { a, u, .. }
        | VectorExprKind::VxM { u, a, .. }
        | VectorExprKind::FusedMxvApply { a, u, .. } => {
            check_promotion(op, a.dtype(), u.dtype(), rendered)
        }
        VectorExprKind::EWiseAdd { u, v, .. } | VectorExprKind::EWiseMult { u, v, .. } => {
            check_promotion(op, u.dtype(), v.dtype(), rendered)
        }
        VectorExprKind::FusedEwiseChain { u, v, w, .. } => {
            check_promotion(op, u.dtype(), v.dtype(), rendered)?;
            if let Some(w) = w {
                let inner = DType::promote(u.dtype(), v.dtype());
                check_promotion(op, inner, w.dtype(), rendered)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn mat_expr_dtypes(e: &MatrixExpr, rendered: &str) -> Result<()> {
    let op = mat_op_name(e);
    match &e.kind {
        MatrixExprKind::MxM { a, b, .. }
        | MatrixExprKind::EWiseAdd { a, b, .. }
        | MatrixExprKind::EWiseMult { a, b, .. } => {
            check_promotion(op, a.dtype(), b.dtype(), rendered)
        }
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------
// Shape pass (expression-internal conformability).
// ---------------------------------------------------------------------

fn vec_expr_shapes(e: &VectorExpr, rendered: &str) -> Result<()> {
    let op = vec_op_name(e);
    match &e.kind {
        VectorExprKind::MxV { a, u, .. }
        | VectorExprKind::FusedMxvApply {
            a, u, vxm: false, ..
        } => {
            if a.ncols() != u.size() {
                return Err(PygbError::invalid(
                    op,
                    format!(
                        "matrix is {}x{} but vector has size {} (need {})",
                        a.nrows(),
                        a.ncols(),
                        u.size(),
                        a.ncols()
                    ),
                    rendered,
                ));
            }
        }
        VectorExprKind::VxM { u, a, .. }
        | VectorExprKind::FusedMxvApply {
            a, u, vxm: true, ..
        } => {
            if a.nrows() != u.size() {
                return Err(PygbError::invalid(
                    op,
                    format!(
                        "vector has size {} but matrix is {}x{} (need {})",
                        u.size(),
                        a.nrows(),
                        a.ncols(),
                        a.nrows()
                    ),
                    rendered,
                ));
            }
        }
        VectorExprKind::EWiseAdd { u, v, .. } | VectorExprKind::EWiseMult { u, v, .. } => {
            if u.size() != v.size() {
                return Err(PygbError::invalid(
                    op,
                    format!("operands have sizes {} and {}", u.size(), v.size()),
                    rendered,
                ));
            }
        }
        VectorExprKind::FusedEwiseChain { u, v, w, .. } => {
            if u.size() != v.size() || w.as_ref().is_some_and(|w| w.size() != u.size()) {
                return Err(PygbError::invalid(
                    op,
                    format!(
                        "operands have sizes {}, {}{}",
                        u.size(),
                        v.size(),
                        match w {
                            Some(w) => format!(", {}", w.size()),
                            None => String::new(),
                        }
                    ),
                    rendered,
                ));
            }
        }
        VectorExprKind::Extract { u, ix } => {
            ix.validate(u.size())
                .map_err(|e| PygbError::invalid(op, e.to_string(), rendered))?;
        }
        VectorExprKind::Apply { .. }
        | VectorExprKind::ReduceRows { .. }
        | VectorExprKind::Ref { .. } => {}
    }
    Ok(())
}

fn mat_expr_shapes(e: &MatrixExpr, rendered: &str) -> Result<()> {
    let op = mat_op_name(e);
    match &e.kind {
        MatrixExprKind::MxM { a, b, .. } => {
            if a.ncols() != b.nrows() {
                return Err(PygbError::invalid(
                    op,
                    format!(
                        "inner dimensions disagree: {}x{} @ {}x{}",
                        a.nrows(),
                        a.ncols(),
                        b.nrows(),
                        b.ncols()
                    ),
                    rendered,
                ));
            }
        }
        MatrixExprKind::EWiseAdd { a, b, .. } | MatrixExprKind::EWiseMult { a, b, .. } => {
            if (a.nrows(), a.ncols()) != (b.nrows(), b.ncols()) {
                return Err(PygbError::invalid(
                    op,
                    format!(
                        "operands have shapes {}x{} and {}x{}",
                        a.nrows(),
                        a.ncols(),
                        b.nrows(),
                        b.ncols()
                    ),
                    rendered,
                ));
            }
        }
        MatrixExprKind::Extract { a, rows, cols } => {
            rows.validate(a.nrows())
                .map_err(|e| PygbError::invalid(op, format!("row selection: {e}"), rendered))?;
            cols.validate(a.ncols())
                .map_err(|e| PygbError::invalid(op, format!("column selection: {e}"), rendered))?;
        }
        MatrixExprKind::Apply { .. }
        | MatrixExprKind::Transpose { .. }
        | MatrixExprKind::Ref { .. } => {}
    }
    Ok(())
}

/// Validate a vector expression tree in isolation (operand
/// conformability and strict-mode dtype promotion) — the
/// expression-build-time entry point, also reachable as
/// [`VectorExpr::validate`].
pub fn validate_vector_expr(e: &VectorExpr) -> Result<()> {
    let rendered = describe_vector_expr(e);
    vec_expr_shapes(e, &rendered)?;
    vec_expr_dtypes(e, &rendered)
}

/// Validate a matrix expression tree in isolation — see
/// [`validate_vector_expr`].
pub fn validate_matrix_expr(e: &MatrixExpr) -> Result<()> {
    let rendered = describe_matrix_expr(e);
    mat_expr_shapes(e, &rendered)?;
    mat_expr_dtypes(e, &rendered)
}

// ---------------------------------------------------------------------
// Mask-domain pass.
// ---------------------------------------------------------------------

fn vec_mask_checks(
    op: &'static str,
    target_size: usize,
    mask: &Option<(Arc<VectorStore>, bool)>,
    replace: bool,
    rendered: &str,
) -> Result<()> {
    match mask {
        Some((m, complemented)) => {
            if m.size() != target_size {
                return Err(PygbError::invalid(
                    op,
                    format!(
                        "mask has size {} but the output has size {target_size}",
                        m.size()
                    ),
                    rendered,
                ));
            }
            if *complemented {
                // Peek without flushing: a pending mask's stored-value
                // count is unknowable here, so the lint stays silent.
                if let Some(m) = crate::nb::peek_vec(m) {
                    if m.nvals() == 0 {
                        push_lint(format!(
                            "`{op}`: complemented mask has no stored values, so it selects \
                             the entire output; in {rendered}"
                        ));
                    }
                }
            }
        }
        None => {
            if replace {
                push_lint(format!(
                    "`{op}`: replace without a mask has no effect beyond a full overwrite; \
                     in {rendered}"
                ));
            }
        }
    }
    Ok(())
}

fn mat_mask_checks(
    op: &'static str,
    target_shape: (usize, usize),
    mask: &Option<(Arc<MatrixStore>, bool)>,
    replace: bool,
    rendered: &str,
) -> Result<()> {
    match mask {
        Some((m, complemented)) => {
            if (m.nrows(), m.ncols()) != target_shape {
                return Err(PygbError::invalid(
                    op,
                    format!(
                        "mask has shape {}x{} but the output has shape {}x{}",
                        m.nrows(),
                        m.ncols(),
                        target_shape.0,
                        target_shape.1
                    ),
                    rendered,
                ));
            }
            if *complemented {
                if let Some(m) = crate::nb::peek_mat(m) {
                    if m.nvals() == 0 {
                        push_lint(format!(
                            "`{op}`: complemented mask has no stored values, so it selects \
                             the entire output; in {rendered}"
                        ));
                    }
                }
            }
        }
        None => {
            if replace {
                push_lint(format!(
                    "`{op}`: replace without a mask has no effect beyond a full overwrite; \
                     in {rendered}"
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Whole-operation checks (the dispatch entry hooks).
// ---------------------------------------------------------------------

/// Full analysis of `target[mask] = expr` (vector): expression
/// conformability, region bounds and length, result-vs-target size,
/// mask domain, dtype promotion and result cast. Runs before the
/// deferring branch in [`crate::dispatch::eval_vector`], so blocking
/// evaluation and DAG enqueue validate identically.
pub(crate) fn check_vector(
    target: &Vector,
    mask: &Option<(Arc<VectorStore>, bool)>,
    replace: bool,
    region: &Option<Indices>,
    expr: &VectorExpr,
) -> Result<()> {
    let rendered = describe_vector_expr(expr);
    let op = vec_op_name(expr);
    vec_expr_shapes(expr, &rendered)?;
    let rs = expr.result_size();
    let ts = target.size();
    match region {
        Some(ix) => {
            ix.validate(ts)
                .map_err(|e| PygbError::invalid("assign", e.to_string(), rendered.clone()))?;
            let k = ix.len(ts);
            if k != rs {
                return Err(PygbError::invalid(
                    "assign",
                    format!(
                        "index region {} selects {k} positions but the right-hand side has \
                         size {rs}",
                        ix.describe()
                    ),
                    rendered,
                ));
            }
        }
        None => {
            if rs != ts {
                return Err(PygbError::invalid(
                    op,
                    format!("result has size {rs} but the target vector has size {ts}"),
                    rendered,
                ));
            }
        }
    }
    vec_mask_checks(op, ts, mask, replace, &rendered)?;
    vec_expr_dtypes(expr, &rendered)?;
    check_result_cast(op, expr.result_dtype(), target.dtype(), &rendered)
}

/// Matrix analog of [`check_vector`].
pub(crate) fn check_matrix(
    target: &Matrix,
    mask: &Option<(Arc<MatrixStore>, bool)>,
    replace: bool,
    region: &Option<(Indices, Indices)>,
    expr: &MatrixExpr,
) -> Result<()> {
    let rendered = describe_matrix_expr(expr);
    let op = mat_op_name(expr);
    mat_expr_shapes(expr, &rendered)?;
    let (rr, rc) = expr.result_shape();
    let (tr, tc) = (target.nrows(), target.ncols());
    match region {
        Some((rows, cols)) => {
            rows.validate(tr).map_err(|e| {
                PygbError::invalid("assign", format!("row selection: {e}"), rendered.clone())
            })?;
            cols.validate(tc).map_err(|e| {
                PygbError::invalid("assign", format!("column selection: {e}"), rendered.clone())
            })?;
            let (kr, kc) = (rows.len(tr), cols.len(tc));
            if (kr, kc) != (rr, rc) {
                return Err(PygbError::invalid(
                    "assign",
                    format!(
                        "index region ({}, {}) selects {kr}x{kc} positions but the \
                         right-hand side has shape {rr}x{rc}",
                        rows.describe(),
                        cols.describe()
                    ),
                    rendered,
                ));
            }
        }
        None => {
            if (rr, rc) != (tr, tc) {
                return Err(PygbError::invalid(
                    op,
                    format!("result has shape {rr}x{rc} but the target matrix has shape {tr}x{tc}"),
                    rendered,
                ));
            }
        }
    }
    mat_mask_checks(op, (tr, tc), mask, replace, &rendered)?;
    mat_expr_dtypes(expr, &rendered)?;
    check_result_cast(op, expr.result_dtype(), target.dtype(), &rendered)
}

/// Analysis of `target[mask][region] = constant` (vector): region
/// bounds, mask domain, and the constant's cast into the target dtype.
pub(crate) fn check_vector_scalar(
    target: &Vector,
    mask: &Option<(Arc<VectorStore>, bool)>,
    replace: bool,
    region: &Option<Indices>,
    value: &DynScalar,
) -> Result<()> {
    let rendered = format!("[{} {}] = {}", target.size(), target.dtype(), value.dtype());
    if let Some(ix) = region {
        ix.validate(target.size())
            .map_err(|e| PygbError::invalid("assign", e.to_string(), rendered.clone()))?;
    }
    vec_mask_checks("assign", target.size(), mask, replace, &rendered)?;
    check_result_cast("assign", value.dtype(), target.dtype(), &rendered)
}

/// Matrix analog of [`check_vector_scalar`].
pub(crate) fn check_matrix_scalar(
    target: &Matrix,
    mask: &Option<(Arc<MatrixStore>, bool)>,
    replace: bool,
    region: &Option<(Indices, Indices)>,
    value: &DynScalar,
) -> Result<()> {
    let rendered = format!(
        "[{}x{} {}] = {}",
        target.nrows(),
        target.ncols(),
        target.dtype(),
        value.dtype()
    );
    if let Some((rows, cols)) = region {
        rows.validate(target.nrows()).map_err(|e| {
            PygbError::invalid("assign", format!("row selection: {e}"), rendered.clone())
        })?;
        cols.validate(target.ncols()).map_err(|e| {
            PygbError::invalid("assign", format!("column selection: {e}"), rendered.clone())
        })?;
    }
    mat_mask_checks(
        "assign",
        (target.nrows(), target.ncols()),
        mask,
        replace,
        &rendered,
    )?;
    check_result_cast("assign", value.dtype(), target.dtype(), &rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::StrictTypes;

    #[test]
    fn mxm_inner_mismatch_is_invalid_at_build() {
        let a = Matrix::new(2, 3, DType::Fp64);
        let b = Matrix::new(4, 2, DType::Fp64);
        let e = a.matmul(&b);
        let err = validate_matrix_expr(&e).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid `mxm`: inner dimensions disagree: 2x3 @ 4x2; in \
             mxm([2x3 fp64], [4x2 fp64])"
        );
    }

    #[test]
    fn transposed_operand_uses_logical_shape() {
        let a = Matrix::new(2, 3, DType::Fp64);
        // aᵀ is 3x2, so aᵀ @ a (2x3) conforms.
        assert!(validate_matrix_expr(&a.t().matmul(&a)).is_ok());
        // a @ a does not (2x3 @ 2x3).
        assert!(validate_matrix_expr(&a.matmul(&a)).is_err());
    }

    #[test]
    fn ewise_vector_size_mismatch() {
        let u = Vector::new(2, DType::Fp64);
        let v = Vector::new(3, DType::Fp64);
        let err = validate_vector_expr(&(&u + &v)).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid `eWiseAdd`: operands have sizes 2 and 3; in \
             eWiseAdd([2 fp64], [3 fp64])"
        );
    }

    #[test]
    fn strict_mode_promotes_lossy_lint_to_error() {
        let u = Vector::new(3, DType::Int64);
        let v = Vector::new(3, DType::Fp32);
        // Default mode: fine, but linted.
        take_lints();
        assert!(validate_vector_expr(&(&u + &v)).is_ok());
        let lints = take_lints();
        assert_eq!(lints.len(), 1);
        assert!(
            lints[0].contains("lossy dtype promotion int64 ⊕ fp32 → fp32"),
            "{}",
            lints[0]
        );
        // Strict mode: hard error.
        let _strict = StrictTypes.enter();
        let err = validate_vector_expr(&(&u + &v)).unwrap_err();
        assert!(matches!(err, PygbError::Invalid { op: "eWiseAdd", .. }));
    }

    #[test]
    fn exact_promotions_stay_silent_even_in_strict_mode() {
        let _strict = StrictTypes.enter();
        let u = Vector::new(3, DType::Int16);
        let v = Vector::new(3, DType::Fp64);
        take_lints();
        assert!(validate_vector_expr(&(&u + &v)).is_ok());
        assert!(take_lints().is_empty());
    }

    #[test]
    fn lint_buffer_is_bounded() {
        take_lints();
        for i in 0..(LINT_CAP + 10) {
            push_lint(format!("lint {i}"));
        }
        assert_eq!(take_lints().len(), LINT_CAP);
    }
}
