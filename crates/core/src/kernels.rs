//! JIT kernels: the compiled-module bodies the registry instantiates.
//!
//! Each GraphBLAS operation contributes a *factory* keyed by function
//! name. A factory reads the output dtype from the [`ModuleKey`]
//! (`-DC_TYPE=...` in the paper's pipeline) and monomorphizes the
//! generic kernel body for exactly that type — the Rust analog of
//! instantiating `operation_binding.cpp`. Operator kinds travel in the
//! argument bundle (they are runtime constructor arguments in GBTL,
//! e.g. `BinaryOp_Bind2nd(damping)`), while their *names* are part of
//! the key so the module space matches the paper's.
//!
//! Operand stores arrive pre-cast to the kernel's domain; masks arrive
//! pre-coerced to boolean pattern containers.

use std::sync::Arc;

use gbtl::ops::accum::MaybeAccum;
use gbtl::ops::kind::{AppliedUnaryKind, BinaryOpKind, KindMonoid, KindSemiring, KindUnaryOp};
use gbtl::{Indices, MatrixMask, VectorMask};
use pygb_jit::kernel::FnKernel;
use pygb_jit::{FactoryRegistry, JitError, Kernel, ModuleKey};

use crate::dtype::DType;
use crate::store::{Element, MatrixStore, VectorStore};
use crate::value::DynScalar;

/// Argument bundle for kernels producing a matrix.
pub(crate) struct MatArgs {
    /// The output container (taken from the target; put back after).
    pub c: MatrixStore,
    /// Optional boolean mask pattern.
    pub mask: Option<Arc<gbtl::Matrix<bool>>>,
    /// Whether the mask is complemented.
    pub complemented: bool,
    /// First matrix operand.
    pub a: Option<Arc<MatrixStore>>,
    /// Whether `a` is transposed.
    pub at: bool,
    /// Second matrix operand.
    pub b: Option<Arc<MatrixStore>>,
    /// Whether `b` is transposed.
    pub bt: bool,
    /// Semiring (mxm).
    pub semiring: Option<KindSemiring>,
    /// Binary operator (eWise).
    pub binop: Option<BinaryOpKind>,
    /// Unary operator (apply).
    pub unary: Option<AppliedUnaryKind>,
    /// Accumulator.
    pub accum: Option<BinaryOpKind>,
    /// Replace flag.
    pub replace: bool,
    /// Row index region (assign / extract).
    pub rows: Option<Indices>,
    /// Column index region (assign / extract).
    pub cols: Option<Indices>,
    /// Constant value (assign-constant).
    pub value: Option<DynScalar>,
}

impl MatArgs {
    pub(crate) fn new(c: MatrixStore) -> Self {
        MatArgs {
            c,
            mask: None,
            complemented: false,
            a: None,
            at: false,
            b: None,
            bt: false,
            semiring: None,
            binop: None,
            unary: None,
            accum: None,
            replace: false,
            rows: None,
            cols: None,
            value: None,
        }
    }
}

/// Argument bundle for kernels producing a vector.
pub(crate) struct VecArgs {
    /// The output container.
    pub c: VectorStore,
    /// Optional boolean mask pattern.
    pub mask: Option<Arc<gbtl::Vector<bool>>>,
    /// Whether the mask is complemented.
    pub complemented: bool,
    /// Matrix operand (mxv / vxm / row-reduce).
    pub a: Option<Arc<MatrixStore>>,
    /// Whether `a` is transposed.
    pub at: bool,
    /// First vector operand.
    pub u: Option<Arc<VectorStore>>,
    /// Second vector operand.
    pub v: Option<Arc<VectorStore>>,
    /// Third vector operand (fused eWise chains).
    pub w: Option<Arc<VectorStore>>,
    /// Semiring (mxv / vxm).
    pub semiring: Option<KindSemiring>,
    /// Binary operator (eWise).
    pub binop: Option<BinaryOpKind>,
    /// Second binary operator (outer op of fused eWise chains).
    pub binop2: Option<BinaryOpKind>,
    /// Unary operator (apply).
    pub unary: Option<AppliedUnaryKind>,
    /// Monoid (row-reduce / fused eWise-reduce).
    pub monoid: Option<KindMonoid>,
    /// Accumulator.
    pub accum: Option<BinaryOpKind>,
    /// Replace flag.
    pub replace: bool,
    /// Index region (assign / extract).
    pub ix: Option<Indices>,
    /// Constant value (assign-constant).
    pub value: Option<DynScalar>,
    /// Scalar result (fused eWise-reduce), written by the kernel.
    pub out: Option<DynScalar>,
}

impl VecArgs {
    pub(crate) fn new(c: VectorStore) -> Self {
        VecArgs {
            c,
            mask: None,
            complemented: false,
            a: None,
            at: false,
            u: None,
            v: None,
            w: None,
            semiring: None,
            binop: None,
            binop2: None,
            unary: None,
            monoid: None,
            accum: None,
            replace: false,
            ix: None,
            value: None,
            out: None,
        }
    }
}

/// Argument bundle for scalar-producing reductions.
pub(crate) struct ScalarArgs {
    /// Matrix operand (reduce_m_scalar).
    pub a: Option<Arc<MatrixStore>>,
    /// Vector operand (reduce_v_scalar).
    pub u: Option<Arc<VectorStore>>,
    /// The reduction monoid.
    pub monoid: Option<KindMonoid>,
    /// The result, written by the kernel.
    pub out: Option<DynScalar>,
}

// ---------------------------------------------------------------------
// Mask adapters: runtime mask choice as a single concrete type.
// ---------------------------------------------------------------------

enum MMask<'x> {
    None,
    Plain(&'x gbtl::Matrix<bool>),
    Comp(&'x gbtl::Matrix<bool>),
}

impl MatrixMask for MMask<'_> {
    fn mask_shape(&self) -> (usize, usize) {
        match self {
            MMask::None => (usize::MAX, usize::MAX),
            MMask::Plain(m) | MMask::Comp(m) => m.shape(),
        }
    }
    #[inline]
    fn allows(&self, i: usize, j: usize) -> bool {
        match self {
            MMask::None => true,
            MMask::Plain(m) => MatrixMask::allows(*m, i, j),
            MMask::Comp(m) => !MatrixMask::allows(*m, i, j),
        }
    }
    fn is_all(&self) -> bool {
        matches!(self, MMask::None)
    }
    fn probe(&self) -> gbtl::MaskProbe {
        match self {
            MMask::None => gbtl::MaskProbe::All,
            MMask::Plain(_) => gbtl::MaskProbe::Structural,
            MMask::Comp(_) => gbtl::MaskProbe::StructuralComplement,
        }
    }
    fn truthy_cols_in_row(&self, i: usize, out: &mut Vec<usize>) {
        match self {
            MMask::None => {}
            MMask::Plain(m) | MMask::Comp(m) => m.truthy_cols_in_row(i, out),
        }
    }
}

fn mmask<'x>(mask: &'x Option<Arc<gbtl::Matrix<bool>>>, complemented: bool) -> MMask<'x> {
    match (mask, complemented) {
        (None, _) => MMask::None,
        (Some(m), false) => MMask::Plain(m),
        (Some(m), true) => MMask::Comp(m),
    }
}

enum VMask<'x> {
    None,
    Plain(&'x gbtl::Vector<bool>),
    Comp(&'x gbtl::Vector<bool>),
}

impl VectorMask for VMask<'_> {
    fn mask_size(&self) -> usize {
        match self {
            VMask::None => usize::MAX,
            VMask::Plain(v) | VMask::Comp(v) => v.size(),
        }
    }
    #[inline]
    fn allows(&self, i: usize) -> bool {
        match self {
            VMask::None => true,
            VMask::Plain(v) => VectorMask::allows(*v, i),
            VMask::Comp(v) => !VectorMask::allows(*v, i),
        }
    }
    fn is_all(&self) -> bool {
        matches!(self, VMask::None)
    }
    fn probe(&self) -> gbtl::MaskProbe {
        match self {
            VMask::None => gbtl::MaskProbe::All,
            VMask::Plain(_) => gbtl::MaskProbe::Structural,
            VMask::Comp(_) => gbtl::MaskProbe::StructuralComplement,
        }
    }
    fn truthy_indices(&self, out: &mut Vec<usize>) {
        match self {
            VMask::None => {}
            VMask::Plain(v) | VMask::Comp(v) => v.truthy_indices(out),
        }
    }
}

fn vmask<'x>(mask: &'x Option<Arc<gbtl::Vector<bool>>>, complemented: bool) -> VMask<'x> {
    match (mask, complemented) {
        (None, _) => VMask::None,
        (Some(v), false) => VMask::Plain(v),
        (Some(v), true) => VMask::Comp(v),
    }
}

// ---------------------------------------------------------------------
// Typed access helpers.
// ---------------------------------------------------------------------

fn bad(what: &str) -> JitError {
    JitError::bad_key(format!("kernel argument bundle missing `{what}`"))
}

fn typed_m<'x, T: Element>(
    s: &'x Option<Arc<MatrixStore>>,
    what: &str,
) -> Result<&'x gbtl::Matrix<T>, JitError> {
    let store = s.as_ref().ok_or_else(|| bad(what))?;
    T::unwrap_matrix(store).ok_or_else(|| {
        JitError::bad_key(format!(
            "`{what}` has dtype {} but kernel was instantiated for {}",
            store.dtype(),
            T::DTYPE
        ))
    })
}

fn typed_v<'x, T: Element>(
    s: &'x Option<Arc<VectorStore>>,
    what: &str,
) -> Result<&'x gbtl::Vector<T>, JitError> {
    let store = s.as_ref().ok_or_else(|| bad(what))?;
    T::unwrap_vector(store).ok_or_else(|| {
        JitError::bad_key(format!(
            "`{what}` has dtype {} but kernel was instantiated for {}",
            store.dtype(),
            T::DTYPE
        ))
    })
}

fn take_c_m<T: Element>(args: &mut MatArgs) -> Result<gbtl::Matrix<T>, JitError> {
    let c = std::mem::replace(&mut args.c, MatrixStore::placeholder());
    T::unwrap_matrix_owned(c).ok_or_else(|| JitError::bad_key("output dtype mismatch"))
}

fn take_c_v<T: Element>(args: &mut VecArgs) -> Result<gbtl::Vector<T>, JitError> {
    let c = std::mem::replace(&mut args.c, VectorStore::placeholder());
    T::unwrap_vector_owned(c).ok_or_else(|| JitError::bad_key("output dtype mismatch"))
}

fn view<T: gbtl::Scalar>(m: &gbtl::Matrix<T>, transposed: bool) -> gbtl::MatrixArg<'_, T> {
    if transposed {
        gbtl::transpose(m)
    } else {
        gbtl::MatrixArg::Plain(m)
    }
}

/// Resolve the SpMV operand under a plan-time direction hint.
///
/// At this layer orientation is *forced*: a plain operand always runs
/// pull, a transposed one always runs push (there is no dual view, so
/// the gbtl density probe never fires). A hint that agrees with the
/// forced direction changes nothing; a hint that disagrees swaps in the
/// memoized transpose of the store ([`crate::facts::cached_transpose`])
/// with the orientation flag flipped — same logical operand, opposite
/// kernel direction. `natural_pull` is whether the un-hinted selection
/// pulls (`!at` for mxv, `at` for vxm).
fn spmv_hint_operand(
    a: &Option<Arc<MatrixStore>>,
    at: bool,
    natural_pull: bool,
) -> (Option<Arc<MatrixStore>>, bool) {
    let Some(dir) = crate::facts::take_spmv_hint() else {
        return (a.clone(), at);
    };
    pygb_obs::registry()
        .counter("opt/static_kernel_hints")
        .inc();
    let want_pull = dir == gbtl::SpmvDirection::Pull;
    match a {
        Some(src) if want_pull != natural_pull => (Some(crate::facts::cached_transpose(src)), !at),
        _ => (a.clone(), at),
    }
}

/// Feed the substrate's SpGEMM kernel report into the runtime's
/// selection counters.
fn record_mxm_select(kernel: gbtl::MxmKernel) {
    let sel = match kernel {
        gbtl::MxmKernel::Gustavson => pygb_jit::MxmSelect::Unmasked,
        gbtl::MxmKernel::MaskedGustavson => pygb_jit::MxmSelect::MaskedGustavson,
        gbtl::MxmKernel::MaskedDot => pygb_jit::MxmSelect::MaskedDot,
    };
    crate::dispatch::runtime()
        .cache()
        .stats()
        .record_mxm_select(sel);
}

/// Feed the substrate's SpMV kernel report into the runtime's selection
/// counters.
fn record_spmv_select(kernel: gbtl::SpmvKernel) {
    let sel = match kernel {
        gbtl::SpmvKernel::Pull => pygb_jit::SpmvSelect::Pull,
        gbtl::SpmvKernel::MaskedPull => pygb_jit::SpmvSelect::MaskedPull,
        gbtl::SpmvKernel::Push => pygb_jit::SpmvSelect::Push,
        gbtl::SpmvKernel::MaskedPush => pygb_jit::SpmvSelect::MaskedPush,
    };
    crate::dispatch::runtime()
        .cache()
        .stats()
        .record_spmv_select(sel);
}

// ---------------------------------------------------------------------
// Kernel bodies, generic over the instantiated domain type.
// ---------------------------------------------------------------------

fn k_mxm<T: Element>(args: &mut MatArgs) -> Result<(), JitError> {
    let sr = args.semiring.ok_or_else(|| bad("semiring"))?;
    let mut c = take_c_m::<T>(args)?;
    let a = typed_m::<T>(&args.a, "a")?;
    let b = typed_m::<T>(&args.b, "b")?;
    // Forward a plan-time family hint to the substrate's selection; it
    // only takes effect when both masked families are legal there.
    let family_hint = crate::facts::take_mxm_hint();
    if let Some(family) = family_hint {
        gbtl::set_mxm_family_hint(family);
    }
    let r = gbtl::operations::mxm(
        &mut c,
        &mmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        &sr,
        view(a, args.at),
        view(b, args.bt),
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_matrix(c);
    let kernel = r.map_err(JitError::op)?;
    let honored = matches!(
        (family_hint, kernel),
        (Some(gbtl::MxmFamily::MaskedDot), gbtl::MxmKernel::MaskedDot)
            | (
                Some(gbtl::MxmFamily::MaskedGustavson),
                gbtl::MxmKernel::MaskedGustavson
            )
    );
    if honored {
        pygb_obs::registry()
            .counter("opt/static_kernel_hints")
            .inc();
    }
    record_mxm_select(kernel);
    Ok(())
}

fn k_ewise_add_m<T: Element>(args: &mut MatArgs) -> Result<(), JitError> {
    let op = KindUnaryWrap::binop(args.binop)?;
    let mut c = take_c_m::<T>(args)?;
    let a = typed_m::<T>(&args.a, "a")?;
    let b = typed_m::<T>(&args.b, "b")?;
    let r = gbtl::operations::e_wise_add_matrix(
        &mut c,
        &mmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        op,
        view(a, args.at),
        view(b, args.bt),
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_matrix(c);
    r.map_err(JitError::op)
}

fn k_ewise_mult_m<T: Element>(args: &mut MatArgs) -> Result<(), JitError> {
    let op = KindUnaryWrap::binop(args.binop)?;
    let mut c = take_c_m::<T>(args)?;
    let a = typed_m::<T>(&args.a, "a")?;
    let b = typed_m::<T>(&args.b, "b")?;
    let r = gbtl::operations::e_wise_mult_matrix(
        &mut c,
        &mmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        op,
        view(a, args.at),
        view(b, args.bt),
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_matrix(c);
    r.map_err(JitError::op)
}

fn k_apply_m<T: Element>(args: &mut MatArgs) -> Result<(), JitError> {
    let op = KindUnaryOp(args.unary.ok_or_else(|| bad("unary"))?);
    let mut c = take_c_m::<T>(args)?;
    let a = typed_m::<T>(&args.a, "a")?;
    let r = gbtl::operations::apply_matrix(
        &mut c,
        &mmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        op,
        view(a, args.at),
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_matrix(c);
    r.map_err(JitError::op)
}

fn k_transpose_m<T: Element>(args: &mut MatArgs) -> Result<(), JitError> {
    let mut c = take_c_m::<T>(args)?;
    let a = typed_m::<T>(&args.a, "a")?;
    let r = gbtl::operations::transpose_into(
        &mut c,
        &mmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        view(a, args.at),
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_matrix(c);
    r.map_err(JitError::op)
}

fn k_extract_m<T: Element>(args: &mut MatArgs) -> Result<(), JitError> {
    let mut c = take_c_m::<T>(args)?;
    let a = typed_m::<T>(&args.a, "a")?;
    let rows = args.rows.clone().ok_or_else(|| bad("rows"))?;
    let cols = args.cols.clone().ok_or_else(|| bad("cols"))?;
    let r = gbtl::operations::extract_matrix(
        &mut c,
        &mmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        view(a, args.at),
        &rows,
        &cols,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_matrix(c);
    r.map_err(JitError::op)
}

fn k_assign_m<T: Element>(args: &mut MatArgs) -> Result<(), JitError> {
    let mut c = take_c_m::<T>(args)?;
    let a = typed_m::<T>(&args.a, "a")?;
    let rows = args.rows.clone().unwrap_or(Indices::All);
    let cols = args.cols.clone().unwrap_or(Indices::All);
    let r = gbtl::operations::assign_matrix(
        &mut c,
        &mmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        a,
        &rows,
        &cols,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_matrix(c);
    r.map_err(JitError::op)
}

fn k_assign_m_const<T: Element>(args: &mut MatArgs) -> Result<(), JitError> {
    let value = T::from_dyn(args.value.ok_or_else(|| bad("value"))?);
    let rows = args.rows.clone().unwrap_or(Indices::All);
    let cols = args.cols.clone().unwrap_or(Indices::All);
    let mut c = take_c_m::<T>(args)?;
    let r = gbtl::operations::assign_matrix_constant(
        &mut c,
        &mmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        value,
        &rows,
        &cols,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_matrix(c);
    r.map_err(JitError::op)
}

fn k_mxv<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let sr = args.semiring.ok_or_else(|| bad("semiring"))?;
    let mut c = take_c_v::<T>(args)?;
    let (astore, at) = spmv_hint_operand(&args.a, args.at, !args.at);
    let a = typed_m::<T>(&astore, "a")?;
    let u = typed_v::<T>(&args.u, "u")?;
    let r = gbtl::operations::mxv(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        &sr,
        view(a, at),
        u,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    record_spmv_select(r.map_err(JitError::op)?);
    Ok(())
}

fn k_vxm<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let sr = args.semiring.ok_or_else(|| bad("semiring"))?;
    let mut c = take_c_v::<T>(args)?;
    let (astore, at) = spmv_hint_operand(&args.a, args.at, args.at);
    let a = typed_m::<T>(&astore, "a")?;
    let u = typed_v::<T>(&args.u, "u")?;
    let r = gbtl::operations::vxm(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        &sr,
        u,
        view(a, at),
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    record_spmv_select(r.map_err(JitError::op)?);
    Ok(())
}

fn k_ewise_add_v<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let op = KindUnaryWrap::binop(args.binop)?;
    let mut c = take_c_v::<T>(args)?;
    let u = typed_v::<T>(&args.u, "u")?;
    let v = typed_v::<T>(&args.v, "v")?;
    let r = gbtl::operations::e_wise_add_vector(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        op,
        u,
        v,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    r.map_err(JitError::op)
}

fn k_ewise_mult_v<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let op = KindUnaryWrap::binop(args.binop)?;
    let mut c = take_c_v::<T>(args)?;
    let u = typed_v::<T>(&args.u, "u")?;
    let v = typed_v::<T>(&args.v, "v")?;
    let r = gbtl::operations::e_wise_mult_vector(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        op,
        u,
        v,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    r.map_err(JitError::op)
}

fn k_apply_v<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let op = KindUnaryOp(args.unary.ok_or_else(|| bad("unary"))?);
    let mut c = take_c_v::<T>(args)?;
    let u = typed_v::<T>(&args.u, "u")?;
    let r = gbtl::operations::apply_vector(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        op,
        u,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    r.map_err(JitError::op)
}

fn k_extract_v<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let mut c = take_c_v::<T>(args)?;
    let u = typed_v::<T>(&args.u, "u")?;
    let ix = args.ix.clone().ok_or_else(|| bad("ix"))?;
    let r = gbtl::operations::extract_vector(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        u,
        &ix,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    r.map_err(JitError::op)
}

fn k_assign_v<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let mut c = take_c_v::<T>(args)?;
    let u = typed_v::<T>(&args.u, "u")?;
    let ix = args.ix.clone().unwrap_or(Indices::All);
    let r = gbtl::operations::assign_vector(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        u,
        &ix,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    r.map_err(JitError::op)
}

fn k_assign_v_const<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let value = T::from_dyn(args.value.ok_or_else(|| bad("value"))?);
    let ix = args.ix.clone().unwrap_or(Indices::All);
    let mut c = take_c_v::<T>(args)?;
    let r = gbtl::operations::assign_vector_constant(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        value,
        &ix,
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    r.map_err(JitError::op)
}

/// Section V's deferred-chain module: the matrix-vector product and the
/// subsequent `apply` run inside ONE kernel invocation — the
/// intermediate lives only as a local, and the mask/accumulate/replace
/// write happens once, on the applied result.
fn k_mxv_apply<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    fused_mxv_apply::<T>(args, false)
}

/// The `vxm` orientation of [`k_mxv_apply`].
fn k_vxm_apply<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    fused_mxv_apply::<T>(args, true)
}

fn fused_mxv_apply<T: Element>(args: &mut VecArgs, vxm: bool) -> Result<(), JitError> {
    let sr = args.semiring.ok_or_else(|| bad("semiring"))?;
    let op = KindUnaryOp(args.unary.ok_or_else(|| bad("unary"))?);
    let mut c = take_c_v::<T>(args)?;
    let natural_pull = if vxm { args.at } else { !args.at };
    let (astore, at) = spmv_hint_operand(&args.a, args.at, natural_pull);
    let a = typed_m::<T>(&astore, "a")?;
    let u = typed_v::<T>(&args.u, "u")?;
    let mut temp = gbtl::Vector::<T>::new(c.size());
    let product = if vxm {
        gbtl::operations::vxm(
            &mut temp,
            &gbtl::NoMask,
            gbtl::NoAccumulate,
            &sr,
            u,
            view(a, at),
            gbtl::Replace(false),
        )
    } else {
        gbtl::operations::mxv(
            &mut temp,
            &gbtl::NoMask,
            gbtl::NoAccumulate,
            &sr,
            view(a, at),
            u,
            gbtl::Replace(false),
        )
    };
    let r = product.and_then(|sel| {
        gbtl::operations::apply_vector(
            &mut c,
            &vmask(&args.mask, args.complemented),
            MaybeAccum(args.accum),
            op,
            &temp,
            gbtl::Replace(args.replace),
        )
        .map(|()| sel)
    });
    args.c = T::wrap_vector(c);
    record_spmv_select(r.map_err(JitError::op)?);
    Ok(())
}

/// The nonblocking runtime's fused eWise-chain module: two chained
/// element-wise operations (`t = u inner v; c = t outer w`, or the
/// square form `c = t outer t`) run as ONE kernel invocation. The
/// intermediate lives only as a local, and the mask/accumulate/replace
/// write happens once, on the outer result.
fn k_fused_ewise_chain<T: Element>(
    args: &mut VecArgs,
    inner_add: bool,
    outer_add: bool,
    tleft: bool,
    square: bool,
) -> Result<(), JitError> {
    let inner = KindUnaryWrap::binop(args.binop)?;
    let outer = gbtl::ops::kind::KindBinaryOp(args.binop2.ok_or_else(|| bad("binop2"))?);
    let mut c = take_c_v::<T>(args)?;
    let u = typed_v::<T>(&args.u, "u")?;
    let v = typed_v::<T>(&args.v, "v")?;
    let w = if square {
        None
    } else {
        Some(typed_v::<T>(&args.w, "w")?)
    };
    let mut t = gbtl::Vector::<T>::new(u.size());
    let inner_r = if inner_add {
        gbtl::operations::e_wise_add_vector(
            &mut t,
            &gbtl::NoMask,
            gbtl::NoAccumulate,
            inner,
            u,
            v,
            gbtl::Replace(false),
        )
    } else {
        gbtl::operations::e_wise_mult_vector(
            &mut t,
            &gbtl::NoMask,
            gbtl::NoAccumulate,
            inner,
            u,
            v,
            gbtl::Replace(false),
        )
    };
    let r = inner_r.and_then(|()| {
        let (l, rr): (&gbtl::Vector<T>, &gbtl::Vector<T>) = match w {
            None => (&t, &t),
            Some(w) if tleft => (&t, w),
            Some(w) => (w, &t),
        };
        if outer_add {
            gbtl::operations::e_wise_add_vector(
                &mut c,
                &vmask(&args.mask, args.complemented),
                MaybeAccum(args.accum),
                outer,
                l,
                rr,
                gbtl::Replace(args.replace),
            )
        } else {
            gbtl::operations::e_wise_mult_vector(
                &mut c,
                &vmask(&args.mask, args.complemented),
                MaybeAccum(args.accum),
                outer,
                l,
                rr,
                gbtl::Replace(args.replace),
            )
        }
    });
    args.c = T::wrap_vector(c);
    r.map_err(JitError::op)
}

/// The nonblocking runtime's fused eWise-then-reduce module: the
/// element-wise result is materialized into `c` AND folded to the
/// scalar in `args.out` within one kernel invocation, saving the
/// separate reduce dispatch.
fn k_fused_ewise_reduce<T: Element>(args: &mut VecArgs, is_add: bool) -> Result<(), JitError> {
    let op = KindUnaryWrap::binop(args.binop)?;
    let monoid = args.monoid.ok_or_else(|| bad("monoid"))?;
    let mut c = take_c_v::<T>(args)?;
    let u = typed_v::<T>(&args.u, "u")?;
    let v = typed_v::<T>(&args.v, "v")?;
    let r = if is_add {
        gbtl::operations::e_wise_add_vector(
            &mut c,
            &gbtl::NoMask,
            gbtl::NoAccumulate,
            op,
            u,
            v,
            gbtl::Replace(false),
        )
    } else {
        gbtl::operations::e_wise_mult_vector(
            &mut c,
            &gbtl::NoMask,
            gbtl::NoAccumulate,
            op,
            u,
            v,
            gbtl::Replace(false),
        )
    };
    if let Err(e) = r {
        args.c = T::wrap_vector(c);
        return Err(JitError::op(e));
    }
    let s: T = gbtl::operations::reduce_vector_scalar(&monoid, &c);
    args.out = Some(s.to_dyn());
    args.c = T::wrap_vector(c);
    Ok(())
}

fn k_reduce_rows<T: Element>(args: &mut VecArgs) -> Result<(), JitError> {
    let monoid = args.monoid.ok_or_else(|| bad("monoid"))?;
    let mut c = take_c_v::<T>(args)?;
    let a = typed_m::<T>(&args.a, "a")?;
    let r = gbtl::operations::reduce_matrix_to_vector(
        &mut c,
        &vmask(&args.mask, args.complemented),
        MaybeAccum(args.accum),
        &monoid,
        view(a, args.at),
        gbtl::Replace(args.replace),
    );
    args.c = T::wrap_vector(c);
    r.map_err(JitError::op)
}

fn k_reduce_m_scalar<T: Element>(args: &mut ScalarArgs) -> Result<(), JitError> {
    let monoid = args.monoid.ok_or_else(|| bad("monoid"))?;
    let a = typed_m::<T>(&args.a, "a")?;
    let out: T = gbtl::operations::reduce_matrix_scalar(&monoid, a);
    args.out = Some(out.to_dyn());
    Ok(())
}

fn k_reduce_v_scalar<T: Element>(args: &mut ScalarArgs) -> Result<(), JitError> {
    let monoid = args.monoid.ok_or_else(|| bad("monoid"))?;
    let u = typed_v::<T>(&args.u, "u")?;
    let out: T = gbtl::operations::reduce_vector_scalar(&monoid, u);
    args.out = Some(out.to_dyn());
    Ok(())
}

/// Helper for binop presence (kept out of kernel bodies for brevity).
struct KindUnaryWrap;
impl KindUnaryWrap {
    fn binop(op: Option<BinaryOpKind>) -> Result<gbtl::ops::kind::KindBinaryOp, JitError> {
        op.map(gbtl::ops::kind::KindBinaryOp)
            .ok_or_else(|| bad("binop"))
    }
}

// ---------------------------------------------------------------------
// Factories.
// ---------------------------------------------------------------------

/// Instantiate a kernel whose body is `$body::<T>` for the dtype named
/// by the key's `c_type` parameter — the `-DC_TYPE=...` template
/// selection of the paper's `operation_binding.cpp`.
macro_rules! dtype_factory {
    ($fname:literal, $argty:ty, $body:ident) => {{
        fn factory(key: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
            let ct = DType::from_name(key.require("c_type")?)
                .map_err(|e| JitError::bad_key(e.to_string()))?;
            let desc = format!("{}<{}> [{}]", $fname, ct, key.module_name());
            Ok(match ct {
                DType::Bool => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<bool>(a)
                })) as Box<dyn Kernel>,
                DType::Int8 => {
                    Box::new(FnKernel::new($fname, desc, |a: &mut $argty| $body::<i8>(a)))
                }
                DType::Int16 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<i16>(a)
                })),
                DType::Int32 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<i32>(a)
                })),
                DType::Int64 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<i64>(a)
                })),
                DType::UInt8 => {
                    Box::new(FnKernel::new($fname, desc, |a: &mut $argty| $body::<u8>(a)))
                }
                DType::UInt16 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<u16>(a)
                })),
                DType::UInt32 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<u32>(a)
                })),
                DType::UInt64 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<u64>(a)
                })),
                DType::Fp32 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<f32>(a)
                })),
                DType::Fp64 => Box::new(FnKernel::new($fname, desc, |a: &mut $argty| {
                    $body::<f64>(a)
                })),
            })
        }
        factory
    }};
}

/// Factory for the nonblocking runtime's fused eWise-chain module. The
/// key carries the chain shape besides the dtype: `chain` names the
/// inner/outer op families (`add_add` … `mult_mult`), `tleft` whether
/// the intermediate feeds the outer op's left slot, `square` whether it
/// feeds both slots.
fn fused_ewise_chain_factory(key: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
    let ct =
        DType::from_name(key.require("c_type")?).map_err(|e| JitError::bad_key(e.to_string()))?;
    let (inner_add, outer_add) = match key.require("chain")? {
        "add_add" => (true, true),
        "add_mult" => (true, false),
        "mult_add" => (false, true),
        "mult_mult" => (false, false),
        other => {
            return Err(JitError::bad_key(format!(
                "unknown eWise chain shape `{other}`"
            )))
        }
    };
    let tleft = key.require("tleft")? == "1";
    let square = key.require("square")? == "1";
    let desc = format!("fused_ewise_chain<{ct}> [{}]", key.module_name());
    macro_rules! inst {
        ($t:ty) => {
            Box::new(FnKernel::new(
                "fused_ewise_chain",
                desc.clone(),
                move |a: &mut VecArgs| {
                    k_fused_ewise_chain::<$t>(a, inner_add, outer_add, tleft, square)
                },
            )) as Box<dyn Kernel>
        };
    }
    Ok(match ct {
        DType::Bool => inst!(bool),
        DType::Int8 => inst!(i8),
        DType::Int16 => inst!(i16),
        DType::Int32 => inst!(i32),
        DType::Int64 => inst!(i64),
        DType::UInt8 => inst!(u8),
        DType::UInt16 => inst!(u16),
        DType::UInt32 => inst!(u32),
        DType::UInt64 => inst!(u64),
        DType::Fp32 => inst!(f32),
        DType::Fp64 => inst!(f64),
    })
}

/// Factory for the fused eWise-then-reduce module; the key's `ewise`
/// parameter picks the element-wise family (`add` / `mult`).
fn fused_ewise_reduce_factory(key: &ModuleKey) -> Result<Box<dyn Kernel>, JitError> {
    let ct =
        DType::from_name(key.require("c_type")?).map_err(|e| JitError::bad_key(e.to_string()))?;
    let is_add = match key.require("ewise")? {
        "add" => true,
        "mult" => false,
        other => return Err(JitError::bad_key(format!("unknown eWise family `{other}`"))),
    };
    let desc = format!("fused_ewise_reduce<{ct}> [{}]", key.module_name());
    macro_rules! inst {
        ($t:ty) => {
            Box::new(FnKernel::new(
                "fused_ewise_reduce",
                desc.clone(),
                move |a: &mut VecArgs| k_fused_ewise_reduce::<$t>(a, is_add),
            )) as Box<dyn Kernel>
        };
    }
    Ok(match ct {
        DType::Bool => inst!(bool),
        DType::Int8 => inst!(i8),
        DType::Int16 => inst!(i16),
        DType::Int32 => inst!(i32),
        DType::Int64 => inst!(i64),
        DType::UInt8 => inst!(u8),
        DType::UInt16 => inst!(u16),
        DType::UInt32 => inst!(u32),
        DType::UInt64 => inst!(u64),
        DType::Fp32 => inst!(f32),
        DType::Fp64 => inst!(f64),
    })
}

/// Register every PyGB operation's factory into `registry`. Public so
/// benchmarks can build isolated registries to measure instantiation
/// ("compile") cost without touching the global cache.
pub fn register_all(registry: &FactoryRegistry) {
    // Route the substrate's kernel entry/exit reports into the
    // observability layer: per-family latency histograms plus a
    // complete trace span per kernel execution.
    gbtl::hooks::install_kernel_observer(pygb_obs::observe_kernel);
    // Mirror the substrate's runtime tunables into every metrics
    // snapshot (parts-per-million, since counters are integral) so
    // long-lived services can report the values actually in effect.
    struct Tunables;
    impl pygb_obs::MetricsSource for Tunables {
        fn collect(&self) -> Vec<(String, u64)> {
            vec![(
                "push_pull_density_ppm".to_string(),
                (gbtl::push_pull_density() * 1e6).round() as u64,
            )]
        }
    }
    pygb_obs::registry().register_source("tunables", std::sync::Arc::new(Tunables));
    registry.register("mxm", dtype_factory!("mxm", MatArgs, k_mxm));
    registry.register("mxv", dtype_factory!("mxv", VecArgs, k_mxv));
    registry.register("vxm", dtype_factory!("vxm", VecArgs, k_vxm));
    registry.register(
        "ewise_add_m",
        dtype_factory!("ewise_add_m", MatArgs, k_ewise_add_m),
    );
    registry.register(
        "ewise_mult_m",
        dtype_factory!("ewise_mult_m", MatArgs, k_ewise_mult_m),
    );
    registry.register(
        "ewise_add_v",
        dtype_factory!("ewise_add_v", VecArgs, k_ewise_add_v),
    );
    registry.register(
        "ewise_mult_v",
        dtype_factory!("ewise_mult_v", VecArgs, k_ewise_mult_v),
    );
    registry.register("apply_m", dtype_factory!("apply_m", MatArgs, k_apply_m));
    registry.register("apply_v", dtype_factory!("apply_v", VecArgs, k_apply_v));
    registry.register(
        "transpose_m",
        dtype_factory!("transpose_m", MatArgs, k_transpose_m),
    );
    registry.register(
        "extract_m",
        dtype_factory!("extract_m", MatArgs, k_extract_m),
    );
    registry.register(
        "extract_v",
        dtype_factory!("extract_v", VecArgs, k_extract_v),
    );
    registry.register("assign_m", dtype_factory!("assign_m", MatArgs, k_assign_m));
    registry.register("assign_v", dtype_factory!("assign_v", VecArgs, k_assign_v));
    registry.register(
        "assign_m_const",
        dtype_factory!("assign_m_const", MatArgs, k_assign_m_const),
    );
    registry.register(
        "assign_v_const",
        dtype_factory!("assign_v_const", VecArgs, k_assign_v_const),
    );
    registry.register(
        "reduce_rows",
        dtype_factory!("reduce_rows", VecArgs, k_reduce_rows),
    );
    registry.register(
        "mxv_apply",
        dtype_factory!("mxv_apply", VecArgs, k_mxv_apply),
    );
    registry.register(
        "vxm_apply",
        dtype_factory!("vxm_apply", VecArgs, k_vxm_apply),
    );
    registry.register(
        "reduce_m_scalar",
        dtype_factory!("reduce_m_scalar", ScalarArgs, k_reduce_m_scalar),
    );
    registry.register(
        "reduce_v_scalar",
        dtype_factory!("reduce_v_scalar", ScalarArgs, k_reduce_v_scalar),
    );
    registry.register("fused_ewise_chain", fused_ewise_chain_factory);
    registry.register("fused_ewise_reduce", fused_ewise_reduce_factory);
}

/// Number of distinct operation factories PyGB registers (Table I's
/// operations, the two fused deferred-chain modules of Section V, and
/// the two composite modules produced by the nonblocking runtime's
/// fusion pass).
pub const NUM_REGISTERED_OPERATIONS: usize = 23;

#[cfg(test)]
mod tests {
    use super::*;
    use gbtl::ops::kind::IdentityKind;

    fn fp64_key(func: &str) -> ModuleKey {
        ModuleKey::new(func).with("c_type", "fp64")
    }

    #[test]
    fn all_factories_registered() {
        let reg = FactoryRegistry::new();
        register_all(&reg);
        assert_eq!(reg.len(), NUM_REGISTERED_OPERATIONS);
    }

    #[test]
    fn mxm_kernel_end_to_end() {
        let reg = FactoryRegistry::new();
        register_all(&reg);
        let kernel = reg.instantiate(&fp64_key("mxm")).unwrap();

        let a = gbtl::Matrix::from_triples(2, 2, [(0usize, 1usize, 2.0f64)]).unwrap();
        let b = gbtl::Matrix::from_triples(2, 2, [(1usize, 0usize, 3.0f64)]).unwrap();
        let mut args = MatArgs::new(MatrixStore::new(2, 2, DType::Fp64));
        args.a = Some(Arc::new(f64::wrap_matrix(a)));
        args.b = Some(Arc::new(f64::wrap_matrix(b)));
        args.semiring = KindSemiring::from_name("ArithmeticSemiring");
        kernel.invoke(&mut args).unwrap();
        assert_eq!(args.c.get(0, 0), Some(DynScalar::Fp64(6.0)));
        assert_eq!(args.c.nvals(), 1);
    }

    #[test]
    fn dtype_mismatch_rejected() {
        let reg = FactoryRegistry::new();
        register_all(&reg);
        let kernel = reg.instantiate(&fp64_key("mxm")).unwrap();
        let a = gbtl::Matrix::<i32>::new(2, 2);
        let mut args = MatArgs::new(MatrixStore::new(2, 2, DType::Fp64));
        args.a = Some(Arc::new(i32::wrap_matrix(a.clone())));
        args.b = Some(Arc::new(i32::wrap_matrix(a)));
        args.semiring = KindSemiring::from_name("ArithmeticSemiring");
        let err = kernel.invoke(&mut args).unwrap_err();
        assert!(err.to_string().contains("int32"));
    }

    #[test]
    fn unknown_ctype_rejected_at_instantiation() {
        let reg = FactoryRegistry::new();
        register_all(&reg);
        let key = ModuleKey::new("mxm").with("c_type", "complex64");
        assert!(reg.instantiate(&key).is_err());
        let missing = ModuleKey::new("mxm");
        assert!(reg.instantiate(&missing).is_err());
    }

    #[test]
    fn reduce_scalar_kernel() {
        let reg = FactoryRegistry::new();
        register_all(&reg);
        let kernel = reg
            .instantiate(&ModuleKey::new("reduce_v_scalar").with("c_type", "int64"))
            .unwrap();
        let u = gbtl::Vector::from_pairs(4, [(0usize, 2i64), (3, 40)]).unwrap();
        let mut args = ScalarArgs {
            a: None,
            u: Some(Arc::new(i64::wrap_vector(u))),
            monoid: Some(KindMonoid {
                op: BinaryOpKind::Plus,
                identity: IdentityKind::Zero,
            }),
            out: None,
        };
        kernel.invoke(&mut args).unwrap();
        assert_eq!(args.out, Some(DynScalar::Int64(42)));
    }

    #[test]
    fn wrong_args_type_is_abi_mismatch() {
        let reg = FactoryRegistry::new();
        register_all(&reg);
        let kernel = reg.instantiate(&fp64_key("mxm")).unwrap();
        let mut wrong = 5u8;
        assert!(matches!(
            kernel.invoke(&mut wrong),
            Err(JitError::ArgumentTypeMismatch { .. })
        ));
    }
}
