//! Streaming edge mutations at the typed DSL boundary.
//!
//! [`StreamingMatrix`] wraps the substrate's hypersparse delta layer
//! ([`gbtl::delta::DeltaMatrix`]) behind the same dtype erasure the
//! rest of the DSL uses: an 11-variant `DeltaStore` enum mirroring
//! `MatrixStore`, driven through dynamic dispatch. Update batches are
//! dynamic [`EdgeUpdate`]s whose values cast into the container dtype
//! exactly as `set` does; the plan-time analyzer validates each batch
//! (bounds → hard error, lossy value casts and coalesced duplicates →
//! lints, errors under `StrictTypes`) before anything mutates.
//!
//! Every batch and merge feeds the `stream/*` metrics namespace of the
//! PR-5 registry (`stream/update_batches`, `stream/edges_added`,
//! `stream/edges_deleted`, `stream/merges`, `stream/settles`, and the
//! `stream/update_batch_ns` / `stream/merge_ns` histograms), so a
//! trace of a live-updated service shows mutation cost alongside the
//! kernels it amortizes away.

use std::time::Instant;

use gbtl::delta::DeltaMatrix;
pub use gbtl::delta::MergePolicy;

use crate::analyze;
use crate::dtype::DType;
use crate::error::Result;
use crate::matrix::Matrix;
use crate::store::MatrixStore;
use crate::value::DynScalar;

/// One dynamic edge mutation: `Some(val)` inserts or overwrites,
/// `None` deletes. The value casts into the container's dtype like
/// any other scalar write.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeUpdate {
    /// Row of the edge.
    pub row: usize,
    /// Column of the edge.
    pub col: usize,
    /// `Some` = insert/overwrite with this value, `None` = delete.
    pub val: Option<DynScalar>,
}

impl EdgeUpdate {
    /// An insert/overwrite of `(row, col)` with `val`.
    pub fn add(row: usize, col: usize, val: impl Into<DynScalar>) -> EdgeUpdate {
        EdgeUpdate {
            row,
            col,
            val: Some(val.into()),
        }
    }

    /// A deletion of `(row, col)` (no-op if the edge is absent).
    pub fn del(row: usize, col: usize) -> EdgeUpdate {
        EdgeUpdate {
            row,
            col,
            val: None,
        }
    }
}

/// A dtype-tagged delta container, mirroring [`MatrixStore`].
#[derive(Clone, Debug)]
enum DeltaStore {
    Bool(DeltaMatrix<bool>),
    Int8(DeltaMatrix<i8>),
    Int16(DeltaMatrix<i16>),
    Int32(DeltaMatrix<i32>),
    Int64(DeltaMatrix<i64>),
    UInt8(DeltaMatrix<u8>),
    UInt16(DeltaMatrix<u16>),
    UInt32(DeltaMatrix<u32>),
    UInt64(DeltaMatrix<u64>),
    Fp32(DeltaMatrix<f32>),
    Fp64(DeltaMatrix<f64>),
}

/// Expand `$mac!` over every (MatrixStore variant, DeltaStore variant)
/// pair — the dtype-erasure boilerplate in one place.
macro_rules! for_each_dtype {
    ($mac:ident, $($extra:tt)*) => {
        $mac!($($extra)*; Bool, Int8, Int16, Int32, Int64, UInt8, UInt16, UInt32, UInt64, Fp32, Fp64)
    };
}

/// Run `$body` with `$d` bound to the typed delta inside the store.
macro_rules! dispatch_delta {
    ($store:expr, |$d:ident| $body:expr) => {
        match $store {
            DeltaStore::Bool($d) => $body,
            DeltaStore::Int8($d) => $body,
            DeltaStore::Int16($d) => $body,
            DeltaStore::Int32($d) => $body,
            DeltaStore::Int64($d) => $body,
            DeltaStore::UInt8($d) => $body,
            DeltaStore::UInt16($d) => $body,
            DeltaStore::UInt32($d) => $body,
            DeltaStore::UInt64($d) => $body,
            DeltaStore::Fp32($d) => $body,
            DeltaStore::Fp64($d) => $body,
        }
    };
}

impl DeltaStore {
    fn from_matrix_store(store: MatrixStore, policy: MergePolicy) -> DeltaStore {
        macro_rules! convert {
            (; $($v:ident),*) => {
                match store {
                    $(MatrixStore::$v(m) => DeltaStore::$v(DeltaMatrix::with_policy(m, policy)),)*
                }
            };
        }
        for_each_dtype!(convert,)
    }

    fn into_settled_store(self) -> MatrixStore {
        macro_rules! convert {
            (; $($v:ident),*) => {
                match self {
                    $(DeltaStore::$v(d) => MatrixStore::$v(d.into_settled()),)*
                }
            };
        }
        for_each_dtype!(convert,)
    }

    fn merged_store(&self) -> MatrixStore {
        macro_rules! convert {
            (; $($v:ident),*) => {
                match self {
                    $(DeltaStore::$v(d) => MatrixStore::$v(d.merged()),)*
                }
            };
        }
        for_each_dtype!(convert,)
    }

    fn dtype(&self) -> DType {
        macro_rules! name {
            (; $($v:ident),*) => {
                match self {
                    $(DeltaStore::$v(_) => DType::$v,)*
                }
            };
        }
        for_each_dtype!(name,)
    }
}

/// A dynamically typed graph container accepting streamed edge
/// mutations, layered over a settled CSR per the deferred-merge
/// policy. The write path of ROADMAP item 2: `update_edges` is
/// `O(batch)` amortized where republishing a rebuilt `Matrix` is
/// `O(nnz log nnz)` per batch.
#[derive(Clone, Debug)]
pub struct StreamingMatrix {
    store: DeltaStore,
}

impl StreamingMatrix {
    /// Layer an empty delta over a settled copy of `m` (default
    /// policy). The source handle is unaffected — this takes the
    /// copy-on-write snapshot, exactly like `dup`.
    pub fn from_matrix(m: &Matrix) -> Result<StreamingMatrix> {
        StreamingMatrix::with_policy(m, MergePolicy::default())
    }

    /// Layer an empty delta over a settled copy of `m` with an
    /// explicit merge policy.
    pub fn with_policy(m: &Matrix, policy: MergePolicy) -> Result<StreamingMatrix> {
        let mut settled = m.dup();
        settled.settle()?;
        let store = settled.take_store();
        Ok(StreamingMatrix {
            store: DeltaStore::from_matrix_store(store, policy),
        })
    }

    /// The container dtype (fixed at construction).
    pub fn dtype(&self) -> DType {
        self.store.dtype()
    }

    /// `(nrows, ncols)` — fixed; updates never resize.
    pub fn shape(&self) -> (usize, usize) {
        dispatch_delta!(&self.store, |d| d.shape())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.shape().0
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.shape().1
    }

    /// Exact stored-edge count of the merged view — `O(1)`, no merge.
    pub fn nvals(&self) -> usize {
        dispatch_delta!(&self.store, |d| d.nvals())
    }

    /// Coordinates currently holding a pending (unmerged) op.
    pub fn pending_ops(&self) -> usize {
        dispatch_delta!(&self.store, |d| d.pending_ops())
    }

    /// Whether the overlay is empty (base CSR == merged view).
    pub fn is_settled(&self) -> bool {
        dispatch_delta!(&self.store, |d| d.is_settled())
    }

    /// Lifetime merge count (policy-triggered and explicit).
    pub fn merges(&self) -> u64 {
        dispatch_delta!(&self.store, |d| d.merges())
    }

    /// The merged value at `(i, j)`, seen through pending ops.
    pub fn get(&self, i: usize, j: usize) -> Option<DynScalar> {
        use crate::store::Element;
        dispatch_delta!(&self.store, |d| d.get(i, j).map(|v| v.to_dyn()))
    }

    /// Apply a batch of edge mutations. The analyzer validates first
    /// (bounds are hard [`crate::PygbError::Invalid`] errors; lossy
    /// value casts and same-coordinate duplicates are lints, errors
    /// under `StrictTypes`), then the typed delta applies the whole
    /// batch with last-write-wins semantics. May trigger a policy
    /// merge; all of it feeds `stream/*` metrics.
    pub fn update_edges(&mut self, batch: &[EdgeUpdate]) -> Result<()> {
        analyze::validate_update_batch(self.shape(), self.dtype(), batch)?;
        let start = Instant::now();
        let merges_before = self.merges();
        dispatch_delta!(&mut self.store, |d| {
            d.update_edges(
                batch
                    .iter()
                    .map(|u| (u.row, u.col, u.val.map(|v| v.to_scalar()))),
            )
            .map_err(crate::error::PygbError::from)?;
        });
        let adds = batch.iter().filter(|u| u.val.is_some()).count() as u64;
        let reg = pygb_obs::registry();
        reg.counter("stream/update_batches").inc();
        reg.counter("stream/edges_added").add(adds);
        reg.counter("stream/edges_deleted")
            .add(batch.len() as u64 - adds);
        reg.counter("stream/merges")
            .add(self.merges() - merges_before);
        reg.histogram("stream/update_batch_ns")
            .record(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Merge all pending ops into the base CSR now (two-pointer
    /// splice). Recorded under `stream/settles` / `stream/merge_ns`.
    pub fn settle(&mut self) {
        let start = Instant::now();
        let had_pending = !self.is_settled();
        dispatch_delta!(&mut self.store, |d| {
            d.settle();
        });
        let reg = pygb_obs::registry();
        reg.counter("stream/settles").inc();
        if had_pending {
            reg.counter("stream/merges").inc();
            reg.histogram("stream/merge_ns")
                .record(start.elapsed().as_nanos() as u64);
        }
    }

    /// The merged view as an immutable DSL [`Matrix`], without
    /// consuming pending ops — what a catalog publishes as the next
    /// version while the stream keeps absorbing updates. Bit-identical
    /// to what [`StreamingMatrix::into_matrix`] would return.
    pub fn snapshot(&self) -> Matrix {
        Matrix::from_store(self.store.merged_store())
    }

    /// Settle and unwrap into an immutable DSL [`Matrix`].
    pub fn into_matrix(self) -> Matrix {
        Matrix::from_store(self.store.into_settled_store())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Matrix {
        Matrix::from_triples(
            3,
            3,
            vec![(0usize, 1usize, 1.5f64), (1, 2, 2.5), (2, 0, 3.5)],
        )
        .unwrap()
    }

    #[test]
    fn updates_apply_and_settle_matches_rebuild() {
        let mut s = StreamingMatrix::from_matrix(&base()).unwrap();
        s.update_edges(&[
            EdgeUpdate::add(0, 0, 9.0f64),
            EdgeUpdate::del(1, 2),
            EdgeUpdate::add(0, 1, 4.5f64),
        ])
        .unwrap();
        assert_eq!(s.nvals(), 3);
        assert_eq!(s.get(0, 0).unwrap().as_f64(), 9.0);
        assert_eq!(s.get(1, 2), None);
        let rebuilt = Matrix::from_triples(
            3,
            3,
            vec![(0usize, 0usize, 9.0f64), (0, 1, 4.5), (2, 0, 3.5)],
        )
        .unwrap();
        assert_eq!(s.snapshot(), rebuilt);
        assert_eq!(s.into_matrix(), rebuilt);
    }

    #[test]
    fn values_cast_into_container_dtype() {
        let m = Matrix::from_triples(2, 2, vec![(0usize, 0usize, 1i64)]).unwrap();
        let mut s = StreamingMatrix::from_matrix(&m).unwrap();
        s.update_edges(&[EdgeUpdate::add(1, 1, 2.7f64)]).unwrap();
        assert_eq!(s.dtype(), DType::Int64);
        assert_eq!(s.get(1, 1).unwrap().as_i64(), 2); // C-cast truncation
        let lints = crate::analyze::take_lints();
        assert!(
            lints.iter().any(|l| l.contains("lossy")),
            "expected a lossy-cast lint, got {lints:?}"
        );
    }

    #[test]
    fn out_of_bounds_is_an_analyzer_error() {
        let mut s = StreamingMatrix::from_matrix(&base()).unwrap();
        let err = s
            .update_edges(&[EdgeUpdate::add(3, 0, 1.0f64)])
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("update"), "{msg}");
        assert!(msg.contains("out of bounds"), "{msg}");
        assert!(s.is_settled()); // nothing mutated
        assert_eq!(s.nvals(), 3);
    }

    #[test]
    fn source_handle_is_unaffected() {
        let m = base();
        let mut s = StreamingMatrix::from_matrix(&m).unwrap();
        s.update_edges(&[EdgeUpdate::del(0, 1)]).unwrap();
        assert_eq!(s.nvals(), 2);
        assert_eq!(m.nvals(), 3); // copy-on-write snapshot untouched
    }

    #[test]
    fn policy_merge_is_counted() {
        let mut s = StreamingMatrix::with_policy(
            &base(),
            MergePolicy {
                max_pending: 2,
                read_pressure: usize::MAX,
            },
        )
        .unwrap();
        s.update_edges(&[EdgeUpdate::add(0, 0, 1.0f64), EdgeUpdate::add(1, 1, 2.0f64)])
            .unwrap();
        assert!(s.is_settled());
        assert_eq!(s.merges(), 1);
        assert_eq!(s.nvals(), 5);
    }
}
