//! # PyGB in Rust — a dynamically-typed GraphBLAS DSL with JIT-style
//! kernel dispatch
//!
//! This crate reproduces the PyGB system of *"PyGB: GraphBLAS DSL in
//! Python with Dynamic Compilation into Efficient C++"* (IPDPSW 2018):
//! a high-level, dynamically-typed front end over the GBTL substrate
//! (`gbtl` crate), whose every operation is dispatched through a
//! dynamic-compilation pipeline (`pygb-jit` crate).
//!
//! The pieces map one-to-one onto the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | `gb.Matrix` / `gb.Vector` with NumPy dtypes | [`Matrix`] / [`Vector`] with [`DType`] tags |
//! | magic-method expressions (`A @ B`, `A + B`) | [`Matrix::matmul`], `&a + &b`, `&a * &b` → deferred [`MatrixExpr`]/[`VectorExpr`] |
//! | `with` operator contexts | guard objects: `let _g = pygb::MinPlusSemiring.enter();` |
//! | `C[M] = ...`, `C[None] += ...` | [`Matrix::masked`], [`Matrix::no_mask`] builders, `.assign(...)` / `.accum_assign(...)` |
//! | JIT compile + module cache | [`pygb_jit`] key/cache/registry, reachable via [`runtime()`] |
//!
//! ## BFS, exactly as Fig. 2b of the paper
//!
//! ```
//! use pygb::prelude::*;
//!
//! // The 7-vertex digraph of Fig. 1 (0-based vertex ids).
//! let edges: Vec<(usize, usize, bool)> = vec![
//!     (0, 1, true), (0, 3, true), (1, 4, true), (1, 6, true),
//!     (2, 5, true), (3, 0, true), (3, 2, true), (4, 5, true),
//!     (5, 2, true), (6, 2, true), (6, 3, true), (6, 4, true),
//! ];
//! let graph = Matrix::from_triples(7, 7, edges).unwrap();
//!
//! let mut frontier = Vector::new(7, DType::Bool);
//! frontier.set(3, true).unwrap();
//! let mut levels = Vector::new(7, DType::UInt64);
//!
//! let mut depth = 0u64;
//! while frontier.nvals() > 0 {
//!     depth += 1;
//!     // levels[frontier][:] = depth
//!     levels.masked(&frontier.cast(DType::UInt64)).assign_scalar(depth).unwrap();
//!     // with gb.LogicalSemiring, gb.Replace:
//!     //     frontier[~levels] = graph.T @ frontier
//!     let _sr = LogicalSemiring.enter();
//!     let _rp = Replace.enter();
//!     let expr = graph.t().mxv(&frontier);
//!     frontier.masked_complement(&levels.cast(DType::Bool)).assign(expr).unwrap();
//! }
//! assert_eq!(levels.get(3).unwrap().as_i64(), 1);
//! assert_eq!(levels.get(0).unwrap().as_i64(), 2);
//! assert_eq!(levels.get(6).unwrap().as_i64(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod context;
pub mod dispatch;
pub mod dtype;
pub mod error;
pub mod expr;
pub mod facts;
pub mod kernels;
pub mod matrix;
pub mod nb;
pub mod operators;
pub mod store;
pub mod stream;
pub mod target;
pub mod value;
pub mod vector;

pub use analyze::{emit_lint, take_lints, validate_matrix_expr, validate_vector_expr};
pub use context::{ContextGuard, ContextOp, CtxEntry, Session, SessionGuard};
pub use dispatch::{reduce, runtime, ReduceArg};
pub use dtype::DType;
pub use error::{PygbError, Result};
pub use expr::{apply, reduce_rows, reduce_rows_t, MatrixExpr, TransposedMatrix, VectorExpr};
pub use matrix::Matrix;
pub use nb::{flush, DeferGuard};
pub use operators::*;
pub use store::Element;
pub use stream::{EdgeUpdate, MergePolicy, StreamingMatrix};
pub use target::{MatrixAssign, VectorAssign};
pub use value::DynScalar;
pub use vector::Vector;

/// Everything most PyGB programs need.
pub mod prelude {
    pub use crate::context::{ContextGuard, ContextOp, Session};
    pub use crate::dispatch::{reduce, runtime};
    pub use crate::dtype::DType;
    pub use crate::error::{PygbError, Result};
    pub use crate::expr::{apply, reduce_rows};
    pub use crate::matrix::Matrix;
    pub use crate::operators::*;
    pub use crate::target::{MatrixAssign, VectorAssign};
    pub use crate::value::DynScalar;
    pub use crate::vector::Vector;
}
