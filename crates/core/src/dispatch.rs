//! The dispatch layer — Fig. 9's `operate()`:
//!
//! ```python
//! def operator(func, **kwargs):
//!     for kw, arg in kwargs.items():
//!         kwargs[kw] = arg.dtype
//!     m = get_module(kwargs)
//!     getattr(m, func)(**kwargs)
//! ```
//!
//! Every expression evaluation lands here: operand dtypes are read,
//! upcasts applied (inputs are cast to the output container's dtype,
//! masks coerced to boolean), the [`ModuleKey`] is assembled from the
//! dtypes and operator *names*, and the kernel is fetched from the JIT
//! runtime and invoked. Stage timings accumulate into a
//! [`pygb_jit::PipelineTrace`].

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use gbtl::ops::kind::{AppliedUnaryKind, BinaryOpKind, KindMonoid, KindSemiring};
use gbtl::Indices;
use pygb_jit::{JitRuntime, ModuleKey, PipelineTrace, Stage};

use crate::dtype::DType;
use crate::error::{PygbError, Result};
use crate::expr::{
    identity_unary, MatOperand, MatrixExpr, MatrixExprKind, VectorExpr, VectorExprKind,
};
use crate::kernels::{self, MatArgs, ScalarArgs, VecArgs};
use crate::matrix::Matrix;
use crate::store::{MatrixStore, VectorStore};
use crate::value::DynScalar;
use crate::vector::Vector;

/// The JIT runtime PyGB dispatches through, with all operation
/// factories registered (done once per process).
pub fn runtime() -> &'static Arc<JitRuntime> {
    static REGISTERED: OnceLock<()> = OnceLock::new();
    let rt = pygb_jit::global();
    REGISTERED.get_or_init(|| kernels::register_all(rt.registry()));
    rt
}

// --- key-string helpers (operator names, not values) ---

fn semiring_key(sr: KindSemiring) -> String {
    format!(
        "{}_{}_{}",
        sr.add.op.name(),
        sr.add.identity.name(),
        sr.mult.name()
    )
}

fn monoid_key(m: KindMonoid) -> String {
    format!("{}_{}", m.op.name(), m.identity.name())
}

fn unary_key(u: AppliedUnaryKind) -> String {
    // Bound constants are runtime arguments (like GBTL's
    // `BinaryOp_Bind2nd(damping)`), so they stay out of the key.
    match u {
        AppliedUnaryKind::Pure(k) => k.name().to_string(),
        AppliedUnaryKind::Bind1st(op, _) => format!("Bind1st({})", op.name()),
        AppliedUnaryKind::Bind2nd(op, _) => format!("Bind2nd({})", op.name()),
    }
}

fn flag(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

fn cast_m(store: &Arc<MatrixStore>, to: DType) -> Result<Arc<MatrixStore>> {
    // Operands may be deferred placeholders in nonblocking mode; read
    // through the runtime's resolution map (flushing if necessary).
    let store = crate::nb::resolved_mat(store)?;
    Ok(if store.dtype() == to {
        store
    } else {
        Arc::new(store.cast(to))
    })
}

fn cast_v(store: &Arc<VectorStore>, to: DType) -> Result<Arc<VectorStore>> {
    let store = crate::nb::resolved_vec(store)?;
    Ok(if store.dtype() == to {
        store
    } else {
        Arc::new(store.cast(to))
    })
}

fn missing(needed: &'static str, operation: &'static str) -> PygbError {
    PygbError::MissingOperator { needed, operation }
}

fn common_key_flags(
    key: &mut ModuleKey,
    accum: Option<BinaryOpKind>,
    replace: bool,
    mask_dtype: Option<DType>,
    complemented: bool,
) {
    if let Some(a) = accum {
        key.set("accum", a.name());
    }
    key.set("replace", flag(replace));
    if let Some(md) = mask_dtype {
        key.set("mask_type", md.name());
        key.set("complement", flag(complemented));
    }
}

/// Evaluate a matrix expression into `target` under the given output
/// controls — the engine behind `C[M, z] = expr` and `+=`.
pub(crate) fn eval_matrix(
    target: &mut Matrix,
    mask: Option<(Arc<MatrixStore>, bool)>,
    accum: Option<BinaryOpKind>,
    replace: Option<bool>,
    region: Option<(Indices, Indices)>,
    expr: MatrixExpr,
) -> Result<()> {
    let replace = replace.unwrap_or(false);

    // Static analysis first, on both paths: a malformed operation is
    // rejected here — at the statement that built it — whether it would
    // have executed now or been enqueued into the op-DAG.
    {
        let _sp = pygb_obs::span(pygb_obs::Cat::Analyze, "analyze/matrix");
        crate::analyze::check_matrix(target, &mask, replace, &region, &expr)?;
    }
    // The expression tree timed its own construction; surface it as a
    // build-phase span (its end is approximated by "now").
    pygb_obs::observe_phase(pygb_obs::Cat::Build, "build/matrix_expr", expr.build_ns);

    if crate::nb::is_deferring() {
        return crate::nb::enqueue_matrix(
            target,
            mask,
            accum,
            replace,
            region,
            crate::nb::MatRhs::Expr(expr),
        );
    }
    // Blocking path: any deferred work must land first, and the target
    // may still hold a pending placeholder from an earlier deferral.
    crate::nb::flush_pending()?;
    target.settle()?;

    // Sec. IV: a non-container expression assigned into an index region
    // forces an intermediate evaluation — "GBTL has no way to express
    // it as a single merged operation".
    if region.is_some() && !matches!(expr.kind, MatrixExprKind::Ref { .. }) {
        let (r, c) = expr.result_shape();
        let mut temp = Matrix::new(r, c, target.dtype());
        eval_matrix(&mut temp, None, None, Some(false), None, expr)?;
        let temp_expr = MatrixExpr::from(&temp);
        return eval_matrix(target, mask, accum, Some(replace), region, temp_expr);
    }

    // Op provenance for any downstream failure (kernel, JIT cache):
    // captured before the expression is consumed.
    let op_name = crate::analyze::mat_op_name(&expr);
    let operands = crate::analyze::describe_matrix_expr(&expr);

    let mut trace = PipelineTrace::new(String::new());
    trace.record(Stage::ExpressionConstruction, expr.build_ns);

    let ct = target.dtype();
    let infer_start = Instant::now();

    let mut key = ModuleKey::new("");
    key.set("c_type", ct.name());
    let mut args = MatArgs::new(MatrixStore::placeholder());
    args.accum = accum;
    args.replace = replace;
    if let Some((m, comp)) = &mask {
        let m_res = crate::nb::resolved_mat(m)?;
        args.mask = Some(Arc::new(m_res.to_bool_matrix()));
        args.complemented = *comp;
        common_key_flags(&mut key, accum, replace, Some(m.dtype()), *comp);
    } else {
        common_key_flags(&mut key, accum, replace, None, false);
    }

    let func: &'static str = match expr.kind {
        MatrixExprKind::MxM { a, b, semiring } => {
            let sr = semiring.ok_or_else(|| missing("semiring", "mxm"))?;
            key.set("a_type", a.dtype().name());
            key.set("b_type", b.dtype().name());
            key.set("semiring", semiring_key(sr));
            key.set("at", flag(a.transposed));
            key.set("bt", flag(b.transposed));
            args.at = a.transposed;
            args.bt = b.transposed;
            args.a = Some(cast_m(&a.store, ct)?);
            args.b = Some(cast_m(&b.store, ct)?);
            args.semiring = Some(sr);
            "mxm"
        }
        MatrixExprKind::EWiseAdd { a, b, op } => {
            let op = op.ok_or_else(|| missing("binary operator", "eWiseAdd"))?;
            fill_ewise_m(&mut key, &mut args, a, b, op, ct)?;
            "ewise_add_m"
        }
        MatrixExprKind::EWiseMult { a, b, op } => {
            let op = op.ok_or_else(|| missing("binary operator", "eWiseMult"))?;
            fill_ewise_m(&mut key, &mut args, a, b, op, ct)?;
            "ewise_mult_m"
        }
        MatrixExprKind::Apply { a, op } => {
            let op = op.ok_or_else(|| missing("unary operator", "apply"))?;
            key.set("a_type", a.dtype().name());
            key.set("unary", unary_key(op));
            key.set("at", flag(a.transposed));
            args.at = a.transposed;
            args.a = Some(cast_m(&a.store, ct)?);
            args.unary = Some(op);
            "apply_m"
        }
        MatrixExprKind::Transpose { a } => {
            key.set("a_type", a.dtype().name());
            args.a = Some(cast_m(&a, ct)?);
            "transpose_m"
        }
        MatrixExprKind::Extract { a, rows, cols } => {
            key.set("a_type", a.dtype().name());
            key.set("at", flag(a.transposed));
            args.at = a.transposed;
            args.a = Some(cast_m(&a.store, ct)?);
            args.rows = Some(rows);
            args.cols = Some(cols);
            "extract_m"
        }
        MatrixExprKind::Ref { a } => {
            key.set("a_type", a.dtype().name());
            if let Some((rows, cols)) = region {
                args.a = Some(cast_m(&a, ct)?);
                args.rows = Some(rows);
                args.cols = Some(cols);
                "assign_m"
            } else {
                // C[None] = A — an identity apply, as Fig. 8 lines 13-14.
                key.set("unary", "Identity");
                args.a = Some(cast_m(&a, ct)?);
                args.unary = Some(identity_unary());
                "apply_m"
            }
        }
    };
    let key = rekey(key, func);
    trace.record(
        Stage::TypeInference,
        infer_start.elapsed().as_nanos() as u64,
    );
    trace.key = key.canonical();

    args.c = target.take_store();
    let outcome = runtime().dispatch(&key, &mut args, trace);
    target.put_store(args.c);
    outcome.map_err(|e| PygbError::from(e).with_op(op_name, operands))?;
    Ok(())
}

fn fill_ewise_m(
    key: &mut ModuleKey,
    args: &mut MatArgs,
    a: MatOperand,
    b: MatOperand,
    op: BinaryOpKind,
    ct: DType,
) -> Result<()> {
    key.set("a_type", a.dtype().name());
    key.set("b_type", b.dtype().name());
    key.set("binop", op.name());
    key.set("at", flag(a.transposed));
    key.set("bt", flag(b.transposed));
    args.at = a.transposed;
    args.bt = b.transposed;
    args.a = Some(cast_m(&a.store, ct)?);
    args.b = Some(cast_m(&b.store, ct)?);
    args.binop = Some(op);
    Ok(())
}

/// Constant assignment into a matrix region (`C[M][i, j] = value`).
pub(crate) fn assign_matrix_scalar(
    target: &mut Matrix,
    mask: Option<(Arc<MatrixStore>, bool)>,
    accum: Option<BinaryOpKind>,
    replace: bool,
    region: Option<(Indices, Indices)>,
    value: DynScalar,
) -> Result<()> {
    {
        let _sp = pygb_obs::span(pygb_obs::Cat::Analyze, "analyze/matrix_scalar");
        crate::analyze::check_matrix_scalar(target, &mask, replace, &region, &value)?;
    }

    if crate::nb::is_deferring() {
        return crate::nb::enqueue_matrix(
            target,
            mask,
            accum,
            replace,
            region,
            crate::nb::MatRhs::Scalar(value),
        );
    }
    crate::nb::flush_pending()?;
    target.settle()?;

    let mut trace = PipelineTrace::new(String::new());
    let ct = target.dtype();
    let infer_start = Instant::now();
    let mut key = ModuleKey::new("assign_m_const");
    key.set("c_type", ct.name());
    key.set("value_type", value.dtype().name());
    let mut args = MatArgs::new(MatrixStore::placeholder());
    args.accum = accum;
    args.replace = replace;
    args.value = Some(value);
    if let Some((rows, cols)) = region {
        args.rows = Some(rows);
        args.cols = Some(cols);
    }
    if let Some((m, comp)) = &mask {
        let m = crate::nb::resolved_mat(m)?;
        args.mask = Some(Arc::new(m.to_bool_matrix()));
        args.complemented = *comp;
        common_key_flags(&mut key, accum, replace, Some(m.dtype()), *comp);
    } else {
        common_key_flags(&mut key, accum, replace, None, false);
    }
    trace.record(
        Stage::TypeInference,
        infer_start.elapsed().as_nanos() as u64,
    );
    trace.key = key.canonical();

    args.c = target.take_store();
    let outcome = runtime().dispatch(&key, &mut args, trace);
    target.put_store(args.c);
    outcome.map_err(|e| {
        PygbError::from(e).with_op(
            "assign",
            format!("[{}x{} {}]", target.nrows(), target.ncols(), target.dtype()),
        )
    })?;
    Ok(())
}

/// Evaluate a vector expression into `target`.
pub(crate) fn eval_vector(
    target: &mut Vector,
    mask: Option<(Arc<VectorStore>, bool)>,
    accum: Option<BinaryOpKind>,
    replace: Option<bool>,
    region: Option<Indices>,
    expr: VectorExpr,
) -> Result<()> {
    let replace = replace.unwrap_or(false);

    // Static analysis first, on both paths (see `eval_matrix`).
    {
        let _sp = pygb_obs::span(pygb_obs::Cat::Analyze, "analyze/vector");
        crate::analyze::check_vector(target, &mask, replace, &region, &expr)?;
    }
    pygb_obs::observe_phase(pygb_obs::Cat::Build, "build/vector_expr", expr.build_ns);

    if crate::nb::is_deferring() {
        return crate::nb::enqueue_vector(
            target,
            mask,
            accum,
            replace,
            region,
            crate::nb::VecRhs::Expr(expr),
        );
    }
    crate::nb::flush_pending()?;
    target.settle()?;

    if region.is_some() && !matches!(expr.kind, VectorExprKind::Ref { .. }) {
        let size = expr.result_size();
        let mut temp = Vector::new(size, target.dtype());
        eval_vector(&mut temp, None, None, Some(false), None, expr)?;
        let temp_expr = VectorExpr::from(&temp);
        return eval_vector(target, mask, accum, Some(replace), region, temp_expr);
    }

    let op_name = crate::analyze::vec_op_name(&expr);
    let operands = crate::analyze::describe_vector_expr(&expr);

    let mut trace = PipelineTrace::new(String::new());
    trace.record(Stage::ExpressionConstruction, expr.build_ns);

    let ct = target.dtype();
    let infer_start = Instant::now();
    let mut key = ModuleKey::new("");
    key.set("c_type", ct.name());
    let mut args = VecArgs::new(VectorStore::placeholder());
    args.accum = accum;
    args.replace = replace;
    if let Some((m, comp)) = &mask {
        let m_res = crate::nb::resolved_vec(m)?;
        args.mask = Some(Arc::new(m_res.to_bool_vector()));
        args.complemented = *comp;
        common_key_flags(&mut key, accum, replace, Some(m.dtype()), *comp);
    } else {
        common_key_flags(&mut key, accum, replace, None, false);
    }

    let func: &'static str = match expr.kind {
        VectorExprKind::MxV { a, u, semiring } => {
            let sr = semiring.ok_or_else(|| missing("semiring", "mxv"))?;
            key.set("a_type", a.dtype().name());
            key.set("u_type", u.dtype().name());
            key.set("semiring", semiring_key(sr));
            key.set("at", flag(a.transposed));
            args.at = a.transposed;
            args.a = Some(cast_m(&a.store, ct)?);
            args.u = Some(cast_v(&u, ct)?);
            args.semiring = Some(sr);
            "mxv"
        }
        VectorExprKind::VxM { u, a, semiring } => {
            let sr = semiring.ok_or_else(|| missing("semiring", "vxm"))?;
            key.set("a_type", a.dtype().name());
            key.set("u_type", u.dtype().name());
            key.set("semiring", semiring_key(sr));
            key.set("at", flag(a.transposed));
            args.at = a.transposed;
            args.a = Some(cast_m(&a.store, ct)?);
            args.u = Some(cast_v(&u, ct)?);
            args.semiring = Some(sr);
            "vxm"
        }
        VectorExprKind::EWiseAdd { u, v, op } => {
            let op = op.ok_or_else(|| missing("binary operator", "eWiseAdd"))?;
            key.set("u_type", u.dtype().name());
            key.set("v_type", v.dtype().name());
            key.set("binop", op.name());
            args.u = Some(cast_v(&u, ct)?);
            args.v = Some(cast_v(&v, ct)?);
            args.binop = Some(op);
            "ewise_add_v"
        }
        VectorExprKind::EWiseMult { u, v, op } => {
            let op = op.ok_or_else(|| missing("binary operator", "eWiseMult"))?;
            key.set("u_type", u.dtype().name());
            key.set("v_type", v.dtype().name());
            key.set("binop", op.name());
            args.u = Some(cast_v(&u, ct)?);
            args.v = Some(cast_v(&v, ct)?);
            args.binop = Some(op);
            "ewise_mult_v"
        }
        VectorExprKind::Apply { u, op } => {
            let op = op.ok_or_else(|| missing("unary operator", "apply"))?;
            key.set("u_type", u.dtype().name());
            key.set("unary", unary_key(op));
            args.u = Some(cast_v(&u, ct)?);
            args.unary = Some(op);
            "apply_v"
        }
        VectorExprKind::Extract { u, ix } => {
            key.set("u_type", u.dtype().name());
            args.u = Some(cast_v(&u, ct)?);
            args.ix = Some(ix);
            "extract_v"
        }
        VectorExprKind::ReduceRows { a, monoid } => {
            let m = monoid.ok_or_else(|| missing("monoid", "reduce"))?;
            key.set("a_type", a.dtype().name());
            key.set("monoid", monoid_key(m));
            key.set("at", flag(a.transposed));
            args.at = a.transposed;
            args.a = Some(cast_m(&a.store, ct)?);
            args.monoid = Some(m);
            "reduce_rows"
        }
        VectorExprKind::FusedMxvApply {
            a,
            u,
            semiring,
            unary,
            vxm,
        } => {
            let sr = semiring.ok_or_else(|| missing("semiring", "mxv"))?;
            let op = unary.ok_or_else(|| missing("unary operator", "fused apply"))?;
            key.set("a_type", a.dtype().name());
            key.set("u_type", u.dtype().name());
            key.set("semiring", semiring_key(sr));
            key.set("unary", unary_key(op));
            key.set("at", flag(a.transposed));
            args.at = a.transposed;
            args.a = Some(cast_m(&a.store, ct)?);
            args.u = Some(cast_v(&u, ct)?);
            args.semiring = Some(sr);
            args.unary = Some(op);
            if vxm {
                "vxm_apply"
            } else {
                "mxv_apply"
            }
        }
        VectorExprKind::FusedEwiseChain {
            u,
            v,
            w,
            inner,
            outer,
            inner_add,
            outer_add,
            inner_left,
        } => {
            key.set("u_type", u.dtype().name());
            key.set("v_type", v.dtype().name());
            if let Some(w) = &w {
                key.set("w_type", w.dtype().name());
            }
            key.set("binop", inner.name());
            key.set("binop2", outer.name());
            key.set(
                "chain",
                match (inner_add, outer_add) {
                    (true, true) => "add_add",
                    (true, false) => "add_mult",
                    (false, true) => "mult_add",
                    (false, false) => "mult_mult",
                },
            );
            key.set("tleft", flag(inner_left));
            key.set("square", flag(w.is_none()));
            args.u = Some(cast_v(&u, ct)?);
            args.v = Some(cast_v(&v, ct)?);
            args.w = w.map(|w| cast_v(&w, ct)).transpose()?;
            args.binop = Some(inner);
            args.binop2 = Some(outer);
            "fused_ewise_chain"
        }
        VectorExprKind::Ref { u } => {
            key.set("u_type", u.dtype().name());
            if let Some(ix) = region {
                args.u = Some(cast_v(&u, ct)?);
                args.ix = Some(ix);
                "assign_v"
            } else {
                key.set("unary", "Identity");
                args.u = Some(cast_v(&u, ct)?);
                args.unary = Some(identity_unary());
                "apply_v"
            }
        }
    };
    let key = rekey(key, func);
    trace.record(
        Stage::TypeInference,
        infer_start.elapsed().as_nanos() as u64,
    );
    trace.key = key.canonical();

    args.c = target.take_store();
    let outcome = runtime().dispatch(&key, &mut args, trace);
    target.put_store(args.c);
    outcome.map_err(|e| PygbError::from(e).with_op(op_name, operands))?;
    Ok(())
}

/// Constant assignment into a vector region (`w[m][:] = value`).
pub(crate) fn assign_vector_scalar(
    target: &mut Vector,
    mask: Option<(Arc<VectorStore>, bool)>,
    accum: Option<BinaryOpKind>,
    replace: bool,
    region: Option<Indices>,
    value: DynScalar,
) -> Result<()> {
    {
        let _sp = pygb_obs::span(pygb_obs::Cat::Analyze, "analyze/vector_scalar");
        crate::analyze::check_vector_scalar(target, &mask, replace, &region, &value)?;
    }

    if crate::nb::is_deferring() {
        return crate::nb::enqueue_vector(
            target,
            mask,
            accum,
            replace,
            region,
            crate::nb::VecRhs::Scalar(value),
        );
    }
    crate::nb::flush_pending()?;
    target.settle()?;

    let mut trace = PipelineTrace::new(String::new());
    let ct = target.dtype();
    let infer_start = Instant::now();
    let mut key = ModuleKey::new("assign_v_const");
    key.set("c_type", ct.name());
    key.set("value_type", value.dtype().name());
    let mut args = VecArgs::new(VectorStore::placeholder());
    args.accum = accum;
    args.replace = replace;
    args.value = Some(value);
    args.ix = region;
    if let Some((m, comp)) = &mask {
        let m = crate::nb::resolved_vec(m)?;
        args.mask = Some(Arc::new(m.to_bool_vector()));
        args.complemented = *comp;
        common_key_flags(&mut key, accum, replace, Some(m.dtype()), *comp);
    } else {
        common_key_flags(&mut key, accum, replace, None, false);
    }
    trace.record(
        Stage::TypeInference,
        infer_start.elapsed().as_nanos() as u64,
    );
    trace.key = key.canonical();

    args.c = target.take_store();
    let outcome = runtime().dispatch(&key, &mut args, trace);
    target.put_store(args.c);
    outcome.map_err(|e| {
        PygbError::from(e).with_op("assign", format!("[{} {}]", target.size(), target.dtype()))
    })?;
    Ok(())
}

/// Dispatch the nonblocking runtime's fused eWise-then-reduce composite
/// module: evaluate `u op v` into a fresh vector of dimension `size`
/// and dtype `ct` AND fold it to a scalar with `monoid`, in one kernel
/// invocation. Returns the materialized vector (the producer's result,
/// still observable) and the scalar.
pub fn dispatch_fused_ewise_reduce(
    size: usize,
    ct: DType,
    u: Arc<VectorStore>,
    v: Arc<VectorStore>,
    op: BinaryOpKind,
    is_add: bool,
    monoid: KindMonoid,
) -> Result<(VectorStore, DynScalar)> {
    let mut trace = PipelineTrace::new(String::new());
    let infer_start = Instant::now();
    let mut key = ModuleKey::new("fused_ewise_reduce");
    key.set("c_type", ct.name());
    key.set("u_type", u.dtype().name());
    key.set("v_type", v.dtype().name());
    key.set("binop", op.name());
    key.set("ewise", if is_add { "add" } else { "mult" });
    key.set("monoid", monoid_key(monoid));
    trace.record(
        Stage::TypeInference,
        infer_start.elapsed().as_nanos() as u64,
    );
    trace.key = key.canonical();
    let mut args = VecArgs::new(VectorStore::new(size, ct));
    args.u = Some(cast_v(&u, ct)?);
    args.v = Some(cast_v(&v, ct)?);
    args.binop = Some(op);
    args.monoid = Some(monoid);
    runtime().dispatch(&key, &mut args, trace)?;
    let out = args.out.take().ok_or_else(|| {
        PygbError::Jit(pygb_jit::JitError::bad_key(
            "fused eWise-reduce produced no value",
        ))
    })?;
    Ok((args.c, out))
}

/// Rebuild a key under its final function name (the function is decided
/// while inspecting the expression, after parameters have accumulated).
fn rekey(old: ModuleKey, func: &str) -> ModuleKey {
    let mut key = ModuleKey::new(func);
    for (k, v) in old.params() {
        key.set(k, v);
    }
    key
}

// ---------------------------------------------------------------------
// Terminating scalar reductions (`s = reduce(A)`, `s = reduce(u)`).
// ---------------------------------------------------------------------

/// The monoid `reduce` falls back to when none is in context — the
/// paper's Fig. 5a reduces outside the `with` block and the text says
/// "Reduce uses the PlusMonoid".
const DEFAULT_REDUCE_MONOID: KindMonoid = KindMonoid {
    op: BinaryOpKind::Plus,
    identity: gbtl::ops::kind::IdentityKind::Zero,
};

/// `gb.reduce(x)` — fold a whole container to a scalar with the monoid
/// from context (PlusMonoid if none). Terminating: dispatches
/// immediately.
pub fn reduce<A: ReduceArg>(a: A) -> Result<DynScalar> {
    a.reduce_scalar()
}

/// Operand kinds accepted by [`reduce`].
pub trait ReduceArg {
    /// Run the reduction.
    fn reduce_scalar(self) -> Result<DynScalar>;
}

impl ReduceArg for &Matrix {
    fn reduce_scalar(self) -> Result<DynScalar> {
        let monoid = crate::context::resolve_monoid().unwrap_or(DEFAULT_REDUCE_MONOID);
        // Reduce-to-scalar is a terminating operation: deferred work
        // feeding this container must land first.
        crate::nb::flush_pending()?;
        let store = crate::nb::resolved_mat(&self.store)?;
        let mut trace = PipelineTrace::new(String::new());
        let infer_start = Instant::now();
        let mut key = ModuleKey::new("reduce_m_scalar");
        key.set("c_type", self.dtype().name());
        key.set("monoid", monoid_key(monoid));
        trace.record(
            Stage::TypeInference,
            infer_start.elapsed().as_nanos() as u64,
        );
        trace.key = key.canonical();
        let mut args = ScalarArgs {
            a: Some(store),
            u: None,
            monoid: Some(monoid),
            out: None,
        };
        runtime().dispatch(&key, &mut args, trace)?;
        args.out
            .ok_or_else(|| PygbError::Jit(pygb_jit::JitError::bad_key("reduce produced no value")))
    }
}

impl ReduceArg for &Vector {
    fn reduce_scalar(self) -> Result<DynScalar> {
        let monoid = crate::context::resolve_monoid().unwrap_or(DEFAULT_REDUCE_MONOID);
        // Terminating operation. Give the engine a chance to fuse the
        // reduction into the pending producer (one composite module)
        // before falling back to flush + plain reduce.
        if let Some(out) = crate::nb::try_fused_reduce(&self.store, monoid)? {
            return Ok(out);
        }
        crate::nb::flush_pending()?;
        let store = crate::nb::resolved_vec(&self.store)?;
        let mut trace = PipelineTrace::new(String::new());
        let infer_start = Instant::now();
        let mut key = ModuleKey::new("reduce_v_scalar");
        key.set("c_type", self.dtype().name());
        key.set("monoid", monoid_key(monoid));
        trace.record(
            Stage::TypeInference,
            infer_start.elapsed().as_nanos() as u64,
        );
        trace.key = key.canonical();
        let mut args = ScalarArgs {
            a: None,
            u: Some(store),
            monoid: Some(monoid),
            out: None,
        };
        runtime().dispatch(&key, &mut args, trace)?;
        args.out
            .ok_or_else(|| PygbError::Jit(pygb_jit::JitError::bad_key("reduce produced no value")))
    }
}
