//! Runtime dtypes — PyGB's NumPy-`dtype` analog.
//!
//! Section V: "PyGB uses NumPy's dtype class to map container types to
//! GBTL backend template types." [`DType`] is that runtime tag; its
//! [`DType::promote`] implements the C++ usual-arithmetic-conversion
//! upcast the paper applies "when two containers of different types are
//! combined in a binary operation".

use crate::error::{PygbError, Result};

/// The 11 supported element types, tagged at runtime.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// `bool`
    Bool,
    /// `int8_t`
    Int8,
    /// `int16_t`
    Int16,
    /// `int32_t`
    Int32,
    /// `int64_t`
    Int64,
    /// `uint8_t`
    UInt8,
    /// `uint16_t`
    UInt16,
    /// `uint32_t`
    UInt32,
    /// `uint64_t`
    UInt64,
    /// `float`
    Fp32,
    /// `double`
    Fp64,
}

/// All dtypes, in a stable order.
pub const ALL_DTYPES: [DType; 11] = [
    DType::Bool,
    DType::Int8,
    DType::Int16,
    DType::Int32,
    DType::Int64,
    DType::UInt8,
    DType::UInt16,
    DType::UInt32,
    DType::UInt64,
    DType::Fp32,
    DType::Fp64,
];

impl DType {
    /// The canonical dtype name (matches `gbtl::Scalar::NAME`).
    pub fn name(self) -> &'static str {
        match self {
            DType::Bool => "bool",
            DType::Int8 => "int8",
            DType::Int16 => "int16",
            DType::Int32 => "int32",
            DType::Int64 => "int64",
            DType::UInt8 => "uint8",
            DType::UInt16 => "uint16",
            DType::UInt32 => "uint32",
            DType::UInt64 => "uint64",
            DType::Fp32 => "fp32",
            DType::Fp64 => "fp64",
        }
    }

    /// Parse a dtype name (accepts a few NumPy-ish aliases).
    pub fn from_name(name: &str) -> Result<Self> {
        Ok(match name {
            "bool" => DType::Bool,
            "int8" | "i8" => DType::Int8,
            "int16" | "i16" => DType::Int16,
            "int32" | "i32" => DType::Int32,
            "int64" | "i64" | "int" => DType::Int64,
            "uint8" | "u8" => DType::UInt8,
            "uint16" | "u16" => DType::UInt16,
            "uint32" | "u32" => DType::UInt32,
            "uint64" | "u64" => DType::UInt64,
            "fp32" | "f32" | "float32" => DType::Fp32,
            "fp64" | "f64" | "float64" | "float" => DType::Fp64,
            other => {
                return Err(PygbError::UnknownDType {
                    name: other.to_string(),
                })
            }
        })
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, DType::Fp32 | DType::Fp64)
    }

    /// Whether this is a signed integer type.
    pub fn is_signed_int(self) -> bool {
        matches!(
            self,
            DType::Int8 | DType::Int16 | DType::Int32 | DType::Int64
        )
    }

    /// Whether this is an unsigned integer type (excluding bool).
    pub fn is_unsigned_int(self) -> bool {
        matches!(
            self,
            DType::UInt8 | DType::UInt16 | DType::UInt32 | DType::UInt64
        )
    }

    /// Width in bits (1 for bool).
    pub fn bits(self) -> u32 {
        match self {
            DType::Bool => 1,
            DType::Int8 | DType::UInt8 => 8,
            DType::Int16 | DType::UInt16 => 16,
            DType::Int32 | DType::UInt32 => 32,
            DType::Int64 | DType::UInt64 => 64,
            DType::Fp32 => 32,
            DType::Fp64 => 64,
        }
    }

    /// The C++ usual-arithmetic-conversions upcast (as NumPy/C++ would
    /// resolve `a OP b`): floats beat integers, wider beats narrower,
    /// and with equal width unsigned beats signed.
    pub fn promote(a: DType, b: DType) -> DType {
        if a == b {
            return a;
        }
        match (a.is_float(), b.is_float()) {
            (true, true) => {
                if a.bits() >= b.bits() {
                    a
                } else {
                    b
                }
            }
            (true, false) => a,
            (false, true) => b,
            (false, false) => {
                // bool promotes to the other integer type.
                if a == DType::Bool {
                    return b;
                }
                if b == DType::Bool {
                    return a;
                }
                match a.bits().cmp(&b.bits()) {
                    std::cmp::Ordering::Greater => a,
                    std::cmp::Ordering::Less => b,
                    std::cmp::Ordering::Equal => {
                        // Same width: unsigned wins (C++ rule).
                        if a.is_unsigned_int() {
                            a
                        } else {
                            b
                        }
                    }
                }
            }
        }
    }

    /// The default dtype for Python integers (Section V: "64-bit ints").
    pub const DEFAULT_INT: DType = DType::Int64;
    /// The default dtype for Python floats ("64-bit floats").
    pub const DEFAULT_FLOAT: DType = DType::Fp64;

    /// Why a value of `self` cannot be represented exactly as `to`, or
    /// `None` when the conversion is value-preserving. This is the
    /// question the static analyzer asks both for operand promotion
    /// (operand dtype → promoted dtype) and for the implicit cast of an
    /// expression result into the output container's dtype.
    pub fn cast_loss(self, to: DType) -> Option<&'static str> {
        if self == to || self == DType::Bool {
            return None;
        }
        if to == DType::Bool {
            return Some("values collapse to bool");
        }
        if to.is_float() {
            if self.is_float() {
                return (self.bits() > to.bits()).then_some("narrows floating-point precision");
            }
            // Integer → float: exact iff the integer fits the mantissa.
            let mantissa = if to == DType::Fp32 { 24 } else { 53 };
            return (self.bits() > mantissa)
                .then_some("integer values exceed the float mantissa precision");
        }
        if self.is_float() {
            return Some("float values are truncated to integer");
        }
        // Integer → integer.
        if self.bits() > to.bits() {
            return Some("wide values are truncated");
        }
        match (self.is_signed_int(), to.is_signed_int()) {
            (true, false) => Some("negative values are not representable"),
            (false, true) if self.bits() == to.bits() => {
                Some("large values overflow the signed range")
            }
            _ => None,
        }
    }

    /// [`DType::promote`] plus a lossiness verdict: the promoted dtype,
    /// and — when feeding either operand through the promotion loses
    /// information — which operand suffers and why. Every pair of the
    /// 11 dtypes has a defined promotion, so "undefined promotion" never
    /// arises in this lattice; lossy ones do (e.g. `int64 ⊕ fp32`,
    /// `int32 ⊕ uint32`).
    pub fn promote_checked(a: DType, b: DType) -> (DType, Option<(DType, &'static str)>) {
        let p = DType::promote(a, b);
        let loss = a
            .cast_loss(p)
            .map(|why| (a, why))
            .or_else(|| b.cast_loss(p).map(|why| (b, why)));
        (p, loss)
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for d in ALL_DTYPES {
            assert_eq!(DType::from_name(d.name()).unwrap(), d);
        }
        assert!(DType::from_name("complex128").is_err());
    }

    #[test]
    fn aliases() {
        assert_eq!(DType::from_name("float64").unwrap(), DType::Fp64);
        assert_eq!(DType::from_name("f32").unwrap(), DType::Fp32);
        assert_eq!(DType::from_name("int").unwrap(), DType::Int64);
    }

    #[test]
    fn float_beats_int() {
        assert_eq!(DType::promote(DType::Int64, DType::Fp32), DType::Fp32);
        assert_eq!(DType::promote(DType::Fp64, DType::UInt8), DType::Fp64);
        assert_eq!(DType::promote(DType::Fp32, DType::Fp64), DType::Fp64);
    }

    #[test]
    fn wider_beats_narrower() {
        assert_eq!(DType::promote(DType::Int8, DType::Int32), DType::Int32);
        assert_eq!(DType::promote(DType::UInt16, DType::UInt64), DType::UInt64);
    }

    #[test]
    fn unsigned_wins_at_equal_width() {
        assert_eq!(DType::promote(DType::Int32, DType::UInt32), DType::UInt32);
        assert_eq!(DType::promote(DType::UInt64, DType::Int64), DType::UInt64);
    }

    #[test]
    fn bool_promotes_away() {
        assert_eq!(DType::promote(DType::Bool, DType::Int8), DType::Int8);
        assert_eq!(DType::promote(DType::Fp32, DType::Bool), DType::Fp32);
        assert_eq!(DType::promote(DType::Bool, DType::Bool), DType::Bool);
    }

    #[test]
    fn promote_is_commutative() {
        for a in ALL_DTYPES {
            for b in ALL_DTYPES {
                assert_eq!(DType::promote(a, b), DType::promote(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn promote_is_idempotent_on_result() {
        for a in ALL_DTYPES {
            for b in ALL_DTYPES {
                let p = DType::promote(a, b);
                assert_eq!(DType::promote(p, p), p);
            }
        }
    }

    #[test]
    fn cast_loss_classification() {
        // Value-preserving conversions.
        assert_eq!(DType::Int32.cast_loss(DType::Int32), None);
        assert_eq!(DType::Int32.cast_loss(DType::Int64), None);
        assert_eq!(DType::Bool.cast_loss(DType::UInt8), None);
        assert_eq!(DType::Int16.cast_loss(DType::Fp32), None); // fits mantissa
        assert_eq!(DType::Int32.cast_loss(DType::Fp64), None);
        assert_eq!(DType::UInt8.cast_loss(DType::Int16), None);
        // Lossy ones.
        assert!(DType::Int64.cast_loss(DType::Fp64).is_some()); // > 53-bit mantissa
        assert!(DType::Int32.cast_loss(DType::Fp32).is_some()); // > 24-bit mantissa
        assert!(DType::Fp64.cast_loss(DType::Fp32).is_some());
        assert!(DType::Fp32.cast_loss(DType::Int64).is_some());
        assert!(DType::Int8.cast_loss(DType::UInt64).is_some()); // sign loss
        assert!(DType::UInt32.cast_loss(DType::Int32).is_some()); // overflow
        assert!(DType::Int64.cast_loss(DType::Int8).is_some()); // truncation
        assert!(DType::Int8.cast_loss(DType::Bool).is_some());
    }

    #[test]
    fn promote_checked_flags_the_losing_operand() {
        let (p, loss) = DType::promote_checked(DType::Int64, DType::Fp32);
        assert_eq!(p, DType::Fp32);
        assert_eq!(loss.map(|(d, _)| d), Some(DType::Int64));

        let (p, loss) = DType::promote_checked(DType::Int32, DType::UInt32);
        assert_eq!(p, DType::UInt32);
        assert_eq!(loss.map(|(d, _)| d), Some(DType::Int32));

        // Exact promotions carry no loss verdict.
        assert_eq!(DType::promote_checked(DType::Int16, DType::Fp64).1, None);
        assert_eq!(DType::promote_checked(DType::Bool, DType::Int8).1, None);
        assert_eq!(DType::promote_checked(DType::Fp32, DType::Fp64).1, None);
    }
}
