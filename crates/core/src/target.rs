//! Assignment targets — the left-hand side of `C[M, z] = ...`.
//!
//! PyGB spells the output controls with `__setitem__` syntax:
//! `C[None] = expr`, `C[M] += expr`, `C[~m] = expr`,
//! `C[2:4, 2:4] = A`, `w[:] = 0.25`. The builders here carry the same
//! information — mask (plain or complemented), index region, replace
//! flag — and the finishing call (`assign`, `accum_assign`,
//! `assign_scalar`) triggers evaluation through the JIT dispatch layer.
//!
//! The replace flag resolves like any other context item: explicit
//! `.replace()` wins, otherwise a `gb.Replace` guard in context sets it
//! (Fig. 2b's `with gb.LogicalSemiring, gb.Replace:`).

use std::sync::Arc;

use gbtl::Indices;

use crate::context;
use crate::dispatch;
use crate::error::{PygbError, Result};
use crate::expr::{MatrixExpr, VectorExpr};
use crate::matrix::Matrix;
use crate::store::{MatrixStore, VectorStore};
use crate::value::DynScalar;
use crate::vector::Vector;

/// Builder for matrix assignment.
pub struct MatrixAssign<'a> {
    target: &'a mut Matrix,
    mask: Option<(Arc<MatrixStore>, bool)>,
    replace: Option<bool>,
    region: Option<(Indices, Indices)>,
}

impl<'a> MatrixAssign<'a> {
    pub(crate) fn new(
        target: &'a mut Matrix,
        mask: Option<Arc<MatrixStore>>,
        complemented: bool,
    ) -> Self {
        MatrixAssign {
            target,
            mask: mask.map(|m| (m, complemented)),
            replace: None,
            region: None,
        }
    }

    /// Force replace semantics (`z = true`), overriding context.
    pub fn replace(mut self) -> Self {
        self.replace = Some(true);
        self
    }

    /// Force merge semantics, overriding a `gb.Replace` context.
    pub fn merge(mut self) -> Self {
        self.replace = Some(false);
        self
    }

    /// Restrict the assignment to an index region —
    /// `C[2:4, 2:4] = ...`.
    pub fn region(mut self, rows: impl Into<Indices>, cols: impl Into<Indices>) -> Self {
        self.region = Some((rows.into(), cols.into()));
        self
    }

    fn replace_flag(&self) -> bool {
        self.replace.unwrap_or_else(context::replace_active)
    }

    /// `C[...] = expr` — evaluate with no accumulator.
    pub fn assign(self, expr: impl Into<MatrixExpr>) -> Result<()> {
        let replace = self.replace_flag();
        dispatch::eval_matrix(
            self.target,
            self.mask,
            None,
            Some(replace),
            self.region,
            expr.into(),
        )
    }

    /// `C[...] += expr` — evaluate with the accumulator from context
    /// (explicit `Accumulator`, else the nearest monoid/semiring's ⊕).
    pub fn accum_assign(self, expr: impl Into<MatrixExpr>) -> Result<()> {
        let accum = context::resolve_accum().ok_or(PygbError::MissingOperator {
            needed: "accumulator",
            operation: "+=",
        })?;
        let replace = self.replace_flag();
        dispatch::eval_matrix(
            self.target,
            self.mask,
            Some(accum),
            Some(replace),
            self.region,
            expr.into(),
        )
    }

    /// `C[...] = scalar` — constant assignment over the region.
    pub fn assign_scalar(self, v: impl Into<DynScalar>) -> Result<()> {
        let replace = self.replace_flag();
        dispatch::assign_matrix_scalar(self.target, self.mask, None, replace, self.region, v.into())
    }

    /// `C[...] += scalar` — accumulated constant assignment.
    pub fn accum_assign_scalar(self, v: impl Into<DynScalar>) -> Result<()> {
        let accum = context::resolve_accum().ok_or(PygbError::MissingOperator {
            needed: "accumulator",
            operation: "+=",
        })?;
        let replace = self.replace_flag();
        dispatch::assign_matrix_scalar(
            self.target,
            self.mask,
            Some(accum),
            replace,
            self.region,
            v.into(),
        )
    }
}

/// Builder for vector assignment.
pub struct VectorAssign<'a> {
    target: &'a mut Vector,
    mask: Option<(Arc<VectorStore>, bool)>,
    replace: Option<bool>,
    region: Option<Indices>,
}

impl<'a> VectorAssign<'a> {
    pub(crate) fn new(
        target: &'a mut Vector,
        mask: Option<Arc<VectorStore>>,
        complemented: bool,
    ) -> Self {
        VectorAssign {
            target,
            mask: mask.map(|m| (m, complemented)),
            replace: None,
            region: None,
        }
    }

    /// Force replace semantics.
    pub fn replace(mut self) -> Self {
        self.replace = Some(true);
        self
    }

    /// Force merge semantics.
    pub fn merge(mut self) -> Self {
        self.replace = Some(false);
        self
    }

    /// Restrict to an index region — `w[1:4] = ...`, `w[:] = ...`.
    pub fn slice(mut self, ix: impl Into<Indices>) -> Self {
        self.region = Some(ix.into());
        self
    }

    fn replace_flag(&self) -> bool {
        self.replace.unwrap_or_else(context::replace_active)
    }

    /// `w[...] = expr`.
    pub fn assign(self, expr: impl Into<VectorExpr>) -> Result<()> {
        let replace = self.replace_flag();
        dispatch::eval_vector(
            self.target,
            self.mask,
            None,
            Some(replace),
            self.region,
            expr.into(),
        )
    }

    /// `w[...] += expr`.
    pub fn accum_assign(self, expr: impl Into<VectorExpr>) -> Result<()> {
        let accum = context::resolve_accum().ok_or(PygbError::MissingOperator {
            needed: "accumulator",
            operation: "+=",
        })?;
        let replace = self.replace_flag();
        dispatch::eval_vector(
            self.target,
            self.mask,
            Some(accum),
            Some(replace),
            self.region,
            expr.into(),
        )
    }

    /// `w[...] = scalar` — `page_rank[:] = 1.0 / rows` (Fig. 7).
    pub fn assign_scalar(self, v: impl Into<DynScalar>) -> Result<()> {
        let replace = self.replace_flag();
        dispatch::assign_vector_scalar(self.target, self.mask, None, replace, self.region, v.into())
    }

    /// `w[...] += scalar`.
    pub fn accum_assign_scalar(self, v: impl Into<DynScalar>) -> Result<()> {
        let accum = context::resolve_accum().ok_or(PygbError::MissingOperator {
            needed: "accumulator",
            operation: "+=",
        })?;
        let replace = self.replace_flag();
        dispatch::assign_vector_scalar(
            self.target,
            self.mask,
            Some(accum),
            replace,
            self.region,
            v.into(),
        )
    }
}
