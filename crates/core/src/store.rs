//! Type-erased container storage.
//!
//! Python containers don't know their element type until runtime; PyGB
//! tags each container with a NumPy dtype and selects the GBTL template
//! instantiation accordingly. [`MatrixStore`] / [`VectorStore`] are that
//! mechanism in Rust: an 11-variant enum over the monomorphized `gbtl`
//! containers, with the [`Element`] trait providing the typed
//! wrap/unwrap bridge kernels use after the JIT layer has selected the
//! right instantiation.

use gbtl::{Matrix as GMatrix, Vector as GVector};

use crate::dtype::DType;
use crate::value::DynScalar;

/// A dtype-tagged sparse matrix.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixStore {
    /// `bool` storage.
    Bool(GMatrix<bool>),
    /// `int8` storage.
    Int8(GMatrix<i8>),
    /// `int16` storage.
    Int16(GMatrix<i16>),
    /// `int32` storage.
    Int32(GMatrix<i32>),
    /// `int64` storage.
    Int64(GMatrix<i64>),
    /// `uint8` storage.
    UInt8(GMatrix<u8>),
    /// `uint16` storage.
    UInt16(GMatrix<u16>),
    /// `uint32` storage.
    UInt32(GMatrix<u32>),
    /// `uint64` storage.
    UInt64(GMatrix<u64>),
    /// `fp32` storage.
    Fp32(GMatrix<f32>),
    /// `fp64` storage.
    Fp64(GMatrix<f64>),
}

/// A dtype-tagged sparse vector.
#[derive(Clone, Debug, PartialEq)]
pub enum VectorStore {
    /// `bool` storage.
    Bool(GVector<bool>),
    /// `int8` storage.
    Int8(GVector<i8>),
    /// `int16` storage.
    Int16(GVector<i16>),
    /// `int32` storage.
    Int32(GVector<i32>),
    /// `int64` storage.
    Int64(GVector<i64>),
    /// `uint8` storage.
    UInt8(GVector<u8>),
    /// `uint16` storage.
    UInt16(GVector<u16>),
    /// `uint32` storage.
    UInt32(GVector<u32>),
    /// `uint64` storage.
    UInt64(GVector<u64>),
    /// `fp32` storage.
    Fp32(GVector<f32>),
    /// `fp64` storage.
    Fp64(GVector<f64>),
}

/// Run `$body` with `$m` bound to the typed matrix inside the store.
macro_rules! dispatch_matrix {
    ($store:expr, |$m:ident| $body:expr) => {
        match $store {
            MatrixStore::Bool($m) => $body,
            MatrixStore::Int8($m) => $body,
            MatrixStore::Int16($m) => $body,
            MatrixStore::Int32($m) => $body,
            MatrixStore::Int64($m) => $body,
            MatrixStore::UInt8($m) => $body,
            MatrixStore::UInt16($m) => $body,
            MatrixStore::UInt32($m) => $body,
            MatrixStore::UInt64($m) => $body,
            MatrixStore::Fp32($m) => $body,
            MatrixStore::Fp64($m) => $body,
        }
    };
}

/// Run `$body` with `$v` bound to the typed vector inside the store.
macro_rules! dispatch_vector {
    ($store:expr, |$v:ident| $body:expr) => {
        match $store {
            VectorStore::Bool($v) => $body,
            VectorStore::Int8($v) => $body,
            VectorStore::Int16($v) => $body,
            VectorStore::Int32($v) => $body,
            VectorStore::Int64($v) => $body,
            VectorStore::UInt8($v) => $body,
            VectorStore::UInt16($v) => $body,
            VectorStore::UInt32($v) => $body,
            VectorStore::UInt64($v) => $body,
            VectorStore::Fp32($v) => $body,
            VectorStore::Fp64($v) => $body,
        }
    };
}

/// A concrete scalar type usable as a PyGB element: ties a
/// [`gbtl::Scalar`] to its [`DType`] tag and store variant.
pub trait Element: gbtl::Scalar {
    /// This type's dtype tag.
    const DTYPE: DType;
    /// Wrap a typed matrix into a store.
    fn wrap_matrix(m: GMatrix<Self>) -> MatrixStore;
    /// Borrow the typed matrix out of a store (None on dtype mismatch).
    fn unwrap_matrix(s: &MatrixStore) -> Option<&GMatrix<Self>>;
    /// Take the typed matrix out of a store (None on dtype mismatch).
    fn unwrap_matrix_owned(s: MatrixStore) -> Option<GMatrix<Self>>;
    /// Wrap a typed vector into a store.
    fn wrap_vector(v: GVector<Self>) -> VectorStore;
    /// Borrow the typed vector out of a store.
    fn unwrap_vector(s: &VectorStore) -> Option<&GVector<Self>>;
    /// Take the typed vector out of a store.
    fn unwrap_vector_owned(s: VectorStore) -> Option<GVector<Self>>;
    /// Box a value of this type.
    fn to_dyn(self) -> DynScalar;
    /// Unbox a value into this type (casting as needed).
    fn from_dyn(v: DynScalar) -> Self;
}

macro_rules! impl_element {
    ($t:ty, $variant:ident, $dtype:expr) => {
        impl Element for $t {
            const DTYPE: DType = $dtype;
            fn wrap_matrix(m: GMatrix<Self>) -> MatrixStore {
                MatrixStore::$variant(m)
            }
            fn unwrap_matrix(s: &MatrixStore) -> Option<&GMatrix<Self>> {
                match s {
                    MatrixStore::$variant(m) => Some(m),
                    _ => None,
                }
            }
            fn unwrap_matrix_owned(s: MatrixStore) -> Option<GMatrix<Self>> {
                match s {
                    MatrixStore::$variant(m) => Some(m),
                    _ => None,
                }
            }
            fn wrap_vector(v: GVector<Self>) -> VectorStore {
                VectorStore::$variant(v)
            }
            fn unwrap_vector(s: &VectorStore) -> Option<&GVector<Self>> {
                match s {
                    VectorStore::$variant(v) => Some(v),
                    _ => None,
                }
            }
            fn unwrap_vector_owned(s: VectorStore) -> Option<GVector<Self>> {
                match s {
                    VectorStore::$variant(v) => Some(v),
                    _ => None,
                }
            }
            fn to_dyn(self) -> DynScalar {
                DynScalar::$variant(self)
            }
            fn from_dyn(v: DynScalar) -> Self {
                v.to_scalar::<$t>()
            }
        }
    };
}

impl_element!(bool, Bool, DType::Bool);
impl_element!(i8, Int8, DType::Int8);
impl_element!(i16, Int16, DType::Int16);
impl_element!(i32, Int32, DType::Int32);
impl_element!(i64, Int64, DType::Int64);
impl_element!(u8, UInt8, DType::UInt8);
impl_element!(u16, UInt16, DType::UInt16);
impl_element!(u32, UInt32, DType::UInt32);
impl_element!(u64, UInt64, DType::UInt64);
impl_element!(f32, Fp32, DType::Fp32);
impl_element!(f64, Fp64, DType::Fp64);

/// Apply a dtype-indexed constructor: `$make!(variant, type)` must
/// produce a value for each of the 11 dtypes.
macro_rules! construct_for_dtype {
    ($dtype:expr, $make:ident) => {
        match $dtype {
            DType::Bool => $make!(Bool, bool),
            DType::Int8 => $make!(Int8, i8),
            DType::Int16 => $make!(Int16, i16),
            DType::Int32 => $make!(Int32, i32),
            DType::Int64 => $make!(Int64, i64),
            DType::UInt8 => $make!(UInt8, u8),
            DType::UInt16 => $make!(UInt16, u16),
            DType::UInt32 => $make!(UInt32, u32),
            DType::UInt64 => $make!(UInt64, u64),
            DType::Fp32 => $make!(Fp32, f32),
            DType::Fp64 => $make!(Fp64, f64),
        }
    };
}

impl MatrixStore {
    /// An empty matrix of the given shape and dtype.
    pub fn new(nrows: usize, ncols: usize, dtype: DType) -> MatrixStore {
        macro_rules! make {
            ($variant:ident, $t:ty) => {
                MatrixStore::$variant(GMatrix::<$t>::new(nrows, ncols))
            };
        }
        construct_for_dtype!(dtype, make)
    }

    /// The dtype tag.
    pub fn dtype(&self) -> DType {
        match self {
            MatrixStore::Bool(_) => DType::Bool,
            MatrixStore::Int8(_) => DType::Int8,
            MatrixStore::Int16(_) => DType::Int16,
            MatrixStore::Int32(_) => DType::Int32,
            MatrixStore::Int64(_) => DType::Int64,
            MatrixStore::UInt8(_) => DType::UInt8,
            MatrixStore::UInt16(_) => DType::UInt16,
            MatrixStore::UInt32(_) => DType::UInt32,
            MatrixStore::UInt64(_) => DType::UInt64,
            MatrixStore::Fp32(_) => DType::Fp32,
            MatrixStore::Fp64(_) => DType::Fp64,
        }
    }

    /// Row count.
    pub fn nrows(&self) -> usize {
        dispatch_matrix!(self, |m| m.nrows())
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        dispatch_matrix!(self, |m| m.ncols())
    }

    /// Stored element count.
    pub fn nvals(&self) -> usize {
        dispatch_matrix!(self, |m| m.nvals())
    }

    /// Boxed element access.
    pub fn get(&self, i: usize, j: usize) -> Option<DynScalar> {
        dispatch_matrix!(self, |m| m.get(i, j).map(Element::to_dyn))
    }

    /// Boxed element write.
    pub fn set(&mut self, i: usize, j: usize, v: DynScalar) -> gbtl::Result<()> {
        dispatch_matrix!(self, |m| m.set(i, j, Element::from_dyn(v)))
    }

    /// Cast to another dtype (no-op clone of structure when equal).
    pub fn cast(&self, to: DType) -> MatrixStore {
        if self.dtype() == to {
            return self.clone();
        }
        macro_rules! make {
            ($variant:ident, $t:ty) => {
                MatrixStore::$variant(dispatch_matrix!(self, |m| m.cast::<$t>()))
            };
        }
        construct_for_dtype!(to, make)
    }

    /// The boolean pattern matrix masks use (`to_bool` coercion of
    /// every stored value).
    pub fn to_bool_matrix(&self) -> GMatrix<bool> {
        dispatch_matrix!(self, |m| m.cast::<bool>())
    }

    /// Boxed triples (row, col, value) in row-major order.
    pub fn extract_triples_dyn(&self) -> Vec<(usize, usize, DynScalar)> {
        dispatch_matrix!(self, |m| m
            .iter()
            .map(|(i, j, v)| (i, j, Element::to_dyn(v)))
            .collect())
    }

    /// Materialize the transpose as a new store of the same dtype (a
    /// typed counting sort; no per-element boxing). Used by the
    /// plan-time kernel hints to honor an SpMV direction that disagrees
    /// with the stored orientation (see [`crate::facts::cached_transpose`]).
    pub fn transposed(&self) -> MatrixStore {
        dispatch_matrix!(self, |m| Element::wrap_matrix(m.transpose_owned()))
    }

    /// Placeholder store used when temporarily taking ownership.
    pub(crate) fn placeholder() -> MatrixStore {
        MatrixStore::Bool(GMatrix::new(0, 0))
    }

    /// Build from boxed triples: every value crosses the dynamic
    /// boundary individually (one dtype dispatch + unbox per element —
    /// the Python-list construction cost of Fig. 11), then the typed
    /// container is assembled in one pass. Duplicates keep the last
    /// value, like repeated Python list appends.
    pub fn from_dyn_triples(
        nrows: usize,
        ncols: usize,
        triples: &[(usize, usize, DynScalar)],
        dtype: DType,
    ) -> gbtl::Result<MatrixStore> {
        macro_rules! make {
            ($variant:ident, $t:ty) => {{
                let typed: Vec<(usize, usize, $t)> = triples
                    .iter()
                    .map(|&(i, j, v)| (i, j, <$t as Element>::from_dyn(v)))
                    .collect();
                GMatrix::from_triples_dedup_with(nrows, ncols, typed, |_, b| b)
                    .map(MatrixStore::$variant)
            }};
        }
        construct_for_dtype!(dtype, make)
    }
}

impl VectorStore {
    /// An empty vector of the given size and dtype.
    pub fn new(size: usize, dtype: DType) -> VectorStore {
        macro_rules! make {
            ($variant:ident, $t:ty) => {
                VectorStore::$variant(GVector::<$t>::new(size))
            };
        }
        construct_for_dtype!(dtype, make)
    }

    /// The dtype tag.
    pub fn dtype(&self) -> DType {
        match self {
            VectorStore::Bool(_) => DType::Bool,
            VectorStore::Int8(_) => DType::Int8,
            VectorStore::Int16(_) => DType::Int16,
            VectorStore::Int32(_) => DType::Int32,
            VectorStore::Int64(_) => DType::Int64,
            VectorStore::UInt8(_) => DType::UInt8,
            VectorStore::UInt16(_) => DType::UInt16,
            VectorStore::UInt32(_) => DType::UInt32,
            VectorStore::UInt64(_) => DType::UInt64,
            VectorStore::Fp32(_) => DType::Fp32,
            VectorStore::Fp64(_) => DType::Fp64,
        }
    }

    /// Dimension.
    pub fn size(&self) -> usize {
        dispatch_vector!(self, |v| v.size())
    }

    /// Stored element count.
    pub fn nvals(&self) -> usize {
        dispatch_vector!(self, |v| v.nvals())
    }

    /// Boxed element access.
    pub fn get(&self, i: usize) -> Option<DynScalar> {
        dispatch_vector!(self, |v| v.get(i).map(Element::to_dyn))
    }

    /// Boxed element write.
    pub fn set(&mut self, i: usize, val: DynScalar) -> gbtl::Result<()> {
        dispatch_vector!(self, |v| v.set(i, Element::from_dyn(val)))
    }

    /// Cast to another dtype.
    pub fn cast(&self, to: DType) -> VectorStore {
        if self.dtype() == to {
            return self.clone();
        }
        macro_rules! make {
            ($variant:ident, $t:ty) => {
                VectorStore::$variant(dispatch_vector!(self, |v| v.cast::<$t>()))
            };
        }
        construct_for_dtype!(to, make)
    }

    /// The boolean pattern vector masks use.
    pub fn to_bool_vector(&self) -> GVector<bool> {
        dispatch_vector!(self, |v| v.cast::<bool>())
    }

    /// Boxed pairs (index, value) in index order.
    pub fn extract_pairs_dyn(&self) -> Vec<(usize, DynScalar)> {
        dispatch_vector!(self, |v| v
            .iter()
            .map(|(i, x)| (i, Element::to_dyn(x)))
            .collect())
    }

    /// Placeholder store used when temporarily taking ownership.
    pub(crate) fn placeholder() -> VectorStore {
        VectorStore::Bool(GVector::new(0))
    }

    /// Build from boxed pairs (see [`MatrixStore::from_dyn_triples`]).
    pub fn from_dyn_pairs(
        size: usize,
        pairs: &[(usize, DynScalar)],
        dtype: DType,
    ) -> gbtl::Result<VectorStore> {
        macro_rules! make {
            ($variant:ident, $t:ty) => {{
                let typed: Vec<(usize, $t)> = pairs
                    .iter()
                    .map(|&(i, v)| (i, <$t as Element>::from_dyn(v)))
                    .collect();
                GVector::from_pairs_dedup_with(size, typed, |_, b| b).map(VectorStore::$variant)
            }};
        }
        construct_for_dtype!(dtype, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_has_requested_dtype_and_shape() {
        let m = MatrixStore::new(3, 4, DType::Fp32);
        assert_eq!(m.dtype(), DType::Fp32);
        assert_eq!((m.nrows(), m.ncols()), (3, 4));
        assert_eq!(m.nvals(), 0);
        let v = VectorStore::new(7, DType::Int16);
        assert_eq!(v.dtype(), DType::Int16);
        assert_eq!(v.size(), 7);
    }

    #[test]
    fn boxed_get_set_roundtrip() {
        let mut m = MatrixStore::new(2, 2, DType::Int32);
        m.set(0, 1, DynScalar::from(42i64)).unwrap(); // cast on entry
        assert_eq!(m.get(0, 1), Some(DynScalar::Int32(42)));
        assert_eq!(m.get(1, 1), None);
    }

    #[test]
    fn cast_converts_values() {
        let mut m = MatrixStore::new(1, 1, DType::Fp64);
        m.set(0, 0, DynScalar::from(2.7f64)).unwrap();
        let i = m.cast(DType::Int8);
        assert_eq!(i.dtype(), DType::Int8);
        assert_eq!(i.get(0, 0), Some(DynScalar::Int8(2)));
        // Same-dtype cast is a plain clone.
        let same = m.cast(DType::Fp64);
        assert_eq!(same, m);
    }

    #[test]
    fn element_wrap_unwrap() {
        let g = GMatrix::<f64>::new(2, 2);
        let s = f64::wrap_matrix(g);
        assert!(f64::unwrap_matrix(&s).is_some());
        assert!(i32::unwrap_matrix(&s).is_none());
        assert!(f64::unwrap_matrix_owned(s).is_some());
    }

    #[test]
    fn bool_pattern() {
        let mut v = VectorStore::new(3, DType::Fp64);
        v.set(0, DynScalar::from(0.0f64)).unwrap();
        v.set(2, DynScalar::from(-2.0f64)).unwrap();
        let b = v.to_bool_vector();
        assert_eq!(b.get(0), Some(false));
        assert_eq!(b.get(2), Some(true));
    }

    #[test]
    fn extract_dyn() {
        let mut m = MatrixStore::new(2, 2, DType::UInt8);
        m.set(1, 0, DynScalar::from(9u8)).unwrap();
        assert_eq!(m.extract_triples_dyn(), vec![(1, 0, DynScalar::UInt8(9))]);
    }

    #[test]
    fn every_dtype_constructible() {
        for d in crate::dtype::ALL_DTYPES {
            let m = MatrixStore::new(1, 1, d);
            assert_eq!(m.dtype(), d);
            let v = VectorStore::new(1, d);
            assert_eq!(v.dtype(), d);
        }
    }
}
