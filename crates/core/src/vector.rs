//! The dynamically-typed `Vector` container — PyGB's `gb.Vector`.

use std::sync::Arc;

use crate::dtype::DType;
use crate::error::Result;
use crate::expr::VectorExpr;
use crate::store::{Element, VectorStore};
use crate::target::VectorAssign;
use crate::value::DynScalar;

/// A sparse vector with a runtime dtype.
#[derive(Clone, Debug)]
pub struct Vector {
    pub(crate) store: Arc<VectorStore>,
}

impl PartialEq for Vector {
    /// Value equality. Reads through the nonblocking resolution map, so
    /// comparing a deferred container flushes it first.
    fn eq(&self, other: &Vector) -> bool {
        *self.read_store() == *other.read_store()
    }
}

impl Vector {
    /// An empty vector — `gb.Vector(shape=(n,), dtype=...)`.
    pub fn new(size: usize, dtype: DType) -> Vector {
        Vector {
            store: Arc::new(VectorStore::new(size, dtype)),
        }
    }

    /// Construction from dense data — `gb.Vector([1, 2, 3, 4, 5])`.
    pub fn from_dense<T: Element>(data: &[T]) -> Vector {
        Vector {
            store: Arc::new(T::wrap_vector(gbtl::Vector::from_dense(data))),
        }
    }

    /// Construction from sparse pairs —
    /// `gb.Vector((vals, idx), shape=(l,))` (Fig. 3a).
    pub fn from_pairs<T: Element>(
        size: usize,
        pairs: impl IntoIterator<Item = (usize, T)>,
    ) -> Result<Vector> {
        let v = gbtl::Vector::from_pairs(size, pairs)?;
        Ok(Vector {
            store: Arc::new(T::wrap_vector(v)),
        })
    }

    /// Construction from boxed pairs — the interpreted path of Fig. 11.
    pub fn from_pairs_dyn(
        size: usize,
        pairs: &[(usize, DynScalar)],
        dtype: Option<DType>,
    ) -> Result<Vector> {
        let dtype = dtype.unwrap_or_else(|| {
            if pairs.iter().any(|&(_, v)| v.dtype().is_float()) {
                DType::DEFAULT_FLOAT
            } else {
                DType::DEFAULT_INT
            }
        });
        let store = VectorStore::from_dyn_pairs(size, pairs, dtype)?;
        Ok(Vector {
            store: Arc::new(store),
        })
    }

    pub(crate) fn from_store(store: VectorStore) -> Vector {
        Vector {
            store: Arc::new(store),
        }
    }

    /// Wrap a statically-typed `gbtl` vector (zero-copy move) — the
    /// bridge native code uses to hand results to the DSL.
    pub fn from_typed<T: Element>(v: gbtl::Vector<T>) -> Vector {
        Vector::from_store(T::wrap_vector(v))
    }

    /// Clone out the statically-typed `gbtl` vector, if the dtype
    /// matches `T`.
    pub fn to_typed<T: Element>(&self) -> Option<gbtl::Vector<T>> {
        T::unwrap_vector(&self.read_store()).cloned()
    }

    pub(crate) fn store_arc(&self) -> Arc<VectorStore> {
        Arc::clone(&self.store)
    }

    /// The store with any deferred operation resolved — the read path
    /// for every data accessor (GraphBLAS flush-on-read). Panics if a
    /// deferred operation failed; use [`Vector::settle`] to surface the
    /// error as a value instead.
    fn read_store(&self) -> Arc<VectorStore> {
        crate::nb::resolved_vec(&self.store)
            .unwrap_or_else(|e| panic!("deferred PyGB operation failed at flush: {e}"))
    }

    /// Replace a deferred placeholder with its computed store, flushing
    /// if necessary. No-op in blocking mode. Call this before handing
    /// the container to another thread or before using [`Vector::store`]
    /// in nonblocking code.
    pub fn settle(&mut self) -> Result<()> {
        let resolved = crate::nb::resolved_vec(&self.store)?;
        if !Arc::ptr_eq(&resolved, &self.store) {
            self.store = resolved;
        }
        Ok(())
    }

    /// Borrow the dtype-tagged store (for fused whole-algorithm kernels
    /// that need zero-copy typed access via [`Element::unwrap_vector`]).
    /// In nonblocking mode call [`Vector::settle`] first — this borrow
    /// does not read through the deferred-op resolution map.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// Take the store out for kernel mutation.
    pub(crate) fn take_store(&mut self) -> VectorStore {
        let old = std::mem::replace(&mut self.store, Arc::new(VectorStore::placeholder()));
        Arc::try_unwrap(old).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Put a (possibly mutated) store back.
    pub(crate) fn put_store(&mut self, store: VectorStore) {
        self.store = Arc::new(store);
    }

    /// Evaluate an expression into a new container (`w = A @ u`).
    pub fn from_expr(expr: VectorExpr) -> Result<Vector> {
        let size = expr.result_size();
        let mut out = Vector::new(size, expr.result_dtype());
        crate::dispatch::eval_vector(&mut out, None, None, None, None, expr)?;
        Ok(out)
    }

    /// Dimension — `v.shape[0]`.
    pub fn size(&self) -> usize {
        self.store.size()
    }

    /// Stored element count — `v.nvals`. Terminating: flushes deferred
    /// work feeding this container.
    pub fn nvals(&self) -> usize {
        self.read_store().nvals()
    }

    /// The runtime dtype.
    pub fn dtype(&self) -> DType {
        self.store.dtype()
    }

    /// Boxed element access. Terminating: flushes deferred work feeding
    /// this container.
    pub fn get(&self, i: usize) -> Option<DynScalar> {
        self.read_store().get(i)
    }

    /// Boxed element write.
    pub fn set(&mut self, i: usize, v: impl Into<DynScalar>) -> Result<()> {
        self.settle()?;
        Arc::make_mut(&mut self.store).set(i, v.into())?;
        Ok(())
    }

    /// Remove every stored element, keeping size and dtype.
    pub fn clear(&mut self) {
        let (n, dtype) = (self.size(), self.dtype());
        self.store = Arc::new(VectorStore::new(n, dtype));
    }

    /// A deep, independent duplicate (severs copy-on-write sharing).
    pub fn dup(&self) -> Vector {
        Vector {
            store: Arc::new((*self.read_store()).clone()),
        }
    }

    /// A copy cast to another dtype.
    pub fn cast(&self, dtype: DType) -> Vector {
        Vector {
            store: Arc::new(self.read_store().cast(dtype)),
        }
    }

    /// Extract stored `(index, value)` pairs. Terminating: flushes
    /// deferred work feeding this container.
    pub fn extract_pairs(&self) -> Vec<(usize, DynScalar)> {
        self.read_store().extract_pairs_dyn()
    }

    /// Densify to `f64` with zeros at unstored positions.
    pub fn to_dense_f64(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.size()];
        for (i, v) in self.extract_pairs() {
            out[i] = v.as_f64();
        }
        out
    }

    // --- expression builders ---

    /// `u @ A` — vector-matrix multiply expression (`vxm`).
    pub fn vxm(&self, a: impl crate::expr::MatrixOperandArg) -> VectorExpr {
        VectorExpr::vxm(self.store_arc(), a.into_operand())
    }

    /// `u + v` — eWiseAdd expression (also `&u + &v`).
    pub fn ewise_add(&self, rhs: &Vector) -> VectorExpr {
        VectorExpr::ewise_add(self.store_arc(), rhs.store_arc())
    }

    /// `u * v` — eWiseMult expression (also `&u * &v`).
    pub fn ewise_mult(&self, rhs: &Vector) -> VectorExpr {
        VectorExpr::ewise_mult(self.store_arc(), rhs.store_arc())
    }

    /// `u[i]` — extract expression.
    pub fn extract(&self, ix: impl Into<gbtl::Indices>) -> VectorExpr {
        VectorExpr::extract(self.store_arc(), ix.into())
    }

    // --- assignment targets ---

    /// `w[None] = ...` — unmasked in-place assignment target.
    pub fn no_mask(&mut self) -> VectorAssign<'_> {
        VectorAssign::new(self, None, false)
    }

    /// `w[m] = ...` — masked assignment target.
    pub fn masked(&mut self, mask: &Vector) -> VectorAssign<'_> {
        let m = Arc::clone(&mask.store);
        VectorAssign::new(self, Some(m), false)
    }

    /// `w[~m] = ...` — complemented-mask assignment target.
    pub fn masked_complement(&mut self, mask: &Vector) -> VectorAssign<'_> {
        let m = Arc::clone(&mask.store);
        VectorAssign::new(self, Some(m), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_sparse_construction() {
        let d = Vector::from_dense(&[1i64, 2, 3, 4, 5]);
        assert_eq!(d.size(), 5);
        assert_eq!(d.nvals(), 5);
        let s = Vector::from_pairs(9, [(3usize, 2.5f32)]).unwrap();
        assert_eq!(s.dtype(), DType::Fp32);
        assert_eq!(s.nvals(), 1);
        assert_eq!(s.get(3), Some(DynScalar::Fp32(2.5)));
    }

    #[test]
    fn boxed_construction() {
        let pairs = [(1usize, DynScalar::from(4i64))];
        let v = Vector::from_pairs_dyn(3, &pairs, None).unwrap();
        assert_eq!(v.dtype(), DType::Int64);
        assert_eq!(v.get(1), Some(DynScalar::Int64(4)));
    }

    #[test]
    fn cow_semantics() {
        let mut a = Vector::from_dense(&[1u8, 2]);
        let snapshot = a.clone();
        a.set(0, 100u8).unwrap();
        assert_eq!(snapshot.get(0), Some(DynScalar::UInt8(1)));
        assert_eq!(a.get(0), Some(DynScalar::UInt8(100)));
    }

    #[test]
    fn to_dense_f64() {
        let v = Vector::from_pairs(4, [(1usize, 2i32), (3, -1)]).unwrap();
        assert_eq!(v.to_dense_f64(), vec![0.0, 2.0, 0.0, -1.0]);
    }

    #[test]
    fn oob_set_errors() {
        let mut v = Vector::new(2, DType::Int32);
        assert!(v.set(2, 1i32).is_err());
    }
}

impl std::fmt::Display for Vector {
    /// `repr`-style rendering: size, dtype, and up to 16 stored pairs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Vector<{}> size {}, {} stored",
            self.dtype(),
            self.size(),
            self.nvals()
        )?;
        for (k, (i, v)) in self.extract_pairs().into_iter().enumerate() {
            if k == 16 {
                return write!(f, "  ...");
            }
            writeln!(f, "  ({i})  {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_lists_pairs() {
        let v = Vector::from_pairs(4, [(2usize, 7i64)]).unwrap();
        let s = v.to_string();
        assert!(s.contains("Vector<int64> size 4, 1 stored"));
        assert!(s.contains("(2)  7"));
    }

    #[test]
    fn clear_and_dup() {
        let mut v = Vector::from_dense(&[1u8, 2, 3]);
        let d = v.dup();
        v.clear();
        assert_eq!(v.nvals(), 0);
        assert_eq!(v.size(), 3);
        assert_eq!(d.nvals(), 3);
    }

    #[test]
    fn display_truncates_long_containers() {
        let v = Vector::from_dense(&vec![1i64; 40]);
        let s = v.to_string();
        assert!(s.ends_with("..."));
    }
}
