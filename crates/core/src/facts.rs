//! The abstract domain for plan-time sparsity analysis.
//!
//! A [`Fact`] abstracts the *structure* of a container (vector or
//! matrix) as an nnz interval `[lo, hi]` over a capacity `dim`, plus
//! three "provably" flags (iso-valued, diagonal, structural-only).
//! The concretization is
//!
//! ```text
//!   γ([lo,hi], flags) = { containers c : lo ≤ nvals(c) ≤ hi
//!                         ∧ (flag set ⇒ c has the property) }
//! ```
//!
//! so `lo = 0, hi = dim`, all flags clear is ⊤ (no information) and a
//! cleared flag means *unknown*, never *false*. The partial order is
//! interval containment with flag implication; [`Fact::join`] is the
//! least upper bound. The op-DAG is acyclic and visited in enqueue
//! (topological) order, so no widening is needed — every analysis run
//! is a single forward pass.
//!
//! Transfer functions here mirror the GraphBLAS write semantics
//! implemented in `gbtl::write`: every operation computes `T`, merges
//! it with the target into `Z` (union under an accumulator, else
//! `Z = T`), then finalizes per position — masked-in positions take
//! `Z`'s entry *or are deleted*, masked-out positions keep `C`'s entry
//! unless `REPLACE` drops them. Crucially nnz is **value-independent**
//! in this substrate: eWiseAdd keeps stored zeros and semiring products
//! are always stored, so the intervals below are sound for any operand
//! values, not just "interesting" ones.
//!
//! This module also carries the plan-time kernel *hints* the runtime's
//! sparsity pass derives from tight facts (see [`arm_spmv_hint`]) and
//! the weak-keyed transpose cache `core::dispatch` uses to honor an
//! SpMV direction hint that disagrees with the operand's stored
//! orientation.

use std::cell::Cell;
use std::fmt;
use std::sync::{Arc, Mutex, Weak};

pub use gbtl::{MxmFamily, SpmvDirection};

use crate::dtype::DType;
use crate::store::{MatrixStore, VectorStore};

/// An abstract structure fact: what the analysis knows about one
/// container's sparsity pattern without looking at its values.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fact {
    /// Least possible number of stored entries.
    pub lo: usize,
    /// Greatest possible number of stored entries.
    pub hi: usize,
    /// Container capacity: vector size, or matrix `nrows × ncols`.
    pub dim: usize,
    /// Provably iso-valued: every stored entry holds the same value
    /// (vacuously true when at most one entry can be stored).
    pub iso: bool,
    /// Provably diagonal (matrices): every stored entry is at `(i, i)`.
    pub diagonal: bool,
    /// Provably structural-only: the values carry no information beyond
    /// the pattern (boolean containers).
    pub structural_only: bool,
}

impl Fact {
    /// ⊤ — nothing known beyond the capacity.
    pub fn top(dim: usize) -> Fact {
        Fact {
            lo: 0,
            hi: dim,
            dim,
            iso: false,
            diagonal: false,
            structural_only: false,
        }
    }

    /// Exact entry count (a concrete container's abstraction).
    pub fn exact(nvals: usize, dim: usize) -> Fact {
        Fact {
            lo: nvals,
            hi: nvals,
            ..Fact::top(dim)
        }
    }

    /// Provably empty.
    pub fn empty(dim: usize) -> Fact {
        Fact {
            iso: true,
            diagonal: true,
            ..Fact::exact(0, dim)
        }
    }

    /// The output is provably empty (no stored entries possible).
    pub fn provably_empty(&self) -> bool {
        self.hi == 0
    }

    /// Every position provably holds an entry.
    pub fn provably_full(&self) -> bool {
        self.dim > 0 && self.lo == self.dim
    }

    /// Upper bound on density `nvals / dim` (1.0 for a 0-capacity
    /// container, matching the runtime probe's convention).
    pub fn density_hi(&self) -> f64 {
        if self.dim == 0 {
            1.0
        } else {
            self.hi as f64 / self.dim as f64
        }
    }

    /// Lower bound on density `nvals / dim`.
    pub fn density_lo(&self) -> f64 {
        if self.dim == 0 {
            1.0
        } else {
            self.lo as f64 / self.dim as f64
        }
    }

    /// Least upper bound: interval union, flags only where both sides
    /// prove them.
    pub fn join(&self, other: &Fact) -> Fact {
        debug_assert_eq!(self.dim, other.dim, "join of facts over different dims");
        Fact {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            dim: self.dim,
            iso: self.iso && other.iso,
            diagonal: self.diagonal && other.diagonal,
            structural_only: self.structural_only && other.structural_only,
        }
    }

    /// Clamp the interval to `[0, dim]` (transfer functions may
    /// overshoot before clamping).
    fn clamped(mut self) -> Fact {
        self.hi = self.hi.min(self.dim);
        self.lo = self.lo.min(self.hi);
        self
    }

    /// `true` when a concrete entry count is inside this fact's
    /// interval — the membership half of `value ∈ γ(fact)` that the
    /// debug-mode checked interpretation validates (the flags are
    /// advisory and not checked; see DESIGN.md §4j).
    pub fn admits(&self, nvals: usize) -> bool {
        self.lo <= nvals && nvals <= self.hi
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nnz=[{},{}]", self.lo, self.hi)?;
        if self.provably_empty() {
            write!(f, " empty")?;
        } else if self.provably_full() {
            write!(f, " full")?;
        } else {
            write!(f, " d≤{:.2}", self.density_hi())?;
        }
        if self.iso && !self.provably_empty() {
            write!(f, " iso")?;
        }
        if self.diagonal && !self.provably_empty() {
            write!(f, " diag")?;
        }
        if self.structural_only {
            write!(f, " struct")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Leaf abstraction: a resolved container's exact fact.
// ---------------------------------------------------------------------

/// Abstract a concrete vector: exact nnz (an O(1) read), iso when at
/// most one entry is stored, structural-only for boolean dtypes.
pub fn of_vector(v: &VectorStore) -> Fact {
    let nvals = v.nvals();
    Fact {
        iso: nvals <= 1,
        structural_only: v.dtype() == DType::Bool,
        ..Fact::exact(nvals, v.size())
    }
}

/// Abstract a concrete matrix. The diagonal flag is decided by an
/// O(nnz) pattern scan, gated to matrices that could *possibly* be
/// diagonal (`nvals ≤ min(nrows, ncols)`) so dense operands never pay
/// it.
pub fn of_matrix(m: &MatrixStore) -> Fact {
    let nvals = m.nvals();
    let (r, c) = (m.nrows(), m.ncols());
    let diagonal = nvals <= r.min(c) && m.extract_triples_dyn().iter().all(|(i, j, _)| i == j);
    Fact {
        iso: nvals <= 1,
        diagonal,
        structural_only: m.dtype() == DType::Bool,
        ..Fact::exact(nvals, r.saturating_mul(c))
    }
}

// ---------------------------------------------------------------------
// Transfer functions for the intermediate result T.
// ---------------------------------------------------------------------

/// `T = u ⊕ v` (element-wise union). The pattern is the union of the
/// operand patterns — stored zeros are kept, so the bounds are exact
/// set-union bounds.
pub fn ewise_add(u: &Fact, v: &Fact) -> Fact {
    let dim = u.dim;
    Fact {
        lo: u.lo.max(v.lo),
        hi: u.hi.saturating_add(v.hi),
        dim,
        // Union merges values from both operands; iso survives only
        // when one side contributes nothing.
        iso: (u.provably_empty() && v.iso) || (v.provably_empty() && u.iso),
        diagonal: u.diagonal && v.diagonal,
        structural_only: u.structural_only && v.structural_only,
    }
    .clamped()
}

/// `T = u ⊗ v` (element-wise intersection).
pub fn ewise_mult(u: &Fact, v: &Fact) -> Fact {
    let dim = u.dim;
    Fact {
        lo: (u.lo + v.lo).saturating_sub(dim),
        hi: u.hi.min(v.hi),
        dim,
        iso: u.iso && v.iso,
        // Intersection with a diagonal pattern is diagonal.
        diagonal: u.diagonal || v.diagonal,
        structural_only: u.structural_only && v.structural_only,
    }
    .clamped()
}

/// `T = A ⊕.⊗ u` — each output row holds an entry iff its row of `A`
/// collides with `u`. At most one entry per stored entry of `A`; every
/// row populated when `A` is provably full and `u` provably non-empty.
pub fn mxv(a: &Fact, nrows: usize, u: &Fact) -> Fact {
    let hi = if a.provably_empty() || u.provably_empty() {
        0
    } else {
        nrows.min(a.hi)
    };
    let lo = if a.provably_full() && u.lo >= 1 {
        nrows
    } else {
        0
    };
    Fact {
        lo,
        hi,
        structural_only: a.structural_only && u.structural_only,
        ..Fact::top(nrows)
    }
    .clamped()
}

/// `T = uᵀ ⊕.⊗ A` — [`mxv`] of the transpose: bounds over `ncols`.
pub fn vxm(u: &Fact, a: &Fact, ncols: usize) -> Fact {
    mxv(a, ncols, u)
}

/// `T = A ⊕.⊗ B`. Every output entry needs a witness pair (one stored
/// entry of `A` in its row, one of `B` in its column), so
/// `nnz(T) ≤ nnz(A)·nnz(B)`; full operands with a non-trivial inner
/// dimension populate every output position.
pub fn mxm(a: &Fact, b: &Fact, nrows: usize, ncols: usize, inner: usize) -> Fact {
    let dim = nrows.saturating_mul(ncols);
    let hi = if a.provably_empty() || b.provably_empty() {
        0
    } else {
        dim.min(a.hi.saturating_mul(b.hi))
    };
    let lo = if a.provably_full() && b.provably_full() && inner > 0 {
        dim
    } else {
        0
    };
    Fact {
        lo,
        hi,
        structural_only: a.structural_only && b.structural_only,
        ..Fact::top(dim)
    }
    .clamped()
}

/// `T = f(u)` — apply is pattern-preserving: same entry count, and an
/// iso/diagonal pattern stays iso/diagonal (`f` maps the single value
/// to a single value). Values change, so structural-only is dropped
/// unless the operand already carried it.
pub fn apply(u: &Fact) -> Fact {
    *u
}

/// `T = u(ix)` with `k = |ix|`. Indices may repeat, so `k` — not
/// `u.hi` — bounds the count; a provably-full operand yields an entry
/// at every extracted position.
pub fn extract(u: &Fact, k: usize) -> Fact {
    let hi = if u.provably_empty() { 0 } else { k };
    let lo = if u.provably_full() { k } else { 0 };
    Fact {
        lo,
        hi,
        iso: u.iso,
        structural_only: u.structural_only,
        ..Fact::top(k)
    }
    .clamped()
}

/// `T = ⊕ A(i,:)` — row reduction: one entry per non-empty row.
pub fn reduce_rows(a: &Fact, nrows: usize, ncols: usize) -> Fact {
    let lo = if a.provably_full() && ncols > 0 {
        nrows
    } else {
        0
    };
    Fact {
        lo,
        hi: if a.provably_empty() {
            0
        } else {
            nrows.min(a.hi)
        },
        structural_only: a.structural_only,
        ..Fact::top(nrows)
    }
    .clamped()
}

/// `T = Aᵀ` — transposition permutes positions: nnz, iso, diagonal and
/// structural-only are all preserved.
pub fn transpose(a: &Fact, nrows: usize, ncols: usize) -> Fact {
    let _ = (nrows, ncols);
    *a
}

// ---------------------------------------------------------------------
// The write-back: C⟨M, z⟩ = C ⊙ T.
// ---------------------------------------------------------------------

/// Abstract the full GraphBLAS write. `t` is the intermediate result's
/// fact, `target` the output container's pre-write fact, `mask` the
/// mask's fact with its complement flag, `accum` whether an accumulator
/// merges `T` into `C`, `replace` the REPLACE flag.
///
/// Soundness mirrors `gbtl::write`: with an accumulator
/// `Z = C ∪ T` (union merge), else `Z = T`; then for the allowed set
/// `A` of the mask, `nnz(out) = |pattern(Z) ∩ A| + |pattern(C) ∩ Aᶜ|`
/// when merging (masked-in absence deletes!), and
/// `nnz(out) = |pattern(Z) ∩ A|` under REPLACE. The allowed count of a
/// plain structural mask is `[0, nnz(M)]` — stored entries may still be
/// falsy — and of a complemented one `[dim − nnz(M), dim]`.
pub fn write_back(
    t: &Fact,
    target: &Fact,
    mask: Option<(&Fact, bool)>,
    accum: bool,
    replace: bool,
) -> Fact {
    let dim = t.dim;
    // Z = C ∪ T under an accumulator, else T.
    let z = if accum {
        Fact {
            lo: target.lo.max(t.lo),
            hi: target.hi.saturating_add(t.hi).min(dim),
            dim,
            iso: false,
            diagonal: target.diagonal && t.diagonal,
            structural_only: target.structural_only && t.structural_only,
        }
    } else {
        *t
    };
    let Some((m, complemented)) = mask else {
        // No mask: the finalize step installs Z verbatim.
        return z.clamped();
    };
    // Allowed-count interval |A| of the mask.
    let (al, ah) = if complemented {
        (dim - m.hi.min(dim), dim)
    } else {
        (0, m.hi.min(dim))
    };
    // |pattern(Z) ∩ A| by inclusion–exclusion.
    let in_lo = (z.lo + al).saturating_sub(dim);
    let in_hi = z.hi.min(ah);
    // |pattern(C) ∩ Aᶜ| — survivors outside the mask (dropped by
    // REPLACE).
    let (keep_lo, keep_hi) = if replace {
        (0, 0)
    } else {
        (target.lo.saturating_sub(ah), target.hi.min(dim - al))
    };
    // Flags survive only when the result is provably a subset of Z's
    // entries (no C survivors possible).
    let subset_of_z = replace || target.provably_empty();
    Fact {
        lo: in_lo + keep_lo,
        hi: in_hi.saturating_add(keep_hi),
        dim,
        iso: z.iso && subset_of_z,
        diagonal: z.diagonal && subset_of_z,
        structural_only: z.structural_only && subset_of_z,
    }
    .clamped()
}

/// Abstract a whole-container scalar assign (`C[:] = s` /
/// `C[:, :] = s` with no region restriction): every position receives
/// the same value, so the result is provably full and iso. The masked /
/// accumulated variants go through [`write_back`] with this as `t`.
pub fn full_iso(dim: usize) -> Fact {
    Fact {
        lo: dim,
        hi: dim,
        dim,
        iso: true,
        diagonal: false,
        structural_only: false,
    }
}

// ---------------------------------------------------------------------
// Plan-time kernel hints (consumed by core::kernels).
// ---------------------------------------------------------------------

thread_local! {
    static SPMV_HINT: Cell<Option<SpmvDirection>> = const { Cell::new(None) };
    static MXM_HINT: Cell<Option<MxmFamily>> = const { Cell::new(None) };
}

/// Arm a one-shot SpMV direction hint for the next `mxv`/`vxm` kernel
/// dispatched on this thread (the runtime's sparsity pass arms one per
/// node right before running it).
pub fn arm_spmv_hint(dir: SpmvDirection) {
    SPMV_HINT.with(|h| h.set(Some(dir)));
}

/// Take (and clear) the calling thread's SpMV direction hint.
pub fn take_spmv_hint() -> Option<SpmvDirection> {
    SPMV_HINT.with(|h| h.take())
}

/// Arm a one-shot masked-SpGEMM family hint for the next `mxm` kernel
/// dispatched on this thread.
pub fn arm_mxm_hint(family: MxmFamily) {
    MXM_HINT.with(|h| h.set(Some(family)));
}

/// Take (and clear) the calling thread's masked-SpGEMM family hint.
pub fn take_mxm_hint() -> Option<MxmFamily> {
    MXM_HINT.with(|h| h.take())
}

/// Clear both hints (called after a node runs so an unconsumed hint —
/// e.g. for a node whose kernel never reached selection — cannot leak
/// into the next node on this pool thread).
pub fn clear_hints() {
    SPMV_HINT.with(|h| h.set(None));
    MXM_HINT.with(|h| h.set(None));
}

// ---------------------------------------------------------------------
// Weak-keyed transpose cache.
// ---------------------------------------------------------------------

static TRANSPOSE_CACHE: Mutex<Vec<(Weak<MatrixStore>, Arc<MatrixStore>)>> = Mutex::new(Vec::new());
const TRANSPOSE_CACHE_CAP: usize = 32;

fn cache_guard() -> std::sync::MutexGuard<'static, Vec<(Weak<MatrixStore>, Arc<MatrixStore>)>> {
    match TRANSPOSE_CACHE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The transpose of `a`, memoized per store identity so a BFS loop that
/// pulls the same graph every dense ply pays the counting sort once.
/// Entries are weak-keyed: a dropped source store frees its transpose
/// on the next lookup. Bounded at `TRANSPOSE_CACHE_CAP` sources
/// (oldest evicted first).
pub fn cached_transpose(a: &Arc<MatrixStore>) -> Arc<MatrixStore> {
    {
        let mut cache = cache_guard();
        cache.retain(|(w, _)| w.strong_count() > 0);
        if let Some((_, t)) = cache
            .iter()
            .find(|(w, _)| std::ptr::eq(w.as_ptr(), Arc::as_ptr(a)))
        {
            return Arc::clone(t);
        }
    }
    // Compute outside the lock: a duplicate race costs one extra
    // transpose, never a deadlock or a stalled pool thread.
    let t = Arc::new(a.transposed());
    let mut cache = cache_guard();
    if let Some((_, cached)) = cache
        .iter()
        .find(|(w, _)| std::ptr::eq(w.as_ptr(), Arc::as_ptr(a)))
    {
        return Arc::clone(cached);
    }
    if cache.len() >= TRANSPOSE_CACHE_CAP {
        cache.remove(0);
    }
    cache.push((Arc::downgrade(a), Arc::clone(&t)));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_basics() {
        let t = Fact::top(10);
        assert!(!t.provably_empty() && !t.provably_full());
        assert!(t.admits(0) && t.admits(10));
        let e = Fact::empty(10);
        assert!(e.provably_empty() && e.iso && e.diagonal);
        let f = full_iso(10);
        assert!(f.provably_full() && f.iso);
        let j = e.join(&f);
        assert_eq!((j.lo, j.hi), (0, 10));
        assert!(j.iso && !j.diagonal);
    }

    #[test]
    fn ewise_bounds() {
        let u = Fact::exact(3, 10);
        let v = Fact::exact(4, 10);
        let add = ewise_add(&u, &v);
        assert_eq!((add.lo, add.hi), (4, 7));
        let mult = ewise_mult(&u, &v);
        assert_eq!((mult.lo, mult.hi), (0, 3));
        // Dense-side intersection lower bound: 8 + 9 - 10 = 7.
        let du = Fact::exact(8, 10);
        let dv = Fact::exact(9, 10);
        assert_eq!(ewise_mult(&du, &dv).lo, 7);
    }

    #[test]
    fn mxv_and_mxm_bounds() {
        let a = Fact::exact(5, 12); // 3×4 matrix, 5 entries
        let u = Fact::exact(2, 4);
        let t = mxv(&a, 3, &u);
        assert_eq!((t.lo, t.hi), (0, 3));
        let empty_u = Fact::empty(4);
        assert!(mxv(&a, 3, &empty_u).provably_empty());
        let full_a = full_iso(12);
        let nonempty = Fact {
            lo: 1,
            ..Fact::top(4)
        };
        assert!(mxv(&full_a, 3, &nonempty).provably_full());

        let b = Fact::exact(2, 12);
        let p = mxm(&a, &b, 3, 3, 4);
        assert_eq!((p.lo, p.hi), (0, 9));
        let tiny = mxm(&Fact::exact(1, 12), &Fact::exact(1, 12), 3, 3, 4);
        assert_eq!(tiny.hi, 1);
    }

    #[test]
    fn write_back_mask_replace_accum() {
        let dim = 10;
        let t = Fact::exact(6, dim);
        let c = Fact::exact(4, dim);
        let m = Fact::exact(3, dim);
        // Plain mask, REPLACE: at most min(6, 3) survive, possibly 0
        // (stored-false mask entries allow nothing).
        let out = write_back(&t, &c, Some((&m, false)), false, true);
        assert_eq!((out.lo, out.hi), (0, 3));
        // Plain mask, merge: up to 3 from Z plus up to 4 C survivors;
        // at least one C entry provably lands outside the ≤3 allowed
        // positions and survives.
        let out = write_back(&t, &c, Some((&m, false)), false, false);
        assert_eq!((out.lo, out.hi), (1, 7));
        // Complemented mask, REPLACE: allowed ∈ [7, 10].
        let out = write_back(&t, &c, Some((&m, true)), false, true);
        assert_eq!((out.lo, out.hi), (3, 6));
        // Accumulator union then unmasked write.
        let out = write_back(&t, &c, None, true, false);
        assert_eq!((out.lo, out.hi), (6, 10));
        // Empty T under no mask: provably empty out.
        let out = write_back(&Fact::empty(dim), &c, None, false, false);
        assert!(out.provably_empty());
        // ... but merging under a mask keeps C survivors (at least the
        // one provably outside the allowed positions).
        let out = write_back(&Fact::empty(dim), &c, Some((&m, false)), false, false);
        assert_eq!((out.lo, out.hi), (1, 4));
    }

    #[test]
    fn flags_preserved_where_sound() {
        let dim = 10;
        let iso_t = Fact {
            iso: true,
            ..Fact::exact(5, dim)
        };
        let m = Fact::exact(3, dim);
        let c = Fact::exact(4, dim);
        // REPLACE keeps only Z entries → iso survives.
        assert!(write_back(&iso_t, &c, Some((&m, false)), false, true).iso);
        // Merge may keep C entries → iso dropped.
        assert!(!write_back(&iso_t, &c, Some((&m, false)), false, false).iso);
        // Apply preserves the pattern flags.
        assert!(apply(&iso_t).iso);
    }

    #[test]
    fn hints_are_one_shot() {
        assert_eq!(take_spmv_hint(), None);
        arm_spmv_hint(SpmvDirection::Push);
        assert_eq!(take_spmv_hint(), Some(SpmvDirection::Push));
        assert_eq!(take_spmv_hint(), None);
        arm_mxm_hint(MxmFamily::MaskedDot);
        clear_hints();
        assert_eq!(take_mxm_hint(), None);
    }

    #[test]
    fn transpose_cache_hits_by_identity() {
        let m = Arc::new(
            MatrixStore::from_dyn_triples(
                2,
                3,
                &[(0, 2, crate::value::DynScalar::Int64(7))],
                DType::Int64,
            )
            .unwrap(),
        );
        let t1 = cached_transpose(&m);
        let t2 = cached_transpose(&m);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!((t1.nrows(), t1.ncols()), (3, 2));
        assert_eq!(t1.get(2, 0).map(|v| v.as_i64()), Some(7));
        // A distinct store with equal contents is a different key.
        let m2 = Arc::new(
            MatrixStore::from_dyn_triples(
                2,
                3,
                &[(0, 2, crate::value::DynScalar::Int64(7))],
                DType::Int64,
            )
            .unwrap(),
        );
        let t3 = cached_transpose(&m2);
        assert!(!Arc::ptr_eq(&t1, &t3));
    }
}
