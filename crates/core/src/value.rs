//! Dynamically-typed scalars — the values Python hands the DSL.

use gbtl::Scalar;

use crate::dtype::DType;

/// A runtime-typed scalar value.
#[derive(Copy, Clone, Debug, PartialEq, PartialOrd)]
pub enum DynScalar {
    /// `bool`
    Bool(bool),
    /// `int8_t`
    Int8(i8),
    /// `int16_t`
    Int16(i16),
    /// `int32_t`
    Int32(i32),
    /// `int64_t`
    Int64(i64),
    /// `uint8_t`
    UInt8(u8),
    /// `uint16_t`
    UInt16(u16),
    /// `uint32_t`
    UInt32(u32),
    /// `uint64_t`
    UInt64(u64),
    /// `float`
    Fp32(f32),
    /// `double`
    Fp64(f64),
}

impl DynScalar {
    /// The value's dtype tag.
    pub fn dtype(self) -> DType {
        match self {
            DynScalar::Bool(_) => DType::Bool,
            DynScalar::Int8(_) => DType::Int8,
            DynScalar::Int16(_) => DType::Int16,
            DynScalar::Int32(_) => DType::Int32,
            DynScalar::Int64(_) => DType::Int64,
            DynScalar::UInt8(_) => DType::UInt8,
            DynScalar::UInt16(_) => DType::UInt16,
            DynScalar::UInt32(_) => DType::UInt32,
            DynScalar::UInt64(_) => DType::UInt64,
            DynScalar::Fp32(_) => DType::Fp32,
            DynScalar::Fp64(_) => DType::Fp64,
        }
    }

    /// Lossy view as `f64` (C cast semantics).
    pub fn as_f64(self) -> f64 {
        match self {
            DynScalar::Bool(v) => v.to_f64(),
            DynScalar::Int8(v) => v.to_f64(),
            DynScalar::Int16(v) => v.to_f64(),
            DynScalar::Int32(v) => v.to_f64(),
            DynScalar::Int64(v) => v.to_f64(),
            DynScalar::UInt8(v) => v.to_f64(),
            DynScalar::UInt16(v) => v.to_f64(),
            DynScalar::UInt32(v) => v.to_f64(),
            DynScalar::UInt64(v) => v.to_f64(),
            DynScalar::Fp32(v) => v.to_f64(),
            DynScalar::Fp64(v) => v,
        }
    }

    /// Lossy view as `i64`.
    pub fn as_i64(self) -> i64 {
        match self {
            DynScalar::Bool(v) => v.to_i64(),
            DynScalar::Int8(v) => v.to_i64(),
            DynScalar::Int16(v) => v.to_i64(),
            DynScalar::Int32(v) => v.to_i64(),
            DynScalar::Int64(v) => v,
            DynScalar::UInt8(v) => v.to_i64(),
            DynScalar::UInt16(v) => v.to_i64(),
            DynScalar::UInt32(v) => v.to_i64(),
            DynScalar::UInt64(v) => v.to_i64(),
            DynScalar::Fp32(v) => v.to_i64(),
            DynScalar::Fp64(v) => v.to_i64(),
        }
    }

    /// Truthiness (mask coercion).
    pub fn as_bool(self) -> bool {
        match self {
            DynScalar::Bool(v) => v,
            other => other.as_f64() != 0.0,
        }
    }

    /// Extract as a concrete scalar type, casting as needed.
    pub fn to_scalar<T: Scalar>(self) -> T {
        if self.dtype().is_float() {
            T::from_f64(self.as_f64())
        } else {
            T::from_i64(self.as_i64())
        }
    }

    /// Cast to another dtype (C cast semantics), preserving the value
    /// class where possible.
    pub fn cast(self, to: DType) -> DynScalar {
        macro_rules! cast_to {
            ($variant:ident, $t:ty) => {
                DynScalar::$variant(self.to_scalar::<$t>())
            };
        }
        match to {
            DType::Bool => cast_to!(Bool, bool),
            DType::Int8 => cast_to!(Int8, i8),
            DType::Int16 => cast_to!(Int16, i16),
            DType::Int32 => cast_to!(Int32, i32),
            DType::Int64 => cast_to!(Int64, i64),
            DType::UInt8 => cast_to!(UInt8, u8),
            DType::UInt16 => cast_to!(UInt16, u16),
            DType::UInt32 => cast_to!(UInt32, u32),
            DType::UInt64 => cast_to!(UInt64, u64),
            DType::Fp32 => cast_to!(Fp32, f32),
            DType::Fp64 => cast_to!(Fp64, f64),
        }
    }
}

macro_rules! dyn_from {
    ($t:ty, $variant:ident) => {
        impl From<$t> for DynScalar {
            fn from(v: $t) -> Self {
                DynScalar::$variant(v)
            }
        }
    };
}

dyn_from!(bool, Bool);
dyn_from!(i8, Int8);
dyn_from!(i16, Int16);
dyn_from!(i32, Int32);
dyn_from!(i64, Int64);
dyn_from!(u8, UInt8);
dyn_from!(u16, UInt16);
dyn_from!(u32, UInt32);
dyn_from!(u64, UInt64);
dyn_from!(f32, Fp32);
dyn_from!(f64, Fp64);

impl std::fmt::Display for DynScalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynScalar::Bool(v) => write!(f, "{v}"),
            DynScalar::Int8(v) => write!(f, "{v}"),
            DynScalar::Int16(v) => write!(f, "{v}"),
            DynScalar::Int32(v) => write!(f, "{v}"),
            DynScalar::Int64(v) => write!(f, "{v}"),
            DynScalar::UInt8(v) => write!(f, "{v}"),
            DynScalar::UInt16(v) => write!(f, "{v}"),
            DynScalar::UInt32(v) => write!(f, "{v}"),
            DynScalar::UInt64(v) => write!(f, "{v}"),
            DynScalar::Fp32(v) => write!(f, "{v}"),
            DynScalar::Fp64(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_and_dtype() {
        assert_eq!(DynScalar::from(3i32).dtype(), DType::Int32);
        assert_eq!(DynScalar::from(true).dtype(), DType::Bool);
        assert_eq!(DynScalar::from(1.5f64).dtype(), DType::Fp64);
    }

    #[test]
    fn views() {
        assert_eq!(DynScalar::from(3i32).as_f64(), 3.0);
        assert_eq!(DynScalar::from(2.9f64).as_i64(), 2);
        assert!(DynScalar::from(-1i8).as_bool());
        assert!(!DynScalar::from(0u64).as_bool());
    }

    #[test]
    fn casts_preserve_float_values_through_f64_path() {
        let v = DynScalar::from(0.5f64);
        // Casting through the integer path would truncate to 0; the
        // float path must not.
        assert_eq!(v.cast(DType::Fp32), DynScalar::Fp32(0.5));
        assert_eq!(v.cast(DType::Int32), DynScalar::Int32(0));
        assert_eq!(v.cast(DType::Bool), DynScalar::Bool(true));
    }

    #[test]
    fn to_scalar() {
        assert_eq!(DynScalar::from(300i64).to_scalar::<u8>(), 44u8);
        assert_eq!(DynScalar::from(2.5f64).to_scalar::<f32>(), 2.5f32);
        assert_eq!(DynScalar::from(true).to_scalar::<i64>(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(DynScalar::from(42u16).to_string(), "42");
        assert_eq!(DynScalar::from(false).to_string(), "false");
    }
}
