//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the slice of the rand 0.8 API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` —
//! backed by a SplitMix64-seeded xoshiro256** generator. Determinism
//! per seed is the only contract callers rely on (workload generators
//! assert self-determinism, not any particular stream), so matching the
//! upstream bit streams is a non-goal.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable pseudo-random generator (xoshiro256**), standing in for
/// `rand::rngs::StdRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// `rand::SeedableRng` — only the `seed_from_u64` entry point is used
/// here.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden xoshiro state; SplitMix64
        // cannot produce four zero outputs in a row, but keep the guard
        // explicit.
        if s == [0; 4] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl StdRng {
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible uniformly by [`Rng::gen`] (the `Standard`
/// distribution of upstream rand).
pub trait Rand: Sized {
    /// Draw one value.
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Rand for u64 {
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Rand for u32 {
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Rand for bool {
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Rand for f64 {
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Rand for i64 {
    fn rand<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let frac = f64::rand(rng);
        self.start + frac * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        // Inclusive upper bound: scale a [0, 1] fraction.
        let frac = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + frac * (end - start)
    }
}

/// `rand::Rng` — uniform draws and range sampling.
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw of `T` (`Standard` distribution).
    fn gen<T: Rand>(&mut self) -> T
    where
        Self: Sized,
    {
        T::rand(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A biased coin flip.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::rand(self) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// `rand::rngs` module shape.
pub mod rngs {
    pub use crate::StdRng;
    /// Upstream's small fast generator; here the same engine.
    pub type SmallRng = StdRng;
}

/// `rand::prelude` shape.
pub mod prelude {
    pub use crate::{Rng, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(f64::EPSILON..=1.0);
            assert!(f > 0.0 && f <= 1.0);
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn covers_full_int_range_eventually() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.gen_range(0..4usize));
        }
        assert_eq!(seen.len(), 4);
    }
}
