//! Request-scoped observability plumbing: ID minting, the slow-query
//! threshold, and the `EXPLAIN` capture store.
//!
//! Three small pieces that together make a single past request
//! diagnosable after the fact:
//!
//! * **Request IDs** — one process-wide monotone counter, minted per
//!   request line at admission and echoed on every `OK`/`ERR` frame as
//!   the trailing `ID rN` header token. The ID is the join key across
//!   every surface: the flight-recorder ring (`TAIL`/`SLOW`), the
//!   `Cat::Serve` span label, the runtime's tagged
//!   [`pygb_runtime::trace_report_for`] ring, and this module's
//!   `EXPLAIN` store.
//! * **Slow threshold** — `PYGB_SLOW_NS` (read once at first use) with
//!   a runtime override via the `SLOW THRESHOLD <ns>` verb. Mirrored
//!   into every metrics snapshot as the `tunables/slow_ns` counter so a
//!   scrape shows the threshold actually in effect.
//! * **Explain store** — requests whose execution exceeds the threshold
//!   capture their full `plan()` rendering (raw vs optimized DAG,
//!   sparsity facts, kernel hints) plus the per-node measured-ns trace
//!   report, into a bounded ring retrievable with `EXPLAIN rN` until
//!   evicted by newer captures.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// How many slow-query captures are retained; older entries are
/// evicted. Each entry holds two rendered strings (plan + report), so
/// the store is bounded by roughly `CAP × plan size`.
pub const EXPLAIN_CAP: usize = 256;

/// Default slow threshold when `PYGB_SLOW_NS` is unset: 100 ms.
pub const DEFAULT_SLOW_NS: u64 = 100_000_000;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Mint the next request ID. Monotone process-wide; rendered `rN` on
/// the wire.
pub fn next_request_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

fn slow_ns_cell() -> &'static AtomicU64 {
    static SLOW_NS: OnceLock<AtomicU64> = OnceLock::new();
    SLOW_NS.get_or_init(|| {
        let ns = std::env::var("PYGB_SLOW_NS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SLOW_NS);
        mirror_slow_ns(ns);
        AtomicU64::new(ns)
    })
}

/// Publish the threshold into the metrics registry (`tunables/slow_ns`)
/// so snapshots and the Prometheus exposition carry the live value.
fn mirror_slow_ns(ns: u64) {
    let c = pygb_obs::registry().counter("tunables/slow_ns");
    c.reset();
    c.add(ns);
}

/// The slow-query threshold currently in effect, nanoseconds.
pub fn slow_ns() -> u64 {
    slow_ns_cell().load(Ordering::Relaxed)
}

/// Override the slow-query threshold at runtime (the
/// `SLOW THRESHOLD <ns>` verb). Takes effect for requests completing
/// after the call.
pub fn set_slow_ns(ns: u64) {
    slow_ns_cell().store(ns, Ordering::Relaxed);
    mirror_slow_ns(ns);
}

// ---------------------------------------------------------------------
// Plan capture: armed per worker thread around one request.
// ---------------------------------------------------------------------

thread_local! {
    /// `Some` while a serve worker wants the next flushed DAG's plan
    /// rendering; the expression path fills the inner option between
    /// enqueue and flush.
    static PLAN_CAPTURE: std::cell::RefCell<Option<Option<String>>> =
        const { std::cell::RefCell::new(None) };
}

/// Arm plan capture on the calling worker thread: the next
/// [`offer_plan`] before [`take_captured_plan`] stores its rendering.
pub fn arm_plan_capture() {
    PLAN_CAPTURE.with(|c| *c.borrow_mut() = Some(None));
}

/// If the calling thread armed plan capture, render the current pending
/// op-DAG via `render` and store it. Called by the expression path
/// between enqueue and flush — the only window where `plan()` can still
/// see the request's nodes. A no-op on unarmed threads (plain library
/// use, tests), so the render closure never runs outside serving.
pub fn offer_plan(render: impl FnOnce() -> String) {
    PLAN_CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        if let Some(captured) = slot.as_mut() {
            *captured = Some(render());
        }
    });
}

/// Disarm capture and take whatever plan rendering was offered.
pub fn take_captured_plan() -> Option<String> {
    PLAN_CAPTURE.with(|c| c.borrow_mut().take().flatten())
}

// ---------------------------------------------------------------------
// The EXPLAIN store.
// ---------------------------------------------------------------------

/// One slow-query capture, rendered for `EXPLAIN rN`.
#[derive(Clone, Debug)]
pub struct ExplainEntry {
    /// The request ID.
    pub id: u64,
    /// Tenant that issued the request.
    pub tenant: String,
    /// Wire verb.
    pub verb: String,
    /// Nanoseconds queued before a worker picked the request up.
    pub queue_wait_ns: u64,
    /// Nanoseconds executing on the worker.
    pub exec_ns: u64,
    /// The pre-flush `plan()` rendering (raw vs optimized DAG, sparsity
    /// facts, kernel hints), when the request's path could capture one
    /// (`EXPR`; algorithm verbs flush inside library code).
    pub plan: Option<String>,
    /// The per-node measured-ns trace report of the request's last
    /// flush, when one was published.
    pub report: Option<String>,
}

impl ExplainEntry {
    /// Render the full `EXPLAIN` payload.
    pub fn render(&self) -> String {
        let mut out = format!(
            "request r{} tenant={} verb={} queue_wait={}ns exec={}ns\n",
            self.id, self.tenant, self.verb, self.queue_wait_ns, self.exec_ns
        );
        match &self.plan {
            Some(plan) => {
                out.push_str("--- plan (captured pre-flush) ---\n");
                out.push_str(plan);
                if !plan.ends_with('\n') {
                    out.push('\n');
                }
            }
            None => out.push_str(
                "--- plan unavailable (request flushed inside library code; \
                 per-node timings below cover its last flush) ---\n",
            ),
        }
        match &self.report {
            Some(report) => {
                out.push_str("--- execution (per-node measured ns) ---\n");
                out.push_str(report);
                if !report.ends_with('\n') {
                    out.push('\n');
                }
            }
            None => out.push_str("--- no execution report published ---\n"),
        }
        out
    }
}

static EXPLAINS: Mutex<VecDeque<ExplainEntry>> = Mutex::new(VecDeque::new());

/// Store one slow-query capture, evicting the oldest past
/// [`EXPLAIN_CAP`]. Re-capturing an ID replaces the earlier entry.
pub fn store_explain(entry: ExplainEntry) {
    let mut ring = match EXPLAINS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    ring.retain(|e| e.id != entry.id);
    if ring.len() >= EXPLAIN_CAP {
        ring.pop_front();
    }
    ring.push_back(entry);
}

/// Look up a capture by request ID.
pub fn get_explain(id: u64) -> Option<ExplainEntry> {
    let ring = match EXPLAINS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    ring.iter().find(|e| e.id == id).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_monotone() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }

    #[test]
    fn explain_store_evicts_and_replaces() {
        // Use ids far above anything the other tests mint.
        let base = 1_000_000_000;
        for i in 0..EXPLAIN_CAP + 10 {
            store_explain(ExplainEntry {
                id: base + i as u64,
                tenant: "t".into(),
                verb: "expr".into(),
                queue_wait_ns: 1,
                exec_ns: 2,
                plan: None,
                report: None,
            });
        }
        assert!(get_explain(base).is_none(), "oldest must be evicted");
        assert!(get_explain(base + EXPLAIN_CAP as u64 + 9).is_some());
        // Replacing an id keeps one entry with the new content.
        store_explain(ExplainEntry {
            id: base + 100,
            tenant: "t2".into(),
            verb: "query".into(),
            queue_wait_ns: 3,
            exec_ns: 4,
            plan: Some("plan".into()),
            report: Some("report".into()),
        });
        let e = get_explain(base + 100).unwrap();
        assert_eq!(e.tenant, "t2");
        let text = e.render();
        assert!(text.contains("request r1000000100"), "{text}");
        assert!(text.contains("--- plan (captured pre-flush) ---"), "{text}");
        assert!(text.contains("--- execution"), "{text}");
    }

    #[test]
    fn plan_capture_is_armed_per_thread() {
        assert!(take_captured_plan().is_none());
        // Unarmed: the render closure must not run.
        offer_plan(|| unreachable!("unarmed offer must not render"));
        arm_plan_capture();
        offer_plan(|| "the plan".to_string());
        assert_eq!(take_captured_plan().as_deref(), Some("the plan"));
        // Taking disarms.
        offer_plan(|| unreachable!("disarmed offer must not render"));
        assert!(take_captured_plan().is_none());
    }
}
