//! Request grammar and per-request execution.
//!
//! Parsing is independent of any server state; execution takes a
//! [`Catalog`] and runs entirely on the calling thread, which in the
//! server is always one worker thread — the op-DAG the nonblocking
//! runtime builds is thread-local, so a request's deferred operations
//! accumulate, fuse, and flush without ever observing another
//! request's state. Operator contexts come in through an explicit
//! [`pygb::Session`] rather than ambient thread-locals, so whatever
//! worker picks the job up sees exactly the operators the request
//! asked for.
//!
//! ## Grammar (`pygb-wire/1`)
//!
//! ```text
//! HELLO <tenant>
//! PING
//! LIST
//! STATS
//! DROP <name>
//! REGISTER <name> ER <n> <m> <seed> [SYM]
//! REGISTER <name> RMAT <scale> <edge_factor> <seed> [SYM]
//! REGISTER <name> TRIPLES <nrows> <ncols> <dtype> <i:j:v,...>
//! REGISTER <name> MM <path>
//! QUERY <graph> BFS <source>
//! QUERY <graph> SSSP <source>
//! QUERY <graph> PAGERANK [<max_iters>]
//! QUERY <graph> TRICOUNT
//! QUERY <graph> CC
//! UPDATE <graph> ADD <i:j:v,...>
//! UPDATE <graph> DEL <i:j,...>
//! EXPR <A> MXM|EWADD|EWMULT <B> [SEMIRING <name>] [BINOP <name>]
//!      [MASK <name>] [COMPLEMENT] [ACCUM <name>] [REPLACE] [INTO <name>]
//! BATCH <k>
//! TAIL <n>
//! SLOW <n>
//! SLOW THRESHOLD <ns>
//! EXPLAIN r<N>
//! METRICS
//! TRACE DUMP <path>
//! ```
//!
//! The last six are the observability verbs: `TAIL n` / `SLOW n` drain
//! the flight-recorder ring (most recent / slowest records as JSON),
//! `SLOW THRESHOLD <ns>` retunes the slow-query capture threshold at
//! runtime, `EXPLAIN rN` retrieves a slow request's captured plan and
//! per-node timings, `METRICS` emits the Prometheus text exposition of
//! every counter and histogram, and `TRACE DUMP <path>` flushes the
//! Chrome trace ring to a server-side file on demand.
//!
//! `UPDATE` is the streaming-mutation verb: the batch is absorbed into
//! a hypersparse delta over the current snapshot and published as the
//! next catalog version — in-flight readers keep the version they were
//! admitted with, and the response reports the new version's
//! descriptor. Values cast to the graph's dtype, exactly like
//! `REGISTER ... TRIPLES` ingest; deleting an absent edge is a no-op.

use pygb::prelude::*;
use pygb_algorithms as algos;
// Shadow the prelude's `Result<T>` alias: this module's fallible
// functions carry wire error codes, not `PygbError`.
use std::result::Result;
use std::sync::Arc;

use crate::catalog::{Catalog, Snapshot};
use crate::wire::{json_escape, ErrCode};

/// Entry cap on serialized result collections (levels, ranks, triples).
/// Larger results are truncated and flagged `"truncated":true`.
pub const MAX_RESULT_ENTRIES: usize = 65_536;

/// Execution failure: a structured code plus message, ready to frame.
pub type QueryError = (ErrCode, String);

fn bad(msg: impl Into<String>) -> QueryError {
    (ErrCode::BadRequest, msg.into())
}

/// Where a `REGISTER` gets its edges from.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// Erdős–Rényi G(n, m) via `pygb-io`.
    Er {
        /// Vertices.
        n: usize,
        /// Edges.
        m: usize,
        /// RNG seed.
        seed: u64,
        /// Symmetrize after generation.
        sym: bool,
    },
    /// Recursive-matrix (Graph500-style) generator.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Edges per vertex.
        edge_factor: usize,
        /// RNG seed.
        seed: u64,
        /// Symmetrize after generation.
        sym: bool,
    },
    /// Inline triple list `i:j:v,...`.
    Triples {
        /// Row count.
        nrows: usize,
        /// Column count.
        ncols: usize,
        /// Element dtype.
        dtype: DType,
        /// The `(i, j, v)` entries.
        triples: Vec<(usize, usize, f64)>,
    },
    /// Matrix Market file on the server's filesystem.
    Mm {
        /// File path.
        path: String,
    },
}

/// One graph algorithm exposed over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Level-synchronous BFS from a source vertex.
    Bfs(usize),
    /// Single-source shortest paths from a source vertex.
    Sssp(usize),
    /// PageRank, optionally capping iterations.
    PageRank(Option<usize>),
    /// Triangle count (graph is taken as given; symmetrize at REGISTER
    /// time with `SYM` for the undirected reading).
    Tricount,
    /// Connected components.
    Cc,
}

impl Algo {
    fn label(self) -> &'static str {
        match self {
            Algo::Bfs(_) => "bfs",
            Algo::Sssp(_) => "sssp",
            Algo::PageRank(_) => "pagerank",
            Algo::Tricount => "tricount",
            Algo::Cc => "cc",
        }
    }
}

/// Which binary combining form an `EXPR` uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExprOp {
    /// Matrix product `A ⊕.⊗ B`.
    Mxm,
    /// Element-wise union `A ⊕ B`.
    EwAdd,
    /// Element-wise intersection `A ⊗ B`.
    EwMult,
}

/// A raw GraphBLAS assignment `C[M, accum] = A op B` over catalog graphs.
#[derive(Clone, Debug, PartialEq)]
pub struct ExprSpec {
    /// Left operand graph name.
    pub a: String,
    /// The combining form.
    pub op: ExprOp,
    /// Right operand graph name.
    pub b: String,
    /// Optional semiring context (named, or `add:identity:mult` parts).
    pub semiring: Option<String>,
    /// Optional binary-op context (element-wise forms).
    pub binop: Option<String>,
    /// Optional mask graph name.
    pub mask: Option<String>,
    /// Complement the mask.
    pub complement: bool,
    /// Optional accumulator; switches to `accum_assign`.
    pub accum: Option<String>,
    /// Replace flag (clear unmasked positions).
    pub replace: bool,
    /// Publish the result into the catalog under this name instead of
    /// returning triples.
    pub into: Option<String>,
}

/// Edge mutations carried by one `UPDATE` request.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOps {
    /// Insert-or-overwrite `(i, j, v)` edges.
    Add(Vec<(usize, usize, f64)>),
    /// Delete `(i, j)` positions (absent edges are no-ops).
    Del(Vec<(usize, usize)>),
}

impl UpdateOps {
    /// Number of edge operations in the batch.
    pub fn len(&self) -> usize {
        match self {
            UpdateOps::Add(v) => v.len(),
            UpdateOps::Del(v) => v.len(),
        }
    }

    /// Whether the batch carries no operations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Identify the connection's tenant.
    Hello {
        /// Tenant name (admission-control bucket).
        tenant: String,
    },
    /// Liveness check.
    Ping,
    /// List catalog snapshots.
    List,
    /// Metrics snapshot.
    Stats,
    /// Remove a graph.
    Drop {
        /// Graph name.
        name: String,
    },
    /// Ingest and publish a graph.
    Register {
        /// Graph name (upsert).
        name: String,
        /// Edge source.
        source: GraphSource,
    },
    /// Run an algorithm against a snapshot.
    Query {
        /// Graph name.
        graph: String,
        /// Which algorithm.
        algo: Algo,
    },
    /// Stream an edge-mutation batch into a snapshot, publishing the
    /// next catalog version.
    Update {
        /// Graph name.
        graph: String,
        /// The mutation batch.
        ops: UpdateOps,
    },
    /// Raw GraphBLAS expression.
    Expr(ExprSpec),
    /// Header of a `k`-request batch (the lines follow).
    Batch {
        /// How many request lines follow.
        count: usize,
    },
    /// Drain the most recent flight-recorder records.
    Tail {
        /// How many records to return.
        n: usize,
    },
    /// Drain the slowest flight-recorder records.
    Slow {
        /// How many records to return.
        n: usize,
    },
    /// Retune the slow-query capture threshold.
    SlowThreshold {
        /// New threshold, nanoseconds.
        ns: u64,
    },
    /// Retrieve a slow request's captured plan and per-node timings.
    Explain {
        /// The request ID (`rN` without the prefix).
        id: u64,
    },
    /// Prometheus text exposition of the metrics registry.
    Metrics,
    /// Flush the Chrome trace ring to a server-side file.
    TraceDump {
        /// Destination path on the server's filesystem.
        path: String,
    },
}

impl Request {
    /// Whether this request does graph work and therefore goes through
    /// admission and the worker pool (vs. answered inline).
    pub fn is_heavy(&self) -> bool {
        matches!(
            self,
            Request::Register { .. }
                | Request::Query { .. }
                | Request::Update { .. }
                | Request::Expr(_)
        )
    }

    /// Short verb for spans and logs.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Ping => "ping",
            Request::List => "list",
            Request::Stats => "stats",
            Request::Drop { .. } => "drop",
            Request::Register { .. } => "register",
            Request::Query { .. } => "query",
            Request::Update { .. } => "update",
            Request::Expr(_) => "expr",
            Request::Batch { .. } => "batch",
            Request::Tail { .. } => "tail",
            Request::Slow { .. } => "slow",
            Request::SlowThreshold { .. } => "slow-threshold",
            Request::Explain { .. } => "explain",
            Request::Metrics => "metrics",
            Request::TraceDump { .. } => "trace-dump",
        }
    }

    /// The catalog graph this request primarily touches, if any — what
    /// the flight recorder puts in its `graph` column.
    pub fn graph_name(&self) -> &str {
        match self {
            Request::Register { name, .. } | Request::Drop { name } => name,
            Request::Query { graph, .. } | Request::Update { graph, .. } => graph,
            Request::Expr(spec) => &spec.a,
            _ => "",
        }
    }
}

/// Parse one request line.
pub fn parse(line: &str) -> Result<Request, QueryError> {
    let toks: Vec<&str> = line.split_ascii_whitespace().collect();
    let mut it = toks.iter().copied();
    let verb = it.next().ok_or_else(|| bad("empty request"))?;
    let req = match verb.to_ascii_uppercase().as_str() {
        "HELLO" => Request::Hello {
            tenant: it
                .next()
                .ok_or_else(|| bad("HELLO needs a tenant"))?
                .to_string(),
        },
        "PING" => Request::Ping,
        "LIST" => Request::List,
        "STATS" => Request::Stats,
        "DROP" => Request::Drop {
            name: it
                .next()
                .ok_or_else(|| bad("DROP needs a graph name"))?
                .to_string(),
        },
        "REGISTER" => parse_register(&toks)?,
        "QUERY" => parse_query(&toks)?,
        "UPDATE" => parse_update(&toks)?,
        "EXPR" => parse_expr(&toks)?,
        "BATCH" => Request::Batch {
            count: parse_num(it.next(), "BATCH count")?,
        },
        "TAIL" => Request::Tail {
            n: parse_ring_count(it.next(), "TAIL")?,
        },
        "SLOW" => match it.next() {
            Some(t) if t.eq_ignore_ascii_case("THRESHOLD") => Request::SlowThreshold {
                ns: parse_num(it.next(), "SLOW THRESHOLD ns")?,
            },
            t => Request::Slow {
                n: parse_ring_count(t, "SLOW")?,
            },
        },
        "EXPLAIN" => {
            let tok = it.next().ok_or_else(|| bad("EXPLAIN needs a request id"))?;
            let id = tok
                .strip_prefix(['r', 'R'])
                .unwrap_or(tok)
                .parse()
                .map_err(|_| bad(format!("EXPLAIN: bad request id `{tok}` (want rN)")))?;
            Request::Explain { id }
        }
        "METRICS" => Request::Metrics,
        "TRACE" => {
            if !it.next().is_some_and(|t| t.eq_ignore_ascii_case("DUMP")) {
                return Err(bad("TRACE supports only `TRACE DUMP <path>`"));
            }
            Request::TraceDump {
                path: it
                    .next()
                    .ok_or_else(|| bad("TRACE DUMP needs a path"))?
                    .to_string(),
            }
        }
        other => return Err(bad(format!("unknown verb `{other}`"))),
    };
    if req.verb() != "batch" || matches!(req, Request::Batch { count: 1..=1024 }) {
        Ok(req)
    } else {
        Err(bad("BATCH count must be in 1..=1024"))
    }
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, QueryError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| bad(format!("{what}: expected a number")))
}

/// Parse a `TAIL`/`SLOW` record count, bounded by the ring capacity.
fn parse_ring_count(tok: Option<&str>, verb: &str) -> Result<usize, QueryError> {
    let n: usize = parse_num(tok, &format!("{verb} count"))?;
    if n == 0 || n > pygb_obs::RECORDER_CAPACITY {
        return Err(bad(format!(
            "{verb} count must be in 1..={}",
            pygb_obs::RECORDER_CAPACITY
        )));
    }
    Ok(n)
}

fn parse_register(toks: &[&str]) -> Result<Request, QueryError> {
    let name = toks
        .get(1)
        .ok_or_else(|| bad("REGISTER needs a graph name"))?;
    let kind = toks
        .get(2)
        .ok_or_else(|| bad("REGISTER needs a source kind"))?;
    let sym = toks.last().is_some_and(|t| t.eq_ignore_ascii_case("SYM"));
    let source = match kind.to_ascii_uppercase().as_str() {
        "ER" => GraphSource::Er {
            n: parse_num(toks.get(3).copied(), "ER n")?,
            m: parse_num(toks.get(4).copied(), "ER m")?,
            seed: parse_num(toks.get(5).copied(), "ER seed")?,
            sym,
        },
        "RMAT" => GraphSource::Rmat {
            scale: parse_num(toks.get(3).copied(), "RMAT scale")?,
            edge_factor: parse_num(toks.get(4).copied(), "RMAT edge_factor")?,
            seed: parse_num(toks.get(5).copied(), "RMAT seed")?,
            sym,
        },
        "TRIPLES" => {
            let nrows = parse_num(toks.get(3).copied(), "TRIPLES nrows")?;
            let ncols = parse_num(toks.get(4).copied(), "TRIPLES ncols")?;
            let dtype = toks
                .get(5)
                .and_then(|t| DType::from_name(t).ok())
                .ok_or_else(|| bad("TRIPLES needs a dtype"))?;
            let body = toks.get(6).ok_or_else(|| bad("TRIPLES needs entries"))?;
            let mut triples = Vec::new();
            for entry in body.split(',').filter(|e| !e.is_empty()) {
                let mut parts = entry.split(':');
                let i = parse_num(parts.next(), "triple row")?;
                let j = parse_num(parts.next(), "triple col")?;
                let v = parse_num(parts.next(), "triple value")?;
                triples.push((i, j, v));
            }
            GraphSource::Triples {
                nrows,
                ncols,
                dtype,
                triples,
            }
        }
        "MM" => GraphSource::Mm {
            path: toks
                .get(3)
                .ok_or_else(|| bad("MM needs a path"))?
                .to_string(),
        },
        other => return Err(bad(format!("unknown REGISTER source `{other}`"))),
    };
    Ok(Request::Register {
        name: name.to_string(),
        source,
    })
}

fn parse_query(toks: &[&str]) -> Result<Request, QueryError> {
    let graph = toks.get(1).ok_or_else(|| bad("QUERY needs a graph name"))?;
    let algo = toks.get(2).ok_or_else(|| bad("QUERY needs an algorithm"))?;
    let algo = match algo.to_ascii_uppercase().as_str() {
        "BFS" => Algo::Bfs(parse_num(toks.get(3).copied(), "BFS source")?),
        "SSSP" => Algo::Sssp(parse_num(toks.get(3).copied(), "SSSP source")?),
        "PAGERANK" => Algo::PageRank(match toks.get(3) {
            Some(t) => Some(parse_num(Some(*t), "PAGERANK max_iters")?),
            None => None,
        }),
        "TRICOUNT" => Algo::Tricount,
        "CC" => Algo::Cc,
        other => return Err(bad(format!("unknown algorithm `{other}`"))),
    };
    Ok(Request::Query {
        graph: graph.to_string(),
        algo,
    })
}

fn parse_update(toks: &[&str]) -> Result<Request, QueryError> {
    let graph = toks
        .get(1)
        .ok_or_else(|| bad("UPDATE needs a graph name"))?;
    let mode = toks
        .get(2)
        .ok_or_else(|| bad("UPDATE needs ADD or DEL"))?
        .to_ascii_uppercase();
    let body = toks
        .get(3)
        .ok_or_else(|| bad("UPDATE needs edge entries"))?;
    let ops = match mode.as_str() {
        "ADD" => {
            let mut edges = Vec::new();
            for entry in body.split(',').filter(|e| !e.is_empty()) {
                let mut parts = entry.split(':');
                let i = parse_num(parts.next(), "ADD edge row")?;
                let j = parse_num(parts.next(), "ADD edge col")?;
                let v = parse_num(parts.next(), "ADD edge value")?;
                if parts.next().is_some() {
                    return Err(bad(format!("ADD entries are i:j:v, got `{entry}`")));
                }
                edges.push((i, j, v));
            }
            UpdateOps::Add(edges)
        }
        "DEL" => {
            let mut edges = Vec::new();
            for entry in body.split(',').filter(|e| !e.is_empty()) {
                let mut parts = entry.split(':');
                let i = parse_num(parts.next(), "DEL edge row")?;
                let j = parse_num(parts.next(), "DEL edge col")?;
                if parts.next().is_some() {
                    return Err(bad(format!("DEL entries are i:j, got `{entry}`")));
                }
                edges.push((i, j));
            }
            UpdateOps::Del(edges)
        }
        other => return Err(bad(format!("unknown UPDATE mode `{other}`"))),
    };
    if ops.is_empty() {
        return Err(bad("UPDATE batch carries no edges"));
    }
    Ok(Request::Update {
        graph: graph.to_string(),
        ops,
    })
}

fn parse_expr(toks: &[&str]) -> Result<Request, QueryError> {
    let a = toks
        .get(1)
        .ok_or_else(|| bad("EXPR needs a left operand"))?;
    let op = match toks
        .get(2)
        .ok_or_else(|| bad("EXPR needs an operation"))?
        .to_ascii_uppercase()
        .as_str()
    {
        "MXM" => ExprOp::Mxm,
        "EWADD" => ExprOp::EwAdd,
        "EWMULT" => ExprOp::EwMult,
        other => return Err(bad(format!("unknown EXPR op `{other}`"))),
    };
    let b = toks
        .get(3)
        .ok_or_else(|| bad("EXPR needs a right operand"))?;
    let mut spec = ExprSpec {
        a: a.to_string(),
        op,
        b: b.to_string(),
        semiring: None,
        binop: None,
        mask: None,
        complement: false,
        accum: None,
        replace: false,
        into: None,
    };
    let mut i = 4;
    while i < toks.len() {
        let key = toks[i].to_ascii_uppercase();
        let mut take_value = |what: &str| -> Result<String, QueryError> {
            i += 1;
            toks.get(i)
                .map(|t| t.to_string())
                .ok_or_else(|| bad(format!("{what} needs a value")))
        };
        match key.as_str() {
            "SEMIRING" => spec.semiring = Some(take_value("SEMIRING")?),
            "BINOP" => spec.binop = Some(take_value("BINOP")?),
            "MASK" => spec.mask = Some(take_value("MASK")?),
            "ACCUM" => spec.accum = Some(take_value("ACCUM")?),
            "INTO" => spec.into = Some(take_value("INTO")?),
            "COMPLEMENT" => spec.complement = true,
            "REPLACE" => spec.replace = true,
            other => return Err(bad(format!("unknown EXPR clause `{other}`"))),
        }
        i += 1;
    }
    if spec.complement && spec.mask.is_none() {
        return Err(bad("COMPLEMENT requires MASK"));
    }
    Ok(Request::Expr(spec))
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Execute one already-admitted request against the catalog. Called on
/// a worker thread for heavy requests, inline for cheap ones.
pub fn execute(catalog: &Catalog, req: &Request) -> Result<String, QueryError> {
    match req {
        Request::Hello { tenant } => Ok(format!(
            "{{\"protocol\":\"{}\",\"tenant\":\"{}\"}}",
            crate::wire::PROTOCOL,
            json_escape(tenant)
        )),
        Request::Ping => Ok("pong".to_string()),
        Request::List => {
            let items: Vec<String> = catalog.list().iter().map(|s| s.info_json()).collect();
            Ok(format!("[{}]", items.join(",")))
        }
        Request::Stats => Ok(pygb_obs::registry().snapshot().to_json()),
        Request::Drop { name } => {
            if catalog.drop_graph(name) {
                Ok(format!("{{\"dropped\":\"{}\"}}", json_escape(name)))
            } else {
                Err((ErrCode::NotFound, format!("no graph named `{name}`")))
            }
        }
        Request::Register { name, source } => {
            let graph = ingest(source)?;
            let snap = catalog
                .register(name, graph)
                .map_err(|e| (ErrCode::Internal, e.to_string()))?;
            Ok(snap.info_json())
        }
        Request::Query { graph, algo } => {
            let snap = resolve(catalog, graph)?;
            run_algo(&snap, *algo)
        }
        Request::Update { graph, ops } => run_update(catalog, graph, ops),
        Request::Expr(spec) => run_expr(catalog, spec),
        Request::Batch { .. } => Err(bad("BATCH header cannot be executed directly")),
        Request::Tail { n } => Ok(records_json(&pygb_obs::recorder().tail(*n))),
        Request::Slow { n } => Ok(records_json(&pygb_obs::recorder().slow(*n))),
        Request::SlowThreshold { ns } => {
            crate::flightlog::set_slow_ns(*ns);
            Ok(format!("{{\"slow_ns\":{ns}}}"))
        }
        Request::Explain { id } => match crate::flightlog::get_explain(*id) {
            Some(entry) => Ok(entry.render()),
            None => Err((
                ErrCode::NotFound,
                format!("no capture for r{id} (request was never slow, or the entry was evicted)"),
            )),
        },
        Request::Metrics => Ok(pygb_obs::registry().snapshot().to_prometheus()),
        Request::TraceDump { path } => {
            pygb_obs::dump_trace_to(std::path::Path::new(path)).map_err(|e| {
                (
                    ErrCode::Internal,
                    format!("trace dump to `{path}` failed: {e}"),
                )
            })?;
            Ok(format!("{{\"dumped\":\"{}\"}}", json_escape(path)))
        }
    }
}

/// Serialize flight-recorder records as a JSON array (the `TAIL`/`SLOW`
/// payload shape).
fn records_json(records: &[pygb_obs::RecordedRequest]) -> String {
    let items: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"r{}\",\"tenant\":\"{}\",\"verb\":\"{}\",\"graph\":\"{}\",\
                 \"version\":{},\"queue_wait_ns\":{},\"exec_ns\":{},\"outcome\":\"{}\",\
                 \"kernels\":{},\"opt_saved\":{}}}",
                r.id,
                json_escape(&r.tenant),
                json_escape(&r.verb),
                json_escape(&r.graph),
                r.version,
                r.queue_wait_ns,
                r.exec_ns,
                r.outcome.as_str(),
                r.kernel_delta,
                r.opt_delta
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn resolve(catalog: &Catalog, name: &str) -> Result<Arc<Snapshot>, QueryError> {
    catalog
        .get(name)
        .ok_or_else(|| (ErrCode::NotFound, format!("no graph named `{name}`")))
}

fn ingest(source: &GraphSource) -> Result<Matrix, QueryError> {
    let internal = |e: String| (ErrCode::Internal, e);
    match source {
        GraphSource::Er { n, m, seed, sym } => {
            let mut edges = pygb_io::generators::erdos_renyi(*n, *m, *seed);
            if *sym {
                edges = edges.symmetrize();
            }
            Ok(edges.to_pygb(DType::Fp64))
        }
        GraphSource::Rmat {
            scale,
            edge_factor,
            seed,
            sym,
        } => {
            if *scale > 24 {
                return Err(bad("RMAT scale capped at 24 for serving"));
            }
            let mut edges =
                pygb_io::generators::rmat(*scale, *edge_factor, (0.57, 0.19, 0.19, 0.05), *seed);
            if *sym {
                edges = edges.symmetrize();
            }
            Ok(edges.to_pygb(DType::Fp64))
        }
        GraphSource::Triples {
            nrows,
            ncols,
            dtype,
            triples,
        } => {
            let dyn_triples: Vec<(usize, usize, DynScalar)> = triples
                .iter()
                .map(|&(i, j, v)| (i, j, DynScalar::Fp64(v).cast(*dtype)))
                .collect();
            Matrix::from_triples_dyn(*nrows, *ncols, &dyn_triples, Some(*dtype))
                .map_err(|e| bad(e.to_string()))
        }
        GraphSource::Mm { path } => pygb_io::matrix_market::read_file_pygb(path, DType::Fp64)
            .map_err(|e| internal(format!("matrix market read failed: {e}"))),
    }
}

/// Execute one `UPDATE`: cast the wire values to the graph's dtype
/// (the `REGISTER ... TRIPLES` convention), stream the batch through
/// [`Catalog::update_edges`], and answer with the new version's
/// descriptor. The dtype is read off whatever snapshot is current when
/// the worker runs; a lost publish race re-applies inside the catalog,
/// and a concurrent re-REGISTER to a different dtype simply casts again
/// on the wire's `f64` values, same as ingest would.
fn run_update(catalog: &Catalog, graph: &str, ops: &UpdateOps) -> Result<String, QueryError> {
    let not_found = || (ErrCode::NotFound, format!("no graph named `{graph}`"));
    let dtype = resolve(catalog, graph)?.graph.dtype();
    let batch: Vec<pygb::EdgeUpdate> = match ops {
        UpdateOps::Add(edges) => edges
            .iter()
            .map(|&(i, j, v)| pygb::EdgeUpdate::add(i, j, DynScalar::Fp64(v).cast(dtype)))
            .collect(),
        UpdateOps::Del(edges) => edges
            .iter()
            .map(|&(i, j)| pygb::EdgeUpdate::del(i, j))
            .collect(),
    };
    let snap = catalog
        .update_edges(graph, &batch)
        .map_err(|e| bad(e.to_string()))?
        .ok_or_else(not_found)?;
    Ok(snap.info_json())
}

fn run_algo(snap: &Snapshot, algo: Algo) -> Result<String, QueryError> {
    let graph = &snap.graph;
    let n = graph.nrows();
    let internal = |e: pygb::PygbError| (ErrCode::Internal, e.to_string());
    let head = format!(
        "{{\"graph\":\"{}\",\"version\":{},\"algo\":\"{}\"",
        json_escape(&snap.name),
        snap.version,
        algo.label()
    );
    match algo {
        Algo::Bfs(src) => {
            check_source(src, n)?;
            let levels = algos::bfs_nonblocking(graph, src).map_err(internal)?;
            let (body, truncated) = pairs_json(&levels);
            Ok(format!(
                "{head},\"source\":{src},\"levels\":{body},\"nvals\":{},\"truncated\":{truncated}}}",
                levels.nvals()
            ))
        }
        Algo::Sssp(src) => {
            check_source(src, n)?;
            let mut path = Vector::new(n, DType::Fp64);
            path.set(src, 0.0f64).map_err(internal)?;
            algos::sssp_nonblocking(graph, &mut path).map_err(internal)?;
            let (body, truncated) = pairs_json(&path);
            Ok(format!(
                "{head},\"source\":{src},\"dist\":{body},\"nvals\":{},\"truncated\":{truncated}}}",
                path.nvals()
            ))
        }
        Algo::PageRank(max_iters) => {
            let opts = algos::PageRankOptions {
                max_iters: max_iters.unwrap_or(100).min(10_000),
                ..Default::default()
            };
            let (ranks, iters) = algos::pagerank_nonblocking(graph, opts).map_err(internal)?;
            let (body, truncated) = pairs_json(&ranks);
            Ok(format!(
                "{head},\"iters\":{iters},\"ranks\":{body},\"nvals\":{},\"truncated\":{truncated}}}",
                ranks.nvals()
            ))
        }
        Algo::Tricount => {
            let lower: Vec<(usize, usize, DynScalar)> = graph
                .extract_triples()
                .into_iter()
                .filter(|&(i, j, _)| j < i)
                .collect();
            let l = Matrix::from_triples_dyn(n, graph.ncols(), &lower, Some(graph.dtype()))
                .map_err(internal)?;
            let count = algos::tricount_nonblocking(&l).map_err(internal)?;
            Ok(format!("{head},\"triangles\":{}}}", count.as_i64()))
        }
        Algo::Cc => {
            let (labels, rounds) = algos::cc_dsl_loops(graph).map_err(internal)?;
            let components = algos::count_components(&labels);
            let (body, truncated) = pairs_json(&labels);
            Ok(format!(
                "{head},\"components\":{components},\"rounds\":{rounds},\"labels\":{body},\"truncated\":{truncated}}}"
            ))
        }
    }
}

fn check_source(src: usize, n: usize) -> Result<(), QueryError> {
    if src >= n {
        Err(bad(format!("source {src} out of range for {n} vertices")))
    } else {
        Ok(())
    }
}

/// Serialize a sparse vector as `[[i, v], ...]`, capped.
fn pairs_json(v: &Vector) -> (String, bool) {
    let pairs = v.extract_pairs();
    let truncated = pairs.len() > MAX_RESULT_ENTRIES;
    let items: Vec<String> = pairs
        .iter()
        .take(MAX_RESULT_ENTRIES)
        .map(|(i, val)| format!("[{i},{val}]"))
        .collect();
    (format!("[{}]", items.join(",")), truncated)
}

fn run_expr(catalog: &Catalog, spec: &ExprSpec) -> Result<String, QueryError> {
    run_expr_group(catalog, &[spec])
        .pop()
        .expect("one member in, one result out")
}

/// An `EXPR` member with its operands resolved, shapes checked, and
/// operator session built — everything that can fail cheaply, done
/// before any graph work is enqueued.
struct PreparedExpr<'a> {
    spec: &'a ExprSpec,
    a: Arc<Snapshot>,
    b: Arc<Snapshot>,
    mask: Option<Arc<Snapshot>>,
    out_shape: (usize, usize),
    session: Session,
}

fn prepare_expr<'a>(catalog: &Catalog, spec: &'a ExprSpec) -> Result<PreparedExpr<'a>, QueryError> {
    let a = resolve(catalog, &spec.a)?;
    let b = resolve(catalog, &spec.b)?;
    let mask = spec
        .mask
        .as_ref()
        .map(|m| resolve(catalog, m))
        .transpose()?;

    let (ar, ac) = a.graph.shape();
    let (br, bc) = b.graph.shape();
    let out_shape = match spec.op {
        ExprOp::Mxm => {
            if ac != br {
                return Err(bad(format!("MXM shape mismatch: {ar}x{ac} @ {br}x{bc}")));
            }
            (ar, bc)
        }
        ExprOp::EwAdd | ExprOp::EwMult => {
            if (ar, ac) != (br, bc) {
                return Err(bad(format!(
                    "element-wise shape mismatch: {ar}x{ac} vs {br}x{bc}"
                )));
            }
            (ar, ac)
        }
    };
    if let Some(m) = &mask {
        if m.graph.shape() != out_shape {
            return Err(bad(format!(
                "mask shape {:?} does not match result shape {:?}",
                m.graph.shape(),
                out_shape
            )));
        }
    }

    // Build the operator session for this request: explicit, owned,
    // activated only on whichever worker thread runs the job.
    let mut session = Session::new();
    if let Some(name) = &spec.semiring {
        session.push_op(&parse_semiring(name)?);
    }
    if let Some(name) = &spec.binop {
        session.push_op(&BinaryOp::new(name).map_err(|e| bad(e.to_string()))?);
    }
    if let Some(name) = &spec.accum {
        session.push_op(&Accumulator::new(name).map_err(|e| bad(e.to_string()))?);
    }
    if spec.replace {
        session.push_op(&Replace);
    }

    Ok(PreparedExpr {
        spec,
        a,
        b,
        mask,
        out_shape,
        session,
    })
}

/// Build the expression and enqueue the (possibly deferred) assignment
/// for one prepared member. Must run with a nonblocking scope active so
/// the op lands in the thread's DAG rather than dispatching eagerly.
fn enqueue_expr(p: &PreparedExpr<'_>) -> Result<Matrix, QueryError> {
    let internal = |e: pygb::PygbError| (ErrCode::Internal, e.to_string());
    let _active = p.session.activate();
    let expr = match p.spec.op {
        ExprOp::Mxm => p.a.graph.matmul(&p.b.graph),
        ExprOp::EwAdd => p.a.graph.ewise_add(&p.b.graph),
        ExprOp::EwMult => p.a.graph.ewise_mult(&p.b.graph),
    };
    let mut out = Matrix::new(p.out_shape.0, p.out_shape.1, expr.result_dtype());
    let target = match (&p.mask, p.spec.complement) {
        (None, _) => out.no_mask(),
        (Some(m), false) => out.masked(&m.graph),
        (Some(m), true) => out.masked_complement(&m.graph),
    };
    if p.spec.accum.is_some() {
        target.accum_assign(expr).map_err(internal)?;
    } else {
        target.assign(expr).map_err(internal)?;
    }
    Ok(out)
}

/// Settle and render one member's result: register under `INTO` or
/// serialize the triples, capped at [`MAX_RESULT_ENTRIES`].
fn finish_expr(catalog: &Catalog, spec: &ExprSpec, mut out: Matrix) -> Result<String, QueryError> {
    let internal = |e: pygb::PygbError| (ErrCode::Internal, e.to_string());
    out.settle().map_err(internal)?;

    if let Some(into) = &spec.into {
        let snap = catalog
            .register(into, out)
            .map_err(|e| (ErrCode::Internal, e.to_string()))?;
        return Ok(snap.info_json());
    }

    let triples = out.extract_triples();
    let truncated = triples.len() > MAX_RESULT_ENTRIES;
    let items: Vec<String> = triples
        .iter()
        .take(MAX_RESULT_ENTRIES)
        .map(|(i, j, v)| format!("[{i},{j},{v}]"))
        .collect();
    Ok(format!(
        "{{\"nrows\":{},\"ncols\":{},\"dtype\":\"{}\",\"nvals\":{},\"triples\":[{}],\"truncated\":{truncated}}}",
        out.nrows(),
        out.ncols(),
        out.dtype(),
        out.nvals(),
        items.join(",")
    ))
}

/// Evaluate several `EXPR` members inside ONE nonblocking scope with a
/// single flush, so the optimization pipeline sees them as one op-DAG.
/// Members naming the same catalog graphs share snapshot `Arc`s, so
/// structurally identical expressions hash to the same CSE key and
/// collapse into a single kernel dispatch (`opt/cse_deduped` moves).
///
/// Per-member failures (bad shapes, unknown graphs, rejected ops) are
/// reported in that member's slot without poisoning the rest; a flush
/// failure is reported by every member whose work was enqueued.
pub(crate) fn run_expr_group(
    catalog: &Catalog,
    specs: &[&ExprSpec],
) -> Vec<Result<String, QueryError>> {
    let internal = |e: pygb::PygbError| (ErrCode::Internal, e.to_string());
    let mut results: Vec<Option<Result<String, QueryError>>> = specs.iter().map(|_| None).collect();
    let mut outs: Vec<(usize, Matrix)> = Vec::new();

    let flush_result: Result<(), QueryError> = (|| {
        let _nb = pygb_runtime::nonblocking().map_err(internal)?;
        for (i, spec) in specs.iter().enumerate() {
            match prepare_expr(catalog, spec).and_then(|p| enqueue_expr(&p)) {
                Ok(out) => outs.push((i, out)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        // The only window where the request's DAG is still pending: if
        // the serving worker armed slow-query capture, render the plan
        // (raw vs optimized, sparsity facts, kernel hints) now, before
        // the flush consumes the nodes. Unarmed threads skip the render.
        crate::flightlog::offer_plan(|| pygb_runtime::plan().to_string());
        pygb_runtime::flush().map_err(internal)
    })();

    for (i, out) in outs {
        results[i] = Some(match &flush_result {
            Ok(()) => finish_expr(catalog, specs[i], out),
            Err(e) => Err(e.clone()),
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every member resolved or errored"))
        .collect()
}

/// Resolve a semiring clause: a predefined name (`ARITHMETIC`,
/// `MINPLUS`, `LOGICAL`, `MAXTIMES`) or explicit
/// `<add>:<identity>:<mult>` parts, e.g. `Min:MinIdentity:Plus`.
fn parse_semiring(name: &str) -> Result<Semiring, QueryError> {
    match name.to_ascii_uppercase().as_str() {
        "ARITHMETIC" | "PLUSTIMES" => return Ok(ArithmeticSemiring),
        "MINPLUS" => return Ok(MinPlusSemiring),
        "LOGICAL" => return Ok(LogicalSemiring),
        "MAXTIMES" => return Ok(MaxTimesSemiring),
        _ => {}
    }
    let parts: Vec<&str> = name.split(':').collect();
    if parts.len() != 3 {
        return Err(bad(format!(
            "unknown semiring `{name}` (use a predefined name or add:identity:mult)"
        )));
    }
    let monoid = Monoid::new(parts[0], parts[1]).map_err(|e| bad(e.to_string()))?;
    Semiring::new(monoid, parts[2]).map_err(|e| bad(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_whole_grammar() {
        assert_eq!(
            parse("HELLO team-a").unwrap(),
            Request::Hello {
                tenant: "team-a".into()
            }
        );
        assert_eq!(parse("PING").unwrap(), Request::Ping);
        assert_eq!(parse("LIST").unwrap(), Request::List);
        assert_eq!(parse("STATS").unwrap(), Request::Stats);
        assert_eq!(
            parse("register g er 100 400 7 SYM").unwrap(),
            Request::Register {
                name: "g".into(),
                source: GraphSource::Er {
                    n: 100,
                    m: 400,
                    seed: 7,
                    sym: true
                }
            }
        );
        assert_eq!(
            parse("QUERY g BFS 3").unwrap(),
            Request::Query {
                graph: "g".into(),
                algo: Algo::Bfs(3)
            }
        );
        assert_eq!(
            parse("QUERY g PAGERANK").unwrap(),
            Request::Query {
                graph: "g".into(),
                algo: Algo::PageRank(None)
            }
        );
        assert_eq!(parse("BATCH 4").unwrap(), Request::Batch { count: 4 });
        assert_eq!(
            parse("UPDATE g ADD 0:1:2.5,3:4:1").unwrap(),
            Request::Update {
                graph: "g".into(),
                ops: UpdateOps::Add(vec![(0, 1, 2.5), (3, 4, 1.0)])
            }
        );
        assert_eq!(
            parse("update g del 0:1,2:2").unwrap(),
            Request::Update {
                graph: "g".into(),
                ops: UpdateOps::Del(vec![(0, 1), (2, 2)])
            }
        );
    }

    #[test]
    fn parses_expr_clauses() {
        let req = parse("EXPR a MXM b SEMIRING MINPLUS MASK m COMPLEMENT ACCUM Min REPLACE INTO c")
            .unwrap();
        let Request::Expr(spec) = req else {
            panic!("expected EXPR")
        };
        assert_eq!(spec.a, "a");
        assert_eq!(spec.op, ExprOp::Mxm);
        assert_eq!(spec.b, "b");
        assert_eq!(spec.semiring.as_deref(), Some("MINPLUS"));
        assert_eq!(spec.mask.as_deref(), Some("m"));
        assert!(spec.complement);
        assert_eq!(spec.accum.as_deref(), Some("Min"));
        assert!(spec.replace);
        assert_eq!(spec.into.as_deref(), Some("c"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for line in [
            "",
            "FROB x",
            "QUERY",
            "QUERY g WALTZ",
            "REGISTER g ER x y z",
            "EXPR a MXM b COMPLEMENT", // complement without mask
            "BATCH 0",
            "BATCH 99999",
            "UPDATE g",
            "UPDATE g ADD",
            "UPDATE g ADD 0:1",     // ADD needs a value
            "UPDATE g ADD 0:1:2:3", // too many parts
            "UPDATE g DEL 0:1:5",   // DEL takes no value
            "UPDATE g FROB 0:1:1",
            "UPDATE g ADD ,,", // empty batch
        ] {
            assert!(parse(line).is_err(), "line should fail: {line:?}");
        }
    }

    #[test]
    fn triples_register_and_bfs_roundtrip() {
        let catalog = Catalog::new();
        let reg = parse("REGISTER t TRIPLES 3 3 fp64 0:1:1,1:2:1").unwrap();
        execute(&catalog, &reg).unwrap();
        let snap = catalog.get("t").unwrap();
        assert_eq!(snap.graph.nvals(), 2);
        let out = execute(&catalog, &parse("QUERY t BFS 0").unwrap()).unwrap();
        assert!(out.contains("\"algo\":\"bfs\""), "{out}");
        // Source is level 1 (the Fig. 2b convention), neighbors 2, 3.
        assert!(out.contains("\"levels\":[[0,1],[1,2],[2,3]]"), "{out}");
    }

    #[test]
    fn update_mutates_published_graph_and_casts_values() {
        let catalog = Catalog::new();
        execute(
            &catalog,
            &parse("REGISTER t TRIPLES 3 3 int32 0:1:1,1:2:1").unwrap(),
        )
        .unwrap();
        // 2.9 casts int32-ward exactly like TRIPLES ingest would.
        let out = execute(&catalog, &parse("UPDATE t ADD 2:0:2.9").unwrap()).unwrap();
        assert!(out.contains("\"version\":2"), "{out}");
        assert!(out.contains("\"nvals\":3"), "{out}");
        assert_eq!(
            catalog.get("t").unwrap().graph.get(2, 0).unwrap().as_i64(),
            2
        );

        let out = execute(&catalog, &parse("UPDATE t DEL 0:1,1:1").unwrap()).unwrap();
        assert!(out.contains("\"version\":3"), "{out}");
        assert!(out.contains("\"nvals\":2"), "{out}"); // (1,1) was absent: no-op
    }

    #[test]
    fn update_missing_graph_is_not_found() {
        let catalog = Catalog::new();
        let err = execute(&catalog, &parse("UPDATE ghost ADD 0:0:1").unwrap()).unwrap_err();
        assert_eq!(err.0, ErrCode::NotFound);
    }

    #[test]
    fn update_out_of_bounds_is_bad_request_and_publishes_nothing() {
        let catalog = Catalog::new();
        execute(
            &catalog,
            &parse("REGISTER t TRIPLES 2 2 fp64 0:1:1").unwrap(),
        )
        .unwrap();
        let err = execute(&catalog, &parse("UPDATE t ADD 0:0:1,5:5:1").unwrap()).unwrap_err();
        assert_eq!(err.0, ErrCode::BadRequest);
        assert!(err.1.contains("out of bounds"), "{}", err.1);
        let snap = catalog.get("t").unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.graph.nvals(), 1);
    }

    #[test]
    fn bfs_source_out_of_range_is_bad_request() {
        let catalog = Catalog::new();
        execute(
            &catalog,
            &parse("REGISTER t TRIPLES 2 2 fp64 0:1:1").unwrap(),
        )
        .unwrap();
        let err = execute(&catalog, &parse("QUERY t BFS 9").unwrap()).unwrap_err();
        assert_eq!(err.0, ErrCode::BadRequest);
    }

    #[test]
    fn missing_graph_is_not_found() {
        let catalog = Catalog::new();
        let err = execute(&catalog, &parse("QUERY ghost CC").unwrap()).unwrap_err();
        assert_eq!(err.0, ErrCode::NotFound);
    }

    #[test]
    fn expr_mxm_with_semiring_matches_local_compute() {
        let catalog = Catalog::new();
        execute(
            &catalog,
            &parse("REGISTER a TRIPLES 2 2 fp64 0:0:1,0:1:2,1:0:3").unwrap(),
        )
        .unwrap();
        execute(
            &catalog,
            &parse("REGISTER b TRIPLES 2 2 fp64 0:0:5,1:1:7").unwrap(),
        )
        .unwrap();
        let out = execute(
            &catalog,
            &parse("EXPR a MXM b SEMIRING ARITHMETIC INTO c").unwrap(),
        )
        .unwrap();
        assert!(out.contains("\"name\":\"c\""), "{out}");
        let c = catalog.get("c").unwrap();
        assert_eq!(c.graph.get(0, 0).unwrap().as_f64(), 5.0);
        assert_eq!(c.graph.get(0, 1).unwrap().as_f64(), 14.0);
        assert_eq!(c.graph.get(1, 0).unwrap().as_f64(), 15.0);
    }

    #[test]
    fn expr_shape_mismatch_is_bad_request() {
        let catalog = Catalog::new();
        execute(
            &catalog,
            &parse("REGISTER a TRIPLES 2 3 fp64 0:0:1").unwrap(),
        )
        .unwrap();
        execute(
            &catalog,
            &parse("REGISTER b TRIPLES 2 3 fp64 0:0:1").unwrap(),
        )
        .unwrap();
        let err = execute(&catalog, &parse("EXPR a MXM b").unwrap()).unwrap_err();
        assert_eq!(err.0, ErrCode::BadRequest);
    }

    #[test]
    fn tricount_on_k4_finds_four_triangles() {
        let catalog = Catalog::new();
        // K4, symmetric: every off-diagonal pair.
        let mut entries = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    entries.push(format!("{i}:{j}:1"));
                }
            }
        }
        let line = format!("REGISTER k4 TRIPLES 4 4 int64 {}", entries.join(","));
        execute(&catalog, &parse(&line).unwrap()).unwrap();
        let out = execute(&catalog, &parse("QUERY k4 TRICOUNT").unwrap()).unwrap();
        assert!(out.contains("\"triangles\":4"), "{out}");
    }
}
