//! # pygb-serve — a multi-tenant graph query service over
//! copy-on-write snapshots
//!
//! Everything below the wire is the PyGB stack this workspace already
//! builds: dynamically-typed [`pygb::Matrix`] containers, operator
//! contexts, and the nonblocking op-DAG runtime. This crate puts a
//! long-lived server in front of it:
//!
//! - a [`Catalog`] of named graphs where each published version is an
//!   immutable [`Snapshot`] — readers share stores via `Arc` (the
//!   DSL's own copy-on-write discipline) and writers swap whole
//!   versions atomically, so queries never block ingest and never see
//!   a half-updated graph;
//! - a line-framed wire protocol (`pygb-wire/1`, see [`wire`] and the
//!   grammar in [`query`]) exposing BFS / SSSP / PageRank / triangle
//!   count / connected components plus raw `C[M, accum] = A op B`
//!   expressions, each compiled into a per-request nonblocking DAG on
//!   a worker thread;
//! - streaming mutations: `UPDATE <graph> ADD|DEL <edges>` absorbs an
//!   edge batch into a hypersparse delta over the current snapshot
//!   (see [`pygb::StreamingMatrix`]) and publishes the merge as the
//!   next catalog version — readers admitted against the old version
//!   finish against it, and the writer pays O(batch) splice work, not
//!   an O(nnz log nnz) re-REGISTER;
//! - [`Admission`] control and a bounded [`pool::WorkerPool`]: a
//!   saturated server sheds with a structured `overloaded` response
//!   instead of queueing unboundedly, and per-tenant ceilings keep one
//!   tenant from starving the rest;
//! - full observability: every request is minted a stable ID at
//!   admission (echoed as the trailing `ID rN` token on its `OK`/`ERR`
//!   frame) and runs under a [`pygb_obs::Cat::Serve`] span; heavy
//!   requests are recorded in an always-on lock-free flight recorder
//!   (drained via `TAIL n` / `SLOW n`), requests slower than
//!   `PYGB_SLOW_NS` capture their full plan and per-node timings for
//!   `EXPLAIN rN` (see [`flightlog`]), and the `serve/*` metrics
//!   namespace — with `tenant`/`verb`-labeled series — shows up in
//!   `STATS` responses, the `METRICS` Prometheus exposition, and
//!   Chrome-trace exports (`TRACE DUMP <path>` flushes on demand).
//!
//! ## In-process quickstart
//!
//! ```
//! use pygb_serve::{Catalog, Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let server = Server::start(Arc::new(Catalog::new()), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.hello("docs").unwrap();
//! client.request_ok("REGISTER g TRIPLES 3 3 fp64 0:1:1,1:2:1").unwrap();
//! let bfs = client.request_ok("QUERY g BFS 0").unwrap();
//! assert!(bfs.contains("\"levels\":[[0,1],[1,2],[2,3]]"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod catalog;
pub mod client;
pub mod flightlog;
pub mod pool;
pub mod query;
pub mod server;
pub mod wire;

pub use admission::{Admission, AdmissionConfig, AdmitError};
pub use catalog::{Catalog, Snapshot};
pub use client::Client;
pub use flightlog::{ExplainEntry, DEFAULT_SLOW_NS, EXPLAIN_CAP};
pub use query::{Algo, ExprOp, ExprSpec, GraphSource, Request, UpdateOps};
pub use server::{Server, ServerConfig};
pub use wire::{ErrCode, Frame, PROTOCOL};
