//! Named-graph catalog over copy-on-write snapshots.
//!
//! The catalog maps graph names to [`Snapshot`]s. A snapshot is an
//! *immutable* `(name, version, Matrix)` triple behind an `Arc`: the
//! `Matrix` handle itself is an `Arc<MatrixStore>`, so handing a
//! snapshot to a query thread is two reference-count bumps — readers
//! never copy graph data and never block each other.
//!
//! Writers build a complete replacement graph off to the side and then
//! [`Catalog::register`] it, which swaps the map entry atomically under
//! a short write-lock and bumps the version. Queries already in flight
//! keep their `Arc<Snapshot>` alive and keep computing against the
//! version they were admitted with; the old store is freed when the
//! last in-flight reader drops it. This is exactly the DSL's own
//! copy-on-write discipline (`Matrix` clones share a store until
//! someone writes), promoted from per-handle to per-catalog-entry.

use parking_lot::RwLock;
use pygb::Matrix;
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::wire::json_escape;

/// An immutable published version of a named graph.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Catalog name the snapshot was published under.
    pub name: String,
    /// Monotonic per-name version, starting at 1.
    pub version: u64,
    /// The graph itself. Never mutated after publication.
    pub graph: Matrix,
}

impl Snapshot {
    /// One-line JSON descriptor used by `LIST` and query responses.
    pub fn info_json(&self) -> String {
        let (r, c) = self.graph.shape();
        format!(
            "{{\"name\":\"{}\",\"version\":{},\"nrows\":{},\"ncols\":{},\"nvals\":{},\"dtype\":\"{}\"}}",
            json_escape(&self.name),
            self.version,
            r,
            c,
            self.graph.nvals(),
            self.graph.dtype()
        )
    }
}

/// Thread-safe name → snapshot map with atomic version swap.
#[derive(Default)]
pub struct Catalog {
    graphs: RwLock<BTreeMap<String, Arc<Snapshot>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Publish `graph` under `name`. Upserts: an existing entry is
    /// replaced and its version bumped; in-flight readers of the old
    /// snapshot are unaffected. The caller must pass a settled matrix
    /// (no deferred ops) — enforced here via [`Matrix::settle`].
    pub fn register(&self, name: &str, mut graph: Matrix) -> pygb::Result<Arc<Snapshot>> {
        graph.settle()?;
        let mut map = self.graphs.write();
        let version = map.get(name).map_or(1, |old| old.version + 1);
        let snap = Arc::new(Snapshot {
            name: name.to_string(),
            version,
            graph,
        });
        map.insert(name.to_string(), Arc::clone(&snap));
        pygb_obs::registry()
            .counter("serve/catalog_registers")
            .inc();
        Ok(snap)
    }

    /// Resolve a name to its current snapshot, if present.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.graphs.read().get(name).cloned()
    }

    /// Remove a graph. Returns whether an entry existed. In-flight
    /// readers keep their snapshot alive until they finish.
    pub fn drop_graph(&self, name: &str) -> bool {
        let existed = self.graphs.write().remove(name).is_some();
        if existed {
            pygb_obs::registry().counter("serve/catalog_drops").inc();
        }
        existed
    }

    /// Current snapshots, in name order.
    pub fn list(&self) -> Vec<Arc<Snapshot>> {
        self.graphs.read().values().cloned().collect()
    }

    /// Number of named graphs currently published.
    pub fn len(&self) -> usize {
        self.graphs.read().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygb::DType;

    fn tiny(val: i64) -> Matrix {
        Matrix::from_triples(2, 2, vec![(0usize, 1usize, val)]).unwrap()
    }

    #[test]
    fn register_starts_at_version_one_and_bumps() {
        let cat = Catalog::new();
        let s1 = cat.register("g", tiny(1)).unwrap();
        assert_eq!(s1.version, 1);
        let s2 = cat.register("g", tiny(2)).unwrap();
        assert_eq!(s2.version, 2);
        assert_eq!(cat.get("g").unwrap().version, 2);
    }

    #[test]
    fn old_snapshot_survives_reregistration() {
        let cat = Catalog::new();
        let s1 = cat.register("g", tiny(7)).unwrap();
        cat.register("g", tiny(9)).unwrap();
        // The held snapshot still reads the value it was published with.
        assert_eq!(s1.graph.get(0, 1).unwrap().as_i64(), 7);
        assert_eq!(cat.get("g").unwrap().graph.get(0, 1).unwrap().as_i64(), 9);
    }

    #[test]
    fn drop_removes_but_does_not_invalidate_readers() {
        let cat = Catalog::new();
        let s = cat.register("g", tiny(3)).unwrap();
        assert!(cat.drop_graph("g"));
        assert!(!cat.drop_graph("g"));
        assert!(cat.get("g").is_none());
        assert_eq!(s.graph.nvals(), 1);
    }

    #[test]
    fn list_is_name_ordered() {
        let cat = Catalog::new();
        cat.register("zeta", tiny(1)).unwrap();
        cat.register("alpha", tiny(1)).unwrap();
        let names: Vec<_> = cat.list().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn info_json_reports_shape_and_dtype() {
        let cat = Catalog::new();
        let s = cat.register("g", Matrix::new(3, 4, DType::Fp64)).unwrap();
        assert_eq!(
            s.info_json(),
            "{\"name\":\"g\",\"version\":1,\"nrows\":3,\"ncols\":4,\"nvals\":0,\"dtype\":\"fp64\"}"
        );
    }
}
