//! Named-graph catalog over copy-on-write snapshots.
//!
//! The catalog maps graph names to [`Snapshot`]s. A snapshot is an
//! *immutable* `(name, version, Matrix)` triple behind an `Arc`: the
//! `Matrix` handle itself is an `Arc<MatrixStore>`, so handing a
//! snapshot to a query thread is two reference-count bumps — readers
//! never copy graph data and never block each other.
//!
//! Writers build a complete replacement graph off to the side and then
//! [`Catalog::register`] it, which swaps the map entry atomically under
//! a short write-lock and bumps the version. Queries already in flight
//! keep their `Arc<Snapshot>` alive and keep computing against the
//! version they were admitted with; the old store is freed when the
//! last in-flight reader drops it. This is exactly the DSL's own
//! copy-on-write discipline (`Matrix` clones share a store until
//! someone writes), promoted from per-handle to per-catalog-entry.

use parking_lot::RwLock;
use pygb::{EdgeUpdate, Matrix, PygbError, StreamingMatrix};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::wire::json_escape;

/// How many lost publish races [`Catalog::update_edges`] re-applies a
/// batch before giving up. Each retry replays the delta on the racing
/// winner's snapshot, so one writer always makes global progress.
const UPDATE_PUBLISH_RETRIES: usize = 64;

/// An immutable published version of a named graph.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Catalog name the snapshot was published under.
    pub name: String,
    /// Monotonic per-name version, starting at 1.
    pub version: u64,
    /// The graph itself. Never mutated after publication.
    pub graph: Matrix,
}

impl Snapshot {
    /// One-line JSON descriptor used by `LIST` and query responses.
    pub fn info_json(&self) -> String {
        let (r, c) = self.graph.shape();
        format!(
            "{{\"name\":\"{}\",\"version\":{},\"nrows\":{},\"ncols\":{},\"nvals\":{},\"dtype\":\"{}\"}}",
            json_escape(&self.name),
            self.version,
            r,
            c,
            self.graph.nvals(),
            self.graph.dtype()
        )
    }
}

/// Thread-safe name → snapshot map with atomic version swap.
#[derive(Default)]
pub struct Catalog {
    graphs: RwLock<BTreeMap<String, Arc<Snapshot>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Publish `graph` under `name`. Upserts: an existing entry is
    /// replaced and its version bumped; in-flight readers of the old
    /// snapshot are unaffected. The caller must pass a settled matrix
    /// (no deferred ops) — enforced here via [`Matrix::settle`].
    pub fn register(&self, name: &str, mut graph: Matrix) -> pygb::Result<Arc<Snapshot>> {
        graph.settle()?;
        let mut map = self.graphs.write();
        let version = map.get(name).map_or(1, |old| old.version + 1);
        let snap = Arc::new(Snapshot {
            name: name.to_string(),
            version,
            graph,
        });
        map.insert(name.to_string(), Arc::clone(&snap));
        pygb_obs::registry()
            .counter("serve/catalog_registers")
            .inc();
        Ok(snap)
    }

    /// Apply a batch of edge mutations to the named graph and publish
    /// the result as the next version, never blocking readers: the
    /// delta is absorbed into a [`StreamingMatrix`] over the current
    /// snapshot (copy-on-write, so the published version is untouched),
    /// settled off-lock, and swapped in under the same short write-lock
    /// [`Catalog::register`] uses. If a concurrent publisher won the
    /// race for this name, the batch is re-applied on the winner's
    /// snapshot — updates serialize by version, not by lock hold time.
    ///
    /// Returns `Ok(None)` when no graph with that name exists (also
    /// when it disappears mid-retry). Validation failures (edge out of
    /// bounds) surface before anything is published.
    pub fn update_edges(
        &self,
        name: &str,
        batch: &[EdgeUpdate],
    ) -> pygb::Result<Option<Arc<Snapshot>>> {
        for _ in 0..UPDATE_PUBLISH_RETRIES {
            let Some(cur) = self.get(name) else {
                return Ok(None);
            };
            // All the heavy work — validation, delta apply, splice
            // merge — happens here with no catalog lock held.
            let mut stream = StreamingMatrix::from_matrix(&cur.graph)?;
            stream.update_edges(batch)?;
            stream.settle();
            let graph = stream.into_matrix();
            let mut map = self.graphs.write();
            match map.get(name) {
                None => return Ok(None),
                Some(entry) if entry.version == cur.version => {
                    let snap = Arc::new(Snapshot {
                        name: name.to_string(),
                        version: cur.version + 1,
                        graph,
                    });
                    map.insert(name.to_string(), Arc::clone(&snap));
                    pygb_obs::registry().counter("serve/catalog_updates").inc();
                    return Ok(Some(snap));
                }
                // Someone else published a new version between our read
                // and our write: drop the stale merge and re-apply.
                Some(_) => {
                    pygb_obs::registry()
                        .counter("serve/catalog_update_races")
                        .inc();
                }
            }
        }
        Err(PygbError::invalid(
            "update",
            "publish contention exceeded the retry budget",
            format!("update `{name}` batch(len={})", batch.len()),
        ))
    }

    /// Resolve a name to its current snapshot, if present.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.graphs.read().get(name).cloned()
    }

    /// Remove a graph. Returns whether an entry existed. In-flight
    /// readers keep their snapshot alive until they finish.
    pub fn drop_graph(&self, name: &str) -> bool {
        let existed = self.graphs.write().remove(name).is_some();
        if existed {
            pygb_obs::registry().counter("serve/catalog_drops").inc();
        }
        existed
    }

    /// Current snapshots, in name order.
    pub fn list(&self) -> Vec<Arc<Snapshot>> {
        self.graphs.read().values().cloned().collect()
    }

    /// Number of named graphs currently published.
    pub fn len(&self) -> usize {
        self.graphs.read().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygb::DType;

    fn tiny(val: i64) -> Matrix {
        Matrix::from_triples(2, 2, vec![(0usize, 1usize, val)]).unwrap()
    }

    #[test]
    fn register_starts_at_version_one_and_bumps() {
        let cat = Catalog::new();
        let s1 = cat.register("g", tiny(1)).unwrap();
        assert_eq!(s1.version, 1);
        let s2 = cat.register("g", tiny(2)).unwrap();
        assert_eq!(s2.version, 2);
        assert_eq!(cat.get("g").unwrap().version, 2);
    }

    #[test]
    fn old_snapshot_survives_reregistration() {
        let cat = Catalog::new();
        let s1 = cat.register("g", tiny(7)).unwrap();
        cat.register("g", tiny(9)).unwrap();
        // The held snapshot still reads the value it was published with.
        assert_eq!(s1.graph.get(0, 1).unwrap().as_i64(), 7);
        assert_eq!(cat.get("g").unwrap().graph.get(0, 1).unwrap().as_i64(), 9);
    }

    #[test]
    fn drop_removes_but_does_not_invalidate_readers() {
        let cat = Catalog::new();
        let s = cat.register("g", tiny(3)).unwrap();
        assert!(cat.drop_graph("g"));
        assert!(!cat.drop_graph("g"));
        assert!(cat.get("g").is_none());
        assert_eq!(s.graph.nvals(), 1);
    }

    #[test]
    fn list_is_name_ordered() {
        let cat = Catalog::new();
        cat.register("zeta", tiny(1)).unwrap();
        cat.register("alpha", tiny(1)).unwrap();
        let names: Vec<_> = cat.list().iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn update_edges_publishes_next_version_without_touching_readers() {
        let cat = Catalog::new();
        let held = cat.register("g", tiny(5)).unwrap();
        let snap = cat
            .update_edges(
                "g",
                &[EdgeUpdate::add(1usize, 0usize, 9i64), EdgeUpdate::del(0, 1)],
            )
            .unwrap()
            .unwrap();
        assert_eq!(snap.version, 2);
        assert_eq!(snap.graph.nvals(), 1);
        assert_eq!(snap.graph.get(1, 0).unwrap().as_i64(), 9);
        assert!(snap.graph.get(0, 1).is_none());
        // The version-1 reader still sees version-1 data.
        assert_eq!(held.graph.get(0, 1).unwrap().as_i64(), 5);
        assert_eq!(cat.get("g").unwrap().version, 2);
    }

    #[test]
    fn update_edges_missing_graph_is_none() {
        let cat = Catalog::new();
        assert!(cat
            .update_edges("ghost", &[EdgeUpdate::del(0, 0)])
            .unwrap()
            .is_none());
    }

    #[test]
    fn update_edges_out_of_bounds_leaves_catalog_untouched() {
        let cat = Catalog::new();
        cat.register("g", tiny(1)).unwrap();
        let err = cat
            .update_edges("g", &[EdgeUpdate::add(7usize, 7usize, 1i64)])
            .unwrap_err();
        assert!(err.to_string().contains("out of bounds"), "{err}");
        assert_eq!(cat.get("g").unwrap().version, 1);
    }

    #[test]
    fn racing_updates_all_land_as_distinct_versions() {
        let cat = Arc::new(Catalog::new());
        cat.register("g", Matrix::new(64, 64, DType::Int64))
            .unwrap();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cat = Arc::clone(&cat);
                std::thread::spawn(move || {
                    for k in 0..4usize {
                        cat.update_edges("g", &[EdgeUpdate::add(t, k, 1i64)])
                            .unwrap()
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = cat.get("g").unwrap();
        // 8 writers x 4 batches, each bumping exactly one version and
        // adding exactly one distinct edge.
        assert_eq!(snap.version, 33);
        assert_eq!(snap.graph.nvals(), 32);
    }

    #[test]
    fn info_json_reports_shape_and_dtype() {
        let cat = Catalog::new();
        let s = cat.register("g", Matrix::new(3, 4, DType::Fp64)).unwrap();
        assert_eq!(
            s.info_json(),
            "{\"name\":\"g\",\"version\":1,\"nrows\":3,\"ncols\":4,\"nvals\":0,\"dtype\":\"fp64\"}"
        );
    }
}
