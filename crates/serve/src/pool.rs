//! Bounded worker pool executing admitted requests.
//!
//! Connection threads parse and admit; the actual graph work runs on a
//! fixed set of long-lived worker threads, so the number of concurrent
//! op-DAG executions is bounded regardless of how many sockets are
//! open. Each job carries the deadline stamped at admission: a worker
//! that dequeues a job past its deadline runs the job's `expire`
//! handler (which answers `timeout`) instead of its body, so a backlog
//! drains at memcpy speed once the server falls behind.
//!
//! Uses `std::sync::{Mutex, Condvar}` directly — the workspace
//! `parking_lot` shim intentionally omits condvars.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// A unit of admitted work.
pub struct Job {
    /// Latest time at which starting the job is still useful.
    pub deadline: Instant,
    /// The request body; runs on a worker thread.
    pub run: Box<dyn FnOnce() + Send>,
    /// Called instead of `run` if the deadline passed while queued.
    pub expire: Box<dyn FnOnce() + Send>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

/// Why a job could not be enqueued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The configured queue capacity.
    pub capacity: usize,
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Fixed-size thread pool with a bounded FIFO queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads consuming a queue of at most `capacity`
    /// pending jobs.
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            capacity,
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pygb-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Enqueue a job, failing fast when the queue is at capacity.
    pub fn submit(&self, job: Job) -> Result<(), (Job, QueueFull)> {
        let mut q = self.shared.queue.lock().unwrap();
        if q.jobs.len() >= self.shared.capacity {
            return Err((
                job,
                QueueFull {
                    capacity: self.shared.capacity,
                },
            ));
        }
        q.jobs.push_back(job);
        drop(q);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().unwrap().jobs.len()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        if Instant::now() > job.deadline {
            pygb_obs::registry().counter("serve/expired_in_queue").inc();
            (job.expire)();
        } else {
            (job.run)();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    fn job(deadline: Instant, run: impl FnOnce() + Send + 'static) -> Job {
        Job {
            deadline,
            run: Box::new(run),
            expire: Box::new(|| {}),
        }
    }

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            let tx = tx.clone();
            pool.submit(job(Instant::now() + Duration::from_secs(5), move || {
                tx.send(i).unwrap();
            }))
            .unwrap();
        }
        let mut got: Vec<i32> = (0..8)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_when_queue_full() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        pool.submit(job(Instant::now() + Duration::from_secs(5), move || {
            let _ = block_rx.recv_timeout(Duration::from_secs(5));
        }))
        .unwrap();
        // ...then fill the single queue slot. A brief wait lets the
        // worker pick up the first job so the slot is genuinely ours.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if pool.queued() == 0 || Instant::now() > deadline {
                break;
            }
            thread::yield_now();
        }
        pool.submit(job(Instant::now() + Duration::from_secs(5), || {}))
            .unwrap();
        let res = pool.submit(job(Instant::now() + Duration::from_secs(5), || {}));
        assert!(matches!(res, Err((_, QueueFull { capacity: 1 }))));
        block_tx.send(()).unwrap();
    }

    #[test]
    fn expired_jobs_run_expire_handler() {
        let pool = WorkerPool::new(1, 16);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        pool.submit(job(Instant::now() + Duration::from_secs(5), move || {
            let _ = block_rx.recv_timeout(Duration::from_secs(5));
        }))
        .unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let expired = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = mpsc::channel();
        {
            let ran = Arc::clone(&ran);
            let expired = Arc::clone(&expired);
            pool.submit(Job {
                // Already past deadline by the time the worker unblocks.
                deadline: Instant::now() - Duration::from_millis(1),
                run: Box::new(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                }),
                expire: Box::new(move || {
                    expired.fetch_add(1, Ordering::SeqCst);
                    done_tx.send(()).unwrap();
                }),
            })
            .unwrap();
        }
        block_tx.send(()).unwrap();
        done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(expired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4, 16);
        let (tx, rx) = mpsc::channel();
        pool.submit(job(Instant::now() + Duration::from_secs(5), move || {
            tx.send(()).unwrap();
        }))
        .unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        drop(pool); // must not hang
    }
}
