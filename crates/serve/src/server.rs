//! The TCP server: accept loop, connection protocol, request routing.
//!
//! Connection threads do only cheap work — framing, parsing, admission
//! — and answer catalog-metadata verbs inline. Graph work is handed to
//! the shared [`WorkerPool`] as a job carrying an `mpsc` reply channel;
//! the connection thread blocks on the reply, so slow queries exert
//! backpressure on their own socket while other connections proceed.
//!
//! Every request line is minted a stable request ID before parsing and
//! the ID is echoed as the trailing `ID rN` token on the response
//! frame, so even a `bad-request` reply is addressable. Every admitted
//! request runs under a [`pygb_obs::Cat::Serve`] span labeled with its
//! ID and feeds the `serve/*` metrics namespace — both the unlabeled
//! aggregate series and `tenant`/`verb`-labeled ones — so a trace
//! export of a busy server shows request lifecycles interleaved with
//! the kernel spans they fan out into. Heavy requests additionally
//! leave a record in the process-wide [`pygb_obs::FlightRecorder`]
//! (including shed and expired ones, attributed to their cause), and
//! requests slower than the [`crate::flightlog`] threshold capture
//! their plan and per-node timings for `EXPLAIN rN`.

// Worker/connection hot path: a panic here takes down a serve worker,
// so `unwrap`/`expect` are forbidden (see clippy.toml).
#![warn(clippy::disallowed_methods)]

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pygb_obs::{recorder, span_labeled, Cat, Outcome, RequestRecord};

use crate::admission::{Admission, AdmissionConfig, AdmitError};
use crate::catalog::Catalog;
use crate::flightlog;
use crate::pool::{Job, WorkerPool};
use crate::query::{self, Request};
use crate::wire::{self, ErrCode};

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address. Use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker threads executing graph work.
    pub workers: usize,
    /// Bound on jobs waiting for a worker (beyond this: shed).
    pub queue_capacity: usize,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// How long a connection thread waits for its job's reply before
    /// giving up on it (covers queue wait plus execution).
    pub response_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 512,
            admission: AdmissionConfig::default(),
            response_wait: Duration::from_secs(600),
        }
    }
}

struct Shared {
    catalog: Arc<Catalog>,
    admission: Admission,
    pool: WorkerPool,
    shutdown: AtomicBool,
    response_wait: Duration,
}

/// A running `pygb-serve` instance.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `catalog` with the given config.
    pub fn start(catalog: Arc<Catalog>, config: ServerConfig) -> std::io::Result<Server> {
        // Force kernel registration so dispatch works on worker threads
        // and the tunables metrics source is registered up front.
        let _ = pygb::runtime();
        // Read (and thereby mirror) the slow threshold eagerly so a
        // scrape sees `tunables/slow_ns` before the first heavy request.
        let _ = flightlog::slow_ns();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            catalog,
            admission: Admission::new(config.admission.clone()),
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            shutdown: AtomicBool::new(false),
            response_wait: config.response_wait,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("pygb-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// Start with an empty catalog and default config (ephemeral port).
    pub fn start_default() -> std::io::Result<Server> {
        Server::start(Arc::new(Catalog::new()), ServerConfig::default())
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served catalog — useful for in-process seeding and oracles.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.shared.catalog
    }

    /// Admitted-but-unfinished request count.
    pub fn inflight(&self) -> usize {
        self.shared.admission.inflight()
    }

    /// Stop accepting and join the accept thread. Existing connections
    /// finish their in-flight exchange and then error out.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _peer)) = conn else { continue };
        // Frames are written as several small `write!` calls; without
        // NODELAY, Nagle + the client's delayed ACK turn every response
        // into a ~40ms stall.
        stream.set_nodelay(true).ok();
        let conn_shared = Arc::clone(&shared);
        let _ = thread::Builder::new()
            .name("pygb-serve-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, conn_shared);
            });
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut tenant = "anonymous".to_string();
    let requests = pygb_obs::registry().counter("serve/requests");

    while !shared.shutdown.load(Ordering::SeqCst) {
        let Some(line) = wire::read_line(&mut reader)? else {
            return Ok(()); // clean EOF
        };
        if line.trim().is_empty() {
            continue;
        }
        requests.inc();
        // Mint the request ID before parsing so even a `bad-request`
        // frame carries an `ID rN` token the client can report.
        let id = flightlog::next_request_id();
        let req = match query::parse(&line) {
            Ok(req) => req,
            Err((code, msg)) => {
                wire::write_err_tagged(&mut writer, code, &msg, Some(id))?;
                continue;
            }
        };
        match req {
            Request::Hello { tenant: t } => {
                tenant = t.clone();
                respond(
                    &mut writer,
                    query::execute(&shared.catalog, &Request::Hello { tenant: t }),
                    id,
                )?;
            }
            Request::Batch { count } => {
                let subs = match read_batch(&mut reader, count) {
                    Ok(subs) => subs,
                    Err((code, msg)) => {
                        wire::write_err_tagged(&mut writer, code, &msg, Some(id))?;
                        continue;
                    }
                };
                pygb_obs::registry().counter("serve/batches").inc();
                dispatch_heavy(&shared, &mut writer, &tenant, Work::Batch(subs), id)?;
            }
            req if req.is_heavy() => {
                dispatch_heavy(&shared, &mut writer, &tenant, Work::One(req), id)?;
            }
            req => {
                // Cheap metadata verbs answer inline on the connection
                // thread; they never touch graph data. They still echo
                // the ID but are not recorded in the flight ring, so
                // PING/TAIL polling cannot pollute the request history.
                respond(&mut writer, query::execute(&shared.catalog, &req), id)?;
            }
        }
    }
    Ok(())
}

/// Read and validate the `count` request lines following a `BATCH`.
fn read_batch(
    reader: &mut BufReader<TcpStream>,
    count: usize,
) -> Result<Vec<Request>, query::QueryError> {
    let mut subs = Vec::with_capacity(count);
    for _ in 0..count {
        let line = wire::read_line(reader)
            .map_err(|e| (ErrCode::BadRequest, format!("batch read failed: {e}")))?
            .ok_or((ErrCode::BadRequest, "batch truncated by EOF".to_string()))?;
        let sub = query::parse(&line)?;
        if !sub.is_heavy() {
            return Err((
                ErrCode::BadRequest,
                format!(
                    "only REGISTER/QUERY/UPDATE/EXPR allowed in a batch, got `{}`",
                    sub.verb()
                ),
            ));
        }
        subs.push(sub);
    }
    Ok(subs)
}

enum Work {
    One(Request),
    Batch(Vec<Request>),
}

/// Admit, enqueue, and await one unit of heavy work, writing whatever
/// frame results (including the structured shed/timeout responses).
/// Every outcome — completion, error, shed at any of the three
/// ceilings, queue expiry — leaves one record in the flight ring under
/// the minted request ID.
fn dispatch_heavy(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    tenant: &str,
    work: Work,
    id: u64,
) -> std::io::Result<()> {
    let verb = match &work {
        Work::One(req) => req.verb().to_string(),
        Work::Batch(_) => "BATCH".to_string(),
    };
    let graph = match &work {
        Work::One(req) => req.graph_name().to_string(),
        Work::Batch(_) => String::new(),
    };
    let record_shed = |outcome: Outcome, queue_wait_ns: u64| {
        recorder().record(&RequestRecord {
            id,
            tenant,
            verb: &verb,
            graph: &graph,
            version: 0,
            queue_wait_ns,
            exec_ns: 0,
            outcome,
            kernel_delta: 0,
            opt_delta: 0,
        });
    };

    let ticket = match shared.admission.admit(tenant) {
        Ok(t) => Arc::new(t),
        Err(e) => {
            record_shed(
                match e {
                    AdmitError::ServerFull { .. } => Outcome::ShedGlobal,
                    AdmitError::TenantFull { .. } => Outcome::ShedTenant,
                },
                0,
            );
            return wire::write_err_tagged(writer, ErrCode::Overloaded, &e.message(), Some(id));
        }
    };
    let (tx, rx) = mpsc::channel::<Result<Response, query::QueryError>>();
    let admitted_at = Instant::now();
    let deadline = admitted_at + shared.admission.config().queue_timeout;

    let run = {
        let shared = Arc::clone(shared);
        let tenant = tenant.to_string();
        let verb = verb.clone();
        let graph = graph.clone();
        let ticket = Arc::clone(&ticket);
        let tx = tx.clone();
        Box::new(move || {
            let _ticket = ticket;
            let queue_wait_ns = admitted_at.elapsed().as_nanos() as u64;
            pygb_obs::registry()
                .histogram("serve/queue_wait_ns")
                .record(queue_wait_ns);

            // Attribute runtime work to this request: tag the worker
            // thread so the flushed DAG's trace report is published
            // under `rN`, force per-node timing collection even with
            // global tracing off, and arm plan capture so the EXPR
            // path can stash its pre-flush `plan()` rendering.
            pygb_runtime::set_request_tag(Some(id));
            pygb_runtime::set_report_forced(true);
            flightlog::arm_plan_capture();
            let jit = pygb::runtime().cache().stats();
            let inv_before = jit.snapshot().invocations;
            let opt_counter = pygb_obs::registry().counter("opt/launches_saved");
            let opt_before = opt_counter.get();

            let exec_start = Instant::now();
            let result = match &work {
                Work::One(req) => {
                    let _span = span_labeled(Cat::Serve, || {
                        format!("serve {} tenant={tenant} r{id}", req.verb())
                    });
                    // Drain lints a previous job may have left on this
                    // worker thread so they cannot be misattributed.
                    let _ = pygb::analyze::take_lints();
                    let out = query::execute(&shared.catalog, req);
                    let warnings = if matches!(
                        req,
                        Request::Query { .. } | Request::Expr(_) | Request::Update { .. }
                    ) {
                        pygb::analyze::take_lints()
                    } else {
                        let _ = pygb::analyze::take_lints();
                        Vec::new()
                    };
                    out.map(|payload| Response { payload, warnings })
                }
                Work::Batch(subs) => {
                    let _span =
                        span_labeled(Cat::Serve, || format!("serve BATCH tenant={tenant} r{id}"));
                    let out = run_batch(&shared.catalog, subs, &tenant);
                    let _ = pygb::analyze::take_lints();
                    out.map(|payload| Response {
                        payload,
                        warnings: Vec::new(),
                    })
                }
            };
            let exec_ns = exec_start.elapsed().as_nanos() as u64;

            pygb_runtime::set_request_tag(None);
            pygb_runtime::set_report_forced(false);
            let plan = flightlog::take_captured_plan();
            let kernel_delta = jit.snapshot().invocations.saturating_sub(inv_before);
            let opt_delta = opt_counter.get().saturating_sub(opt_before);

            if exec_ns >= flightlog::slow_ns() {
                pygb_obs::registry().counter("serve/slow_captured").inc();
                flightlog::store_explain(flightlog::ExplainEntry {
                    id,
                    tenant: tenant.clone(),
                    verb: verb.clone(),
                    queue_wait_ns,
                    exec_ns,
                    plan,
                    report: pygb_runtime::trace_report_for(id).map(|r| r.to_string()),
                });
            }

            let version = shared.catalog.get(&graph).map_or(0, |s| s.version);
            recorder().record(&RequestRecord {
                id,
                tenant: &tenant,
                verb: &verb,
                graph: &graph,
                version,
                queue_wait_ns,
                exec_ns,
                outcome: if result.is_ok() {
                    Outcome::Ok
                } else {
                    Outcome::Error
                },
                kernel_delta,
                opt_delta,
            });

            let labels = [("tenant", tenant.as_str()), ("verb", verb.as_str())];
            pygb_obs::registry()
                .histogram("serve/request_ns")
                .record(admitted_at.elapsed().as_nanos() as u64);
            pygb_obs::registry()
                .labeled_histogram("serve/request_ns", &labels)
                .record(admitted_at.elapsed().as_nanos() as u64);
            let outcome_name = if result.is_ok() {
                "serve/completed"
            } else {
                "serve/errors"
            };
            pygb_obs::registry().counter(outcome_name).inc();
            pygb_obs::registry()
                .labeled_counter(outcome_name, &labels)
                .inc();
            let _ = tx.send(result);
        })
    };
    let expire = {
        let ticket = Arc::clone(&ticket);
        let tenant = tenant.to_string();
        let verb = verb.clone();
        let graph = graph.clone();
        Box::new(move || {
            let _ticket = ticket;
            recorder().record(&RequestRecord {
                id,
                tenant: &tenant,
                verb: &verb,
                graph: &graph,
                version: 0,
                queue_wait_ns: admitted_at.elapsed().as_nanos() as u64,
                exec_ns: 0,
                outcome: Outcome::Timeout,
                kernel_delta: 0,
                opt_delta: 0,
            });
            let _ = tx.send(Err((
                ErrCode::Timeout,
                "request expired in queue before a worker picked it up".to_string(),
            )));
        })
    };
    drop(ticket);

    if let Err((_job, full)) = shared.pool.submit(Job {
        deadline,
        run,
        expire,
    }) {
        pygb_obs::registry().counter("serve/shed_overloaded").inc();
        pygb_obs::registry().counter("serve/shed_queue_full").inc();
        record_shed(Outcome::ShedQueue, 0);
        return wire::write_err_tagged(
            writer,
            ErrCode::Overloaded,
            &format!("worker queue at capacity ({})", full.capacity),
            Some(id),
        );
    }

    match rx.recv_timeout(shared.response_wait) {
        Ok(Ok(resp)) => wire::write_ok_tagged(writer, &resp.payload, &resp.warnings, Some(id)),
        Ok(Err((code, msg))) => wire::write_err_tagged(writer, code, &msg, Some(id)),
        // The worker (or expire hook) still owns the ring record; the
        // connection only reports the give-up to its client.
        Err(_) => wire::write_err_tagged(
            writer,
            ErrCode::Timeout,
            "request did not complete within the response window",
            Some(id),
        ),
    }
}

/// A successful heavy-request result: the payload plus any analyzer
/// lints the execution raised on the worker thread (surfaced to the
/// client as the frame's `WARN` section).
struct Response {
    payload: String,
    warnings: Vec<String>,
}

/// Execute batch members sequentially on the worker. The batch
/// succeeds as a frame even when members fail: each member reports
/// `{"ok":...}` or `{"err":{...}}` in order.
///
/// Runs of two or more consecutive `EXPR` members without `INTO` are
/// evaluated as one group — a single nonblocking scope and flush — so
/// the optimization pipeline sees them as one op-DAG and duplicate
/// expressions across members collapse via CSE into one kernel
/// dispatch. `INTO` publishes to the catalog (later members may read
/// the result), so it acts as a barrier, as does any other verb.
fn run_batch(
    catalog: &Catalog,
    subs: &[Request],
    tenant: &str,
) -> Result<String, query::QueryError> {
    let mut items = Vec::with_capacity(subs.len());
    let render = |result: Result<String, query::QueryError>| match result {
        Ok(payload) => format!("{{\"ok\":{payload}}}"),
        Err((code, msg)) => format!(
            "{{\"err\":{{\"code\":\"{}\",\"msg\":\"{}\"}}}}",
            code.name(),
            wire::json_escape(&msg)
        ),
    };
    let groupable = |r: &Request| matches!(r, Request::Expr(s) if s.into.is_none());

    let mut i = 0;
    while i < subs.len() {
        let mut j = i;
        while j < subs.len() && groupable(&subs[j]) {
            j += 1;
        }
        if j - i >= 2 {
            let specs: Vec<&query::ExprSpec> = subs[i..j]
                .iter()
                .map(|r| match r {
                    Request::Expr(s) => s,
                    _ => unreachable!("run delimited by groupable()"),
                })
                .collect();
            let _span = span_labeled(Cat::Serve, || {
                format!("serve batch:EXPRx{} tenant={tenant}", specs.len())
            });
            pygb_obs::registry()
                .counter("serve/expr_grouped")
                .add(specs.len() as u64);
            items.extend(
                query::run_expr_group(catalog, &specs)
                    .into_iter()
                    .map(render),
            );
            i = j;
            continue;
        }
        let sub = &subs[i];
        let _span = span_labeled(Cat::Serve, || {
            format!("serve batch:{} tenant={tenant}", sub.verb())
        });
        items.push(render(query::execute(catalog, sub)));
        i += 1;
    }
    Ok(format!("[{}]", items.join(",")))
}

fn respond(
    writer: &mut TcpStream,
    result: Result<String, query::QueryError>,
    id: u64,
) -> std::io::Result<()> {
    match result {
        Ok(payload) => wire::write_ok_tagged(writer, &payload, &[], Some(id)),
        Err((code, msg)) => wire::write_err_tagged(writer, code, &msg, Some(id)),
    }
}
