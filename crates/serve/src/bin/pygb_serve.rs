//! `pygb-serve` — stand-alone multi-tenant graph query server.
//!
//! ```text
//! PYGB_SERVE_ADDR=127.0.0.1:7411 \
//! PYGB_SERVE_WORKERS=4 \
//! PYGB_SERVE_SEED="web=er:10000:80000:42,road=rmat:10:8:7" \
//! cargo run --release -p pygb-serve --bin pygb-serve
//! ```
//!
//! Environment:
//! - `PYGB_SERVE_ADDR` — bind address (default `127.0.0.1:7411`)
//! - `PYGB_SERVE_WORKERS` — worker threads (default 4)
//! - `PYGB_SERVE_MAX_INFLIGHT` — global admission bound (default 256)
//! - `PYGB_SERVE_PER_TENANT` — per-tenant admission bound (default 128)
//! - `PYGB_SERVE_TIMEOUT_MS` — queue deadline in ms (default 5000)
//! - `PYGB_SERVE_SEED` — comma-separated graphs to preload, each
//!   `name=er:<n>:<m>:<seed>` or `name=rmat:<scale>:<ef>:<seed>`
//! - `PYGB_SLOW_NS` — slow-query threshold in nanoseconds (default
//!   100ms); requests slower than this capture their plan and per-node
//!   timings for `EXPLAIN rN`, tunable live via `SLOW THRESHOLD <ns>`
//! - `PYGB_TRACE` / `PYGB_METRICS` — the usual observability switches.
//!   With `PYGB_TRACE` set the span ring is flushed to the trace file
//!   every few seconds (and on demand via `TRACE DUMP <path>`), so a
//!   kill -9 loses at most one flush interval, not the whole trace.
//!   `METRICS` serves a live Prometheus exposition; `STATS` the raw
//!   JSON snapshot.

use pygb_serve::{AdmissionConfig, Catalog, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn seed_catalog(catalog: &Catalog, spec: &str) {
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let Some((name, src)) = entry.split_once('=') else {
            eprintln!("pygb-serve: bad seed entry `{entry}` (want name=kind:args)");
            continue;
        };
        let parts: Vec<&str> = src.split(':').collect();
        let edges = match parts.as_slice() {
            ["er", n, m, seed] => match (n.parse(), m.parse(), seed.parse()) {
                (Ok(n), Ok(m), Ok(seed)) => pygb_io::generators::erdos_renyi(n, m, seed),
                _ => {
                    eprintln!("pygb-serve: bad er args in `{entry}`");
                    continue;
                }
            },
            ["rmat", scale, ef, seed] => match (scale.parse(), ef.parse(), seed.parse()) {
                (Ok(scale), Ok(ef), Ok(seed)) => {
                    pygb_io::generators::rmat(scale, ef, (0.57, 0.19, 0.19, 0.05), seed)
                }
                _ => {
                    eprintln!("pygb-serve: bad rmat args in `{entry}`");
                    continue;
                }
            },
            _ => {
                eprintln!("pygb-serve: unknown seed kind in `{entry}`");
                continue;
            }
        };
        let graph = edges.to_pygb(pygb::DType::Fp64);
        match catalog.register(name.trim(), graph) {
            Ok(snap) => eprintln!("pygb-serve: seeded {}", snap.info_json()),
            Err(e) => eprintln!("pygb-serve: seeding `{name}` failed: {e}"),
        }
    }
}

fn main() -> std::io::Result<()> {
    pygb_obs::init_from_env();

    let catalog = Arc::new(Catalog::new());
    if let Ok(spec) = std::env::var("PYGB_SERVE_SEED") {
        seed_catalog(&catalog, &spec);
    }

    let config = ServerConfig {
        addr: std::env::var("PYGB_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7411".to_string()),
        workers: env_parse("PYGB_SERVE_WORKERS", 4),
        queue_capacity: env_parse("PYGB_SERVE_QUEUE", 512),
        admission: AdmissionConfig {
            max_inflight: env_parse("PYGB_SERVE_MAX_INFLIGHT", 256),
            per_tenant: env_parse("PYGB_SERVE_PER_TENANT", 128),
            queue_timeout: Duration::from_millis(env_parse("PYGB_SERVE_TIMEOUT_MS", 5000)),
        },
        response_wait: Duration::from_secs(600),
    };

    let server = Server::start(catalog, config)?;
    println!("pygb-serve listening on {}", server.local_addr());

    // A server has no "SIGINT-free exit": without a periodic flush the
    // configured trace file would only ever be written by a clean
    // shutdown that never happens. Rewrite it every few seconds so the
    // file tracks the live span ring (clients can also force a flush
    // anywhere with `TRACE DUMP <path>`).
    if pygb_obs::trace_path().is_some() {
        std::thread::Builder::new()
            .name("pygb-serve-trace-flush".to_string())
            .spawn(|| loop {
                std::thread::sleep(Duration::from_secs(3));
                if let Err(e) = pygb_obs::finish() {
                    eprintln!("pygb-serve: trace flush failed: {e}");
                }
            })?;
    }

    // Serve until killed; all work happens on accept/conn/worker threads.
    loop {
        std::thread::park();
    }
}
