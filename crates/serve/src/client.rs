//! Minimal blocking client for `pygb-wire/1`.
//!
//! Used by the example, the integration tests, and the closed-loop
//! load generator. One request in flight per connection; open several
//! clients for concurrency.

use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{self, ErrCode, Frame};

/// A connected `pygb-wire/1` client.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    last_id: Option<u64>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
            last_id: None,
        })
    }

    /// The request ID (`rN`) the server echoed on the most recent
    /// response, if any — the handle to pass to `EXPLAIN`.
    pub fn last_request_id(&self) -> Option<u64> {
        self.last_id
    }

    /// Bound how long a single exchange may block on the socket.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_write_timeout(timeout)?;
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request line and read the response frame.
    pub fn request(&mut self, line: &str) -> io::Result<Frame> {
        debug_assert!(!line.contains('\n'), "request lines are single lines");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let (frame, id) = wire::read_frame_tagged(&mut self.reader)?;
        self.last_id = id;
        Ok(frame)
    }

    /// Like [`Client::request`] but maps `ERR` frames to `Err`.
    /// Analyzer warnings, if any, are discarded — use
    /// [`Client::request_with_warnings`] to observe them.
    pub fn request_ok(&mut self, line: &str) -> io::Result<String> {
        self.request_with_warnings(line).map(|(payload, _)| payload)
    }

    /// Send one request and split the response into its payload and
    /// the analyzer lints from the frame's `WARN` section (empty when
    /// the server raised none), mapping `ERR` frames to `Err`.
    pub fn request_with_warnings(&mut self, line: &str) -> io::Result<(String, Vec<String>)> {
        match self.request(line)? {
            Frame::Ok(payload) => Ok((payload, Vec::new())),
            Frame::OkWarn(payload, warnings) => Ok((payload, warnings)),
            Frame::Err(code, msg) => Err(io::Error::other(format!("{code}: {msg}"))),
        }
    }

    /// Identify this connection's tenant.
    pub fn hello(&mut self, tenant: &str) -> io::Result<String> {
        self.request_ok(&format!("HELLO {tenant}"))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> io::Result<String> {
        self.request_ok("PING")
    }

    /// Catalog listing (JSON array of snapshot descriptors).
    pub fn list(&mut self) -> io::Result<String> {
        self.request_ok("LIST")
    }

    /// Metrics snapshot (JSON).
    pub fn stats(&mut self) -> io::Result<String> {
        self.request_ok("STATS")
    }

    /// Send a `BATCH` of request lines, answered as one frame.
    pub fn batch(&mut self, lines: &[&str]) -> io::Result<Frame> {
        let mut msg = format!("BATCH {}\n", lines.len());
        for line in lines {
            debug_assert!(!line.contains('\n'));
            msg.push_str(line);
            msg.push('\n');
        }
        self.writer.write_all(msg.as_bytes())?;
        self.writer.flush()?;
        let (frame, id) = wire::read_frame_tagged(&mut self.reader)?;
        self.last_id = id;
        Ok(frame)
    }
}

/// Convenience: did this frame shed load (overloaded or timeout)?
pub fn is_shed(frame: &Frame) -> bool {
    matches!(
        frame,
        Frame::Err(ErrCode::Overloaded, _) | Frame::Err(ErrCode::Timeout, _)
    )
}
