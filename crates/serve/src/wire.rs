//! The `pygb-wire/1` framing layer.
//!
//! The protocol is a line-oriented request/response exchange over a
//! byte stream (TCP in practice, anything `Read + Write` in tests).
//! Requests are single LF-terminated lines of whitespace-separated
//! tokens; the one exception is `BATCH <k>`, which is followed by `k`
//! request lines that are answered as a unit.
//!
//! Responses are length-prefixed so payloads may contain anything but
//! are still parseable without lookahead:
//!
//! ```text
//! OK <nbytes>\n<payload bytes>\n
//! OK <nbytes> WARN <k>\n<payload bytes>\n<lint line> ×k
//! OK <nbytes> [WARN <k>] ID r<N>\n...
//! ERR <code> <nbytes> [ID r<N>]\n<message bytes>\n
//! ```
//!
//! `<nbytes>` counts the payload only, not the trailing newline. The
//! optional `WARN <k>` section carries `k` single-line analyzer lints
//! after the payload — advisory findings that did not fail the request
//! (a `replace` with no mask, a complemented empty mask, a lossy
//! cast). Error codes are the closed set of [`ErrCode`] names; clients
//! switch on the code, not the message.
//!
//! The optional trailing `ID r<N>` token echoes the server-minted
//! request ID, the handle the observability verbs (`EXPLAIN rN`,
//! `TAIL`, `SLOW`) use to name a past request. It is strictly the last
//! header token, so `pygb-wire/1` stays backward compatible: parsers
//! that know the token read it via [`read_frame_tagged`]; the framing
//! of payload and warnings is unchanged either way.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Protocol identifier sent back on `HELLO`.
pub const PROTOCOL: &str = "pygb-wire/1";

/// Hard cap on a request line (bytes), to bound memory per connection.
pub const MAX_LINE: usize = 1 << 20;

/// Hard cap on a response payload we are willing to read back.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// The closed set of structured error codes a server can return.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// The request line did not parse or referenced an unsupported verb.
    BadRequest,
    /// A named graph (or batch member graph) does not exist.
    NotFound,
    /// The server or tenant queue is at capacity; retry later.
    Overloaded,
    /// The request was admitted but waited past its deadline.
    Timeout,
    /// Execution failed server-side (semantics error, kernel error...).
    Internal,
}

impl ErrCode {
    /// Wire name of the code.
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::BadRequest => "bad-request",
            ErrCode::NotFound => "not-found",
            ErrCode::Overloaded => "overloaded",
            ErrCode::Timeout => "timeout",
            ErrCode::Internal => "internal",
        }
    }

    /// Parse a wire name back into a code.
    pub fn from_name(s: &str) -> Option<ErrCode> {
        Some(match s {
            "bad-request" => ErrCode::BadRequest,
            "not-found" => ErrCode::NotFound,
            "overloaded" => ErrCode::Overloaded,
            "timeout" => ErrCode::Timeout,
            "internal" => ErrCode::Internal,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One parsed response frame, as seen by a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// `OK` with its payload.
    Ok(String),
    /// `OK` with a payload plus analyzer lints (`WARN` section).
    OkWarn(String, Vec<String>),
    /// `ERR` with code and message.
    Err(ErrCode, String),
}

impl Frame {
    /// Unwrap into `Result`, mapping `ERR` to `(code, message)`.
    /// Warnings are advisory, so `OkWarn` unwraps to its payload.
    pub fn into_result(self) -> Result<String, (ErrCode, String)> {
        match self {
            Frame::Ok(p) | Frame::OkWarn(p, _) => Ok(p),
            Frame::Err(c, m) => Err((c, m)),
        }
    }

    /// The analyzer lints attached to this frame (empty unless
    /// `OkWarn`).
    pub fn warnings(&self) -> &[String] {
        match self {
            Frame::OkWarn(_, w) => w,
            _ => &[],
        }
    }
}

/// Write an `OK` frame.
pub fn write_ok(w: &mut impl Write, payload: &str) -> io::Result<()> {
    write_ok_tagged(w, payload, &[], None)
}

/// Write an `OK` frame with a `WARN` section. Each warning becomes one
/// LF-terminated line after the payload; embedded newlines are
/// flattened so the frame stays parseable.
pub fn write_ok_warn(w: &mut impl Write, payload: &str, warnings: &[String]) -> io::Result<()> {
    write_ok_tagged(w, payload, warnings, None)
}

/// Write an `OK` frame carrying optional warnings and an optional
/// request-ID echo (`ID r<N>`, strictly the last header token).
pub fn write_ok_tagged(
    w: &mut impl Write,
    payload: &str,
    warnings: &[String],
    id: Option<u64>,
) -> io::Result<()> {
    write!(w, "OK {}", payload.len())?;
    if !warnings.is_empty() {
        write!(w, " WARN {}", warnings.len())?;
    }
    if let Some(id) = id {
        write!(w, " ID r{id}")?;
    }
    write!(w, "\n{payload}\n")?;
    for warning in warnings {
        let flat = warning.replace(['\n', '\r'], " ");
        writeln!(w, "{flat}")?;
    }
    w.flush()
}

/// Write an `ERR` frame.
pub fn write_err(w: &mut impl Write, code: ErrCode, msg: &str) -> io::Result<()> {
    write_err_tagged(w, code, msg, None)
}

/// Write an `ERR` frame with an optional request-ID echo.
pub fn write_err_tagged(
    w: &mut impl Write,
    code: ErrCode,
    msg: &str,
    id: Option<u64>,
) -> io::Result<()> {
    write!(w, "ERR {} {}", code.name(), msg.len())?;
    if let Some(id) = id {
        write!(w, " ID r{id}")?;
    }
    write!(w, "\n{msg}\n")?;
    w.flush()
}

/// Read one LF-terminated request line. Returns `None` on a clean EOF
/// before any byte, an error on oversized or EOF-truncated lines.
pub fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = r
        .by_ref()
        .take(MAX_LINE as u64)
        .read_line(&mut line)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            if n >= MAX_LINE {
                "request line too long"
            } else {
                "truncated request line"
            },
        ));
    }
    line.truncate(line.trim_end_matches(['\n', '\r']).len());
    Ok(Some(line))
}

/// Read one response frame (client side), discarding any request-ID
/// echo. See [`read_frame_tagged`] to observe it.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Frame> {
    read_frame_tagged(r).map(|(frame, _)| frame)
}

/// Parse a trailing `ID r<N>` token, which must be the last header
/// token. `Ok(None)` when `tok` is `None` (no echo present).
fn parse_id_tail<'a>(
    mut toks: impl Iterator<Item = &'a str>,
    tok: Option<&str>,
) -> io::Result<Option<u64>> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    match tok {
        None => Ok(None),
        Some("ID") => {
            let id = toks
                .next()
                .and_then(|t| t.strip_prefix('r'))
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("malformed ID token"))?;
            if toks.next().is_some() {
                return Err(bad("trailing tokens after ID"));
            }
            Ok(Some(id))
        }
        Some(_) => Err(bad("malformed frame header")),
    }
}

/// Read one response frame plus the server's request-ID echo, if the
/// header carried one (`ID r<N>`).
pub fn read_frame_tagged(r: &mut impl BufRead) -> io::Result<(Frame, Option<u64>)> {
    let header = read_line(r)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"))?;
    let mut toks = header.split_ascii_whitespace();
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    match toks.next() {
        Some("OK") => {
            let n: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("malformed OK header"))?;
            let mut nwarn: usize = 0;
            let tail = match toks.next() {
                Some("WARN") => {
                    nwarn = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("malformed WARN count"))?;
                    toks.next()
                }
                other => other,
            };
            let id = parse_id_tail(&mut toks, tail)?;
            let payload = read_payload(r, n)?;
            if nwarn == 0 {
                return Ok((Frame::Ok(payload), id));
            }
            let mut warnings = Vec::with_capacity(nwarn);
            for _ in 0..nwarn {
                warnings.push(read_line(r)?.ok_or_else(|| bad("WARN section truncated by EOF"))?);
            }
            Ok((Frame::OkWarn(payload, warnings), id))
        }
        Some("ERR") => {
            let code = toks
                .next()
                .and_then(ErrCode::from_name)
                .ok_or_else(|| bad("malformed ERR code"))?;
            let n: usize = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("malformed ERR header"))?;
            let tail = toks.next();
            let id = parse_id_tail(&mut toks, tail)?;
            Ok((Frame::Err(code, read_payload(r, n)?), id))
        }
        _ => Err(bad("unknown frame type")),
    }
}

fn read_payload(r: &mut impl BufRead, n: usize) -> io::Result<String> {
    if n > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "payload too large",
        ));
    }
    let mut buf = vec![0u8; n + 1]; // payload + trailing '\n'
    r.read_exact(&mut buf)?;
    if buf.pop() != Some(b'\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "missing frame terminator",
        ));
    }
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Escape a string for embedding in a JSON payload.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn ok_frame_roundtrip() {
        let mut buf = Vec::new();
        write_ok(&mut buf, "{\"x\":1}\nline2").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Frame::Ok("{\"x\":1}\nline2".into())
        );
    }

    #[test]
    fn warn_frame_roundtrip() {
        let mut buf = Vec::new();
        write_ok_warn(
            &mut buf,
            "{\"x\":1}",
            &["lint one".to_string(), "lint\ntwo".to_string()],
        )
        .unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Frame::OkWarn(
                "{\"x\":1}".into(),
                vec!["lint one".into(), "lint two".into()]
            )
        );
        // No warnings degrades to a plain OK frame.
        let mut buf = Vec::new();
        write_ok_warn(&mut buf, "p", &[]).unwrap();
        assert_eq!(
            read_frame(&mut BufReader::new(&buf[..])).unwrap(),
            Frame::Ok("p".into())
        );
    }

    #[test]
    fn tagged_frames_roundtrip_and_stay_compatible() {
        // OK + ID.
        let mut buf = Vec::new();
        write_ok_tagged(&mut buf, "pong", &[], Some(42)).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame_tagged(&mut r).unwrap(),
            (Frame::Ok("pong".into()), Some(42))
        );
        // The ID-less reader still parses the frame (the echo is
        // strictly additive framing).
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap(), Frame::Ok("pong".into()));

        // OK + WARN + ID: ID comes last.
        let mut buf = Vec::new();
        write_ok_tagged(&mut buf, "p", &["lint".to_string()], Some(7)).unwrap();
        assert!(buf.starts_with(b"OK 1 WARN 1 ID r7\n"));
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame_tagged(&mut r).unwrap(),
            (Frame::OkWarn("p".into(), vec!["lint".into()]), Some(7))
        );

        // ERR + ID.
        let mut buf = Vec::new();
        write_err_tagged(&mut buf, ErrCode::Timeout, "late", Some(9)).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame_tagged(&mut r).unwrap(),
            (Frame::Err(ErrCode::Timeout, "late".into()), Some(9))
        );

        // Untagged frames read back with no ID.
        let mut buf = Vec::new();
        write_ok(&mut buf, "x").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_frame_tagged(&mut r).unwrap().1, None);

        // Malformed ID tokens are rejected.
        for header in ["OK 1 ID x1\n1\n", "OK 1 ID r1 junk\n1\n", "OK 1 BOGUS\n1\n"] {
            let mut r = BufReader::new(header.as_bytes());
            assert!(read_frame_tagged(&mut r).is_err(), "accepted: {header:?}");
        }
    }

    #[test]
    fn err_frame_roundtrip() {
        let mut buf = Vec::new();
        write_err(&mut buf, ErrCode::Overloaded, "queue full").unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Frame::Err(ErrCode::Overloaded, "queue full".into())
        );
    }

    #[test]
    fn every_code_roundtrips_by_name() {
        for code in [
            ErrCode::BadRequest,
            ErrCode::NotFound,
            ErrCode::Overloaded,
            ErrCode::Timeout,
            ErrCode::Internal,
        ] {
            assert_eq!(ErrCode::from_name(code.name()), Some(code));
        }
    }

    #[test]
    fn read_line_strips_crlf_and_detects_eof() {
        let mut r = BufReader::new(&b"LIST\r\n"[..]);
        assert_eq!(read_line(&mut r).unwrap(), Some("LIST".to_string()));
        assert_eq!(read_line(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_line_is_an_error() {
        let mut r = BufReader::new(&b"PING"[..]);
        assert!(read_line(&mut r).is_err());
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
