//! Admission control: bounded in-flight work, per-tenant fairness.
//!
//! Admission is decided *before* a request enters the worker queue and
//! is deliberately non-blocking: a request that cannot be admitted is
//! shed immediately with a structured `overloaded` response rather than
//! parked on the socket, so a saturated server stays responsive and a
//! greedy tenant cannot starve the rest (its requests bounce off the
//! per-tenant ceiling while other tenants still fit under the global
//! one).
//!
//! An admitted request holds a [`Ticket`]; dropping the ticket — on
//! completion, expiry, or panic unwind — releases both the global and
//! the per-tenant slot.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Tunable admission limits.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Global bound on admitted-but-unfinished requests (queued plus
    /// executing).
    pub max_inflight: usize,
    /// Per-tenant bound on admitted-but-unfinished requests.
    pub per_tenant: usize,
    /// How long an admitted request may wait in the worker queue before
    /// it is answered with `timeout` instead of being executed.
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight: 256,
            per_tenant: 128,
            queue_timeout: Duration::from_secs(5),
        }
    }
}

#[derive(Default)]
struct State {
    inflight: usize,
    per_tenant: HashMap<String, usize>,
}

struct Inner {
    cfg: AdmissionConfig,
    state: Mutex<State>,
}

/// The admission gate shared by all connection threads of a server.
#[derive(Clone)]
pub struct Admission {
    inner: Arc<Inner>,
}

/// Why a request was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The global in-flight bound is reached.
    ServerFull {
        /// The configured global bound.
        limit: usize,
    },
    /// The tenant's own bound is reached.
    TenantFull {
        /// The configured per-tenant bound.
        limit: usize,
    },
}

impl AdmitError {
    /// Human-readable shed reason for the `overloaded` response body.
    pub fn message(&self) -> String {
        match self {
            AdmitError::ServerFull { limit } => {
                format!("server at capacity ({limit} in-flight requests)")
            }
            AdmitError::TenantFull { limit } => {
                format!("tenant at capacity ({limit} in-flight requests)")
            }
        }
    }
}

impl Admission {
    /// A gate with the given limits.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            inner: Arc::new(Inner {
                cfg,
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> &AdmissionConfig {
        &self.inner.cfg
    }

    /// Try to admit one request for `tenant`. On success the returned
    /// [`Ticket`] owns the slot until dropped.
    pub fn admit(&self, tenant: &str) -> Result<Ticket, AdmitError> {
        let mut st = self.inner.state.lock();
        // `serve/shed_overloaded` stays the all-causes total;
        // `serve/shed_global` / `serve/shed_tenant` (and the server's
        // `serve/shed_queue_full`) attribute each shed to its ceiling
        // so admission behavior is diagnosable per cause.
        if st.inflight >= self.inner.cfg.max_inflight {
            pygb_obs::registry().counter("serve/shed_overloaded").inc();
            pygb_obs::registry().counter("serve/shed_global").inc();
            return Err(AdmitError::ServerFull {
                limit: self.inner.cfg.max_inflight,
            });
        }
        let per = st.per_tenant.entry(tenant.to_string()).or_insert(0);
        if *per >= self.inner.cfg.per_tenant {
            pygb_obs::registry().counter("serve/shed_overloaded").inc();
            pygb_obs::registry().counter("serve/shed_tenant").inc();
            return Err(AdmitError::TenantFull {
                limit: self.inner.cfg.per_tenant,
            });
        }
        *per += 1;
        st.inflight += 1;
        pygb_obs::registry().counter("serve/admitted").inc();
        Ok(Ticket {
            gate: Arc::clone(&self.inner),
            tenant: tenant.to_string(),
        })
    }

    /// Current number of admitted-but-unfinished requests.
    pub fn inflight(&self) -> usize {
        self.inner.state.lock().inflight
    }

    /// Current in-flight count for one tenant.
    pub fn tenant_inflight(&self, tenant: &str) -> usize {
        self.inner
            .state
            .lock()
            .per_tenant
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }
}

/// An owned admission slot; dropping it releases the slot.
pub struct Ticket {
    gate: Arc<Inner>,
    tenant: String,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock();
        st.inflight = st.inflight.saturating_sub(1);
        if let Some(per) = st.per_tenant.get_mut(&self.tenant) {
            *per = per.saturating_sub(1);
            if *per == 0 {
                st.per_tenant.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(max: usize, per: usize) -> Admission {
        Admission::new(AdmissionConfig {
            max_inflight: max,
            per_tenant: per,
            queue_timeout: Duration::from_millis(100),
        })
    }

    #[test]
    fn global_bound_sheds_then_recovers() {
        let g = gate(2, 10);
        let t1 = g.admit("a").unwrap();
        let _t2 = g.admit("b").unwrap();
        assert_eq!(
            g.admit("c").unwrap_err(),
            AdmitError::ServerFull { limit: 2 }
        );
        drop(t1);
        assert!(g.admit("c").is_ok());
    }

    #[test]
    fn tenant_bound_isolates_other_tenants() {
        let g = gate(10, 1);
        let _t1 = g.admit("greedy").unwrap();
        assert_eq!(
            g.admit("greedy").unwrap_err(),
            AdmitError::TenantFull { limit: 1 }
        );
        // Other tenants are unaffected by the greedy one being at cap.
        assert!(g.admit("polite").is_ok());
    }

    #[test]
    fn ticket_drop_releases_both_counters() {
        let g = gate(10, 10);
        {
            let _t = g.admit("a").unwrap();
            assert_eq!(g.inflight(), 1);
            assert_eq!(g.tenant_inflight("a"), 1);
        }
        assert_eq!(g.inflight(), 0);
        assert_eq!(g.tenant_inflight("a"), 0);
    }
}
