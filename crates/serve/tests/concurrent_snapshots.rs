//! Stress: N parallel query streams against a graph whose snapshot a
//! writer keeps swapping, plus a second static graph in the same
//! catalog. Every response must be oracle-exact *for the version it
//! reports* — a response mixing two versions (e.g. levels from v3 with
//! the node count of v4) fails the check.
//!
//! The version-keyed graph family makes the oracle deterministic: the
//! writer publishes path graphs whose length is a function of the
//! version, so a BFS response is fully predicted by the `version`
//! field it carries.

use pygb_serve::{Catalog, Client, ErrCode, Frame, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Path length for snapshot version `v` of the mutable graph.
fn path_len(version: u64) -> usize {
    8 + (version as usize % 7)
}

/// `REGISTER` line for the next version of the mutable graph, given
/// the version it will be assigned.
fn register_line(version: u64) -> String {
    let n = path_len(version);
    let triples: Vec<String> = (0..n - 1).map(|i| format!("{i}:{}:1", i + 1)).collect();
    format!("REGISTER swap TRIPLES {n} {n} fp64 {}", triples.join(","))
}

/// Exact expected BFS-from-0 payload fragment for a path of `n` nodes.
fn expected_levels(n: usize) -> String {
    let pairs: Vec<String> = (0..n).map(|i| format!("[{i},{}]", i + 1)).collect();
    format!("\"levels\":[{}]", pairs.join(","))
}

fn extract_version(payload: &str) -> u64 {
    let key = "\"version\":";
    let at = payload.find(key).expect("payload carries a version") + key.len();
    payload[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("version is numeric")
}

#[test]
fn parallel_queries_stay_oracle_exact_across_snapshot_swaps() {
    let server = Server::start(Arc::new(Catalog::new()), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Seed both graphs: the mutable one at version 1 and a static
    // second graph (a 5-cycle) that must stay untouched throughout.
    let mut seed = Client::connect(addr).unwrap();
    seed.hello("writer").unwrap();
    seed.request_ok(&register_line(1)).unwrap();
    seed.request_ok("REGISTER fixed TRIPLES 5 5 fp64 0:1:1,1:2:1,2:3:1,3:4:1,4:0:1")
        .unwrap();
    let fixed_oracle = "\"levels\":[[0,1],[1,2],[2,3],[3,4],[4,5]]";

    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicUsize::new(0));

    // Writer: keep swapping the `swap` graph to new versions.
    let writer = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.hello("writer").unwrap();
            let mut version = 2;
            while !stop.load(Ordering::Relaxed) {
                let info = c.request_ok(&register_line(version)).unwrap();
                assert!(
                    info.contains(&format!("\"version\":{version}")),
                    "writer saw {info}"
                );
                version += 1;
                thread::sleep(Duration::from_millis(1));
            }
            version - 1 // last published version
        })
    };

    // Readers: hammer both graphs; verify every response against the
    // oracle keyed by the version the response itself reports.
    let readers: Vec<_> = (0..16)
        .map(|r| {
            let stop = Arc::clone(&stop);
            let checked = Arc::clone(&checked);
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.hello(&format!("reader-{r}")).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let swap = c.request("QUERY swap BFS 0").unwrap();
                    match swap {
                        Frame::Ok(payload) | Frame::OkWarn(payload, _) => {
                            let v = extract_version(&payload);
                            let n = path_len(v);
                            assert!(
                                payload.contains(&expected_levels(n)),
                                "version {v} response is not the version-{v} graph: {payload}"
                            );
                            assert!(payload.contains(&format!("\"nvals\":{n}")), "{payload}");
                            checked.fetch_add(1, Ordering::Relaxed);
                        }
                        // Under stress the server may shed; that must be
                        // structured, never a hang or a wrong answer.
                        Frame::Err(ErrCode::Overloaded | ErrCode::Timeout, _) => {}
                        Frame::Err(code, msg) => panic!("unexpected error {code}: {msg}"),
                    }
                    let fixed = c.request("QUERY fixed BFS 0").unwrap();
                    match fixed {
                        Frame::Ok(payload) | Frame::OkWarn(payload, _) => {
                            assert!(payload.contains("\"version\":1"), "{payload}");
                            assert!(payload.contains(fixed_oracle), "{payload}");
                            checked.fetch_add(1, Ordering::Relaxed);
                        }
                        Frame::Err(ErrCode::Overloaded | ErrCode::Timeout, _) => {}
                        Frame::Err(code, msg) => panic!("unexpected error {code}: {msg}"),
                    }
                }
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(750));
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    let last_version = writer.join().unwrap();

    assert!(
        last_version >= 10,
        "writer only reached version {last_version}"
    );
    let total = checked.load(Ordering::Relaxed);
    assert!(total >= 100, "only {total} oracle-checked responses");

    // The final catalog state is the writer's last published version.
    let snap = server.catalog().get("swap").unwrap();
    assert_eq!(snap.version, last_version);
    assert_eq!(snap.graph.nrows(), path_len(last_version));
}

// ---------------------------------------------------------------------
// Streaming-mutation stress: versions published by UPDATE deltas.
// ---------------------------------------------------------------------

/// Capacity of the streaming graph (fixed at REGISTER time; UPDATE
/// never resizes).
const STREAM_CAP: usize = 360;

/// The streaming writer cycles three update kinds; update `u` (which
/// publishes version `u + 1`) is:
///   u % 3 == 1 → ADD a path-extension edge (end grows by one)
///   u % 3 == 2 → ADD a self-loop at vertex 0 (BFS-invisible)
///   u % 3 == 0 → DEL that self-loop
/// so the path length visible at version `v` is a pure function of `v`.
fn stream_path_len(version: u64) -> usize {
    8 + (version as usize - 1).div_ceil(3)
}

/// The UPDATE line for update number `u` (the one that publishes
/// version `u + 1`).
fn stream_update_line(u: u64) -> String {
    match u % 3 {
        1 => {
            let end = stream_path_len(u) - 1;
            format!("UPDATE stream ADD {end}:{}:1", end + 1)
        }
        2 => "UPDATE stream ADD 0:0:1".to_string(),
        _ => "UPDATE stream DEL 0:0".to_string(),
    }
}

#[test]
fn parallel_readers_stay_oracle_exact_across_streamed_updates() {
    let server = Server::start(Arc::new(Catalog::new()), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Version 1: an 8-vertex path 0→1→…→7 inside a fixed capacity.
    let mut seed = Client::connect(addr).unwrap();
    seed.hello("writer").unwrap();
    let base: Vec<String> = (0..7).map(|i| format!("{i}:{}:1", i + 1)).collect();
    seed.request_ok(&format!(
        "REGISTER stream TRIPLES {STREAM_CAP} {STREAM_CAP} fp64 {}",
        base.join(",")
    ))
    .unwrap();
    // A second streamed graph whose writer toggles one shortcut edge:
    // version even ⇔ edge 0→2 present. Exercises concurrent UPDATE
    // traffic on an independent catalog entry.
    seed.request_ok("REGISTER aux TRIPLES 3 3 fp64 0:1:1,1:2:1")
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicUsize::new(0));

    // Writer 1: stream the path/self-loop update cycle.
    let stream_writer = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.hello("stream-writer").unwrap();
            let mut u = 1u64;
            while !stop.load(Ordering::Relaxed) && u < 900 {
                let info = c.request_ok(&stream_update_line(u)).unwrap();
                assert!(
                    info.contains(&format!("\"version\":{}", u + 1)),
                    "update {u} saw {info}"
                );
                u += 1;
                thread::sleep(Duration::from_millis(1));
            }
            u // last published version
        })
    };

    // Writer 2: toggle the aux shortcut edge.
    let aux_writer = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.hello("aux-writer").unwrap();
            let mut version = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let line = if version % 2 == 1 {
                    "UPDATE aux ADD 0:2:1"
                } else {
                    "UPDATE aux DEL 0:2"
                };
                let info = c.request_ok(line).unwrap();
                version += 1;
                assert!(
                    info.contains(&format!("\"version\":{version}")),
                    "aux writer saw {info}"
                );
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // 16 readers: every response must match the oracle keyed by the
    // version the response itself reports — a mix of two delta
    // publications fails the check.
    let readers: Vec<_> = (0..16)
        .map(|r| {
            let stop = Arc::clone(&stop);
            let checked = Arc::clone(&checked);
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.hello(&format!("reader-{r}")).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    match c.request("QUERY stream BFS 0").unwrap() {
                        Frame::Ok(payload) | Frame::OkWarn(payload, _) => {
                            let v = extract_version(&payload);
                            let n = stream_path_len(v);
                            assert!(
                                payload.contains(&expected_levels(n)),
                                "version {v} response is not the version-{v} delta: {payload}"
                            );
                            // The self-loop never reaches new vertices.
                            assert!(payload.contains(&format!("\"nvals\":{n}")), "{payload}");
                            checked.fetch_add(1, Ordering::Relaxed);
                        }
                        Frame::Err(ErrCode::Overloaded | ErrCode::Timeout, _) => {}
                        Frame::Err(code, msg) => panic!("unexpected error {code}: {msg}"),
                    }
                    match c.request("QUERY aux BFS 0").unwrap() {
                        Frame::Ok(payload) | Frame::OkWarn(payload, _) => {
                            let v = extract_version(&payload);
                            let expect = if v.is_multiple_of(2) {
                                "\"levels\":[[0,1],[1,2],[2,2]]" // shortcut present
                            } else {
                                "\"levels\":[[0,1],[1,2],[2,3]]"
                            };
                            assert!(
                                payload.contains(expect),
                                "aux version {v} mismatch: {payload}"
                            );
                            checked.fetch_add(1, Ordering::Relaxed);
                        }
                        Frame::Err(ErrCode::Overloaded | ErrCode::Timeout, _) => {}
                        Frame::Err(code, msg) => panic!("unexpected error {code}: {msg}"),
                    }
                }
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(750));
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    aux_writer.join().unwrap();
    let last_version = stream_writer.join().unwrap();

    assert!(
        last_version >= 10,
        "stream writer only reached version {last_version}"
    );
    let total = checked.load(Ordering::Relaxed);
    assert!(total >= 100, "only {total} oracle-checked responses");

    // Final state: the last delta publication, exactly.
    let snap = server.catalog().get("stream").unwrap();
    assert_eq!(snap.version, last_version);
    let n = stream_path_len(last_version);
    let loop_present = (last_version - 1) % 3 == 2;
    assert_eq!(snap.graph.nvals(), n - 1 + usize::from(loop_present));
}

#[test]
fn concurrent_expr_writes_into_distinct_names_do_not_collide() {
    let server = Server::start(Arc::new(Catalog::new()), ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut seed = Client::connect(addr).unwrap();
    // 3-cycle adjacency; squaring it is a deterministic permutation.
    seed.request_ok("REGISTER base TRIPLES 3 3 fp64 0:1:1,1:2:1,2:0:1")
        .unwrap();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.hello(&format!("w{i}")).unwrap();
                let out = c
                    .request_ok(&format!(
                        "EXPR base MXM base SEMIRING ARITHMETIC INTO sq{i}"
                    ))
                    .unwrap();
                assert!(out.contains(&format!("\"name\":\"sq{i}\"")), "{out}");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // All eight results exist and are the same (correct) square.
    for i in 0..8 {
        let snap = server.catalog().get(&format!("sq{i}")).unwrap();
        assert_eq!(snap.graph.nvals(), 3);
        assert_eq!(snap.graph.get(0, 2).unwrap().as_f64(), 1.0);
        assert_eq!(snap.graph.get(1, 0).unwrap().as_f64(), 1.0);
        assert_eq!(snap.graph.get(2, 1).unwrap().as_f64(), 1.0);
    }
}

/// Hammer the process-wide flight recorder from many writer threads
/// while a reader drains it continuously: every drained record must be
/// internally consistent (the writer stamps all fields from its thread
/// ID, so a record mixing two writers' fields is a torn read the
/// seqlock failed to reject), and IDs unique to this test must never
/// appear twice.
#[test]
fn flight_recorder_survives_concurrent_writers_and_readers() {
    use pygb_obs::{recorder, Outcome, RequestRecord};

    // IDs far above anything the servers in this process mint.
    const BASE: u64 = 1 << 40;
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 2_000;

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for rec in recorder().tail(pygb_obs::RECORDER_CAPACITY) {
                    if rec.id < BASE {
                        continue; // someone else's traffic
                    }
                    let w = (rec.id - BASE) / PER_WRITER;
                    let i = (rec.id - BASE) % PER_WRITER;
                    // Every field is derived from (w, i); any mismatch
                    // is a torn record.
                    assert_eq!(rec.tenant, format!("writer-{w}"), "torn tenant in {rec:?}");
                    assert_eq!(rec.version, w * 1_000_000 + i, "torn version in {rec:?}");
                    assert_eq!(rec.queue_wait_ns, w, "torn queue_wait in {rec:?}");
                    assert_eq!(rec.exec_ns, i, "torn exec in {rec:?}");
                    checked += 1;
                }
            }
            checked
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            thread::spawn(move || {
                let tenant = format!("writer-{w}");
                for i in 0..PER_WRITER {
                    recorder().record(&RequestRecord {
                        id: BASE + w * PER_WRITER + i,
                        tenant: &tenant,
                        verb: "stress",
                        graph: "ring",
                        version: w * 1_000_000 + i,
                        queue_wait_ns: w,
                        exec_ns: i,
                        outcome: Outcome::Ok,
                        kernel_delta: 0,
                        opt_delta: 0,
                    });
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let checked = reader.join().unwrap();
    assert!(checked > 0, "reader never validated a record");

    // Final drain: no duplicate IDs from this test, newest-first order.
    let tail = recorder().tail(pygb_obs::RECORDER_CAPACITY);
    let mine: Vec<u64> = tail.iter().map(|r| r.id).filter(|&id| id >= BASE).collect();
    let mut dedup = mine.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), mine.len(), "duplicate IDs in the ring");
    assert!(
        tail.windows(2).all(|w| w[0].id >= w[1].id),
        "TAIL must be newest-first"
    );
}
