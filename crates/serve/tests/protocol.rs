//! Wire-protocol integration tests: every verb over a real socket,
//! structured errors, batching, and deterministic load shedding.

use pygb_serve::{AdmissionConfig, Catalog, Client, ErrCode, Frame, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn server() -> Server {
    Server::start(Arc::new(Catalog::new()), ServerConfig::default()).unwrap()
}

#[test]
fn hello_ping_list_roundtrip() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    let hello = c.hello("team-a").unwrap();
    assert!(hello.contains("\"protocol\":\"pygb-wire/1\""), "{hello}");
    assert!(hello.contains("\"tenant\":\"team-a\""), "{hello}");
    assert_eq!(c.ping().unwrap(), "pong");
    assert_eq!(c.list().unwrap(), "[]");
}

#[test]
fn register_query_drop_lifecycle() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    let info = c
        .request_ok("REGISTER g TRIPLES 4 4 fp64 0:1:1,1:2:1,2:3:1")
        .unwrap();
    assert!(info.contains("\"name\":\"g\""), "{info}");
    assert!(info.contains("\"version\":1"), "{info}");
    assert!(info.contains("\"nvals\":3"), "{info}");

    let bfs = c.request_ok("QUERY g BFS 0").unwrap();
    assert!(
        bfs.contains("\"levels\":[[0,1],[1,2],[2,3],[3,4]]"),
        "{bfs}"
    );

    // Upsert bumps the version; queries see the new graph.
    let info2 = c.request_ok("REGISTER g TRIPLES 2 2 fp64 0:1:1").unwrap();
    assert!(info2.contains("\"version\":2"), "{info2}");
    let bfs2 = c.request_ok("QUERY g BFS 0").unwrap();
    assert!(bfs2.contains("\"version\":2"), "{bfs2}");
    assert!(bfs2.contains("\"levels\":[[0,1],[1,2]]"), "{bfs2}");

    assert_eq!(c.request_ok("DROP g").unwrap(), "{\"dropped\":\"g\"}");
    assert_eq!(
        c.request("QUERY g BFS 0").unwrap(),
        Frame::Err(ErrCode::NotFound, "no graph named `g`".to_string())
    );
}

#[test]
fn structured_errors_keep_the_connection_usable() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    for (line, code) in [
        ("FROBNICATE", ErrCode::BadRequest),
        ("QUERY nope CC", ErrCode::NotFound),
        ("QUERY", ErrCode::BadRequest),
        ("REGISTER g ER x y z", ErrCode::BadRequest),
    ] {
        match c.request(line).unwrap() {
            Frame::Err(got, _) => assert_eq!(got, code, "line {line:?}"),
            Frame::Ok(p) | Frame::OkWarn(p, _) => panic!("line {line:?} unexpectedly ok: {p}"),
        }
    }
    // The connection survives every error above.
    assert_eq!(c.ping().unwrap(), "pong");
}

#[test]
fn all_five_algorithms_answer() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER g ER 100 600 42 SYM").unwrap();
    for (line, needle) in [
        ("QUERY g BFS 0", "\"algo\":\"bfs\""),
        ("QUERY g SSSP 0", "\"algo\":\"sssp\""),
        ("QUERY g PAGERANK 30", "\"algo\":\"pagerank\""),
        ("QUERY g TRICOUNT", "\"triangles\":"),
        ("QUERY g CC", "\"components\":"),
    ] {
        let out = c.request_ok(line).unwrap();
        assert!(out.contains(needle), "{line}: {out}");
        assert!(out.contains("\"version\":1"), "{line}: {out}");
    }
}

#[test]
fn expr_masked_into_catalog() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER a TRIPLES 2 2 fp64 0:0:1,0:1:2,1:0:3,1:1:4")
        .unwrap();
    c.request_ok("REGISTER m TRIPLES 2 2 fp64 0:0:1").unwrap();
    let info = c
        .request_ok("EXPR a MXM a SEMIRING ARITHMETIC MASK m INTO sq")
        .unwrap();
    assert!(info.contains("\"name\":\"sq\""), "{info}");
    // Only the masked position survives: (A@A)[0,0] = 1*1 + 2*3 = 7.
    let out = c.request_ok("EXPR sq EWADD sq BINOP Plus").unwrap();
    assert!(out.contains("\"nvals\":1"), "{out}");
    assert!(out.contains("[0,0,14]"), "{out}");
}

#[test]
fn update_add_del_roundtrip_over_the_wire() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER g TRIPLES 4 4 fp64 0:1:1,1:2:1,2:3:1")
        .unwrap();

    // Extend the path 0→1→2→3 with a back edge 3→0: BFS levels from 0
    // are unchanged (0 is already level 1), but nvals grows.
    let info = c.request_ok("UPDATE g ADD 3:0:1").unwrap();
    assert!(info.contains("\"version\":2"), "{info}");
    assert!(info.contains("\"nvals\":4"), "{info}");
    let bfs = c.request_ok("QUERY g BFS 0").unwrap();
    assert!(bfs.contains("\"version\":2"), "{bfs}");
    assert!(
        bfs.contains("\"levels\":[[0,1],[1,2],[2,3],[3,4]]"),
        "{bfs}"
    );

    // Cut 0→1: the rest of the path becomes unreachable from 0.
    let info = c.request_ok("UPDATE g DEL 0:1").unwrap();
    assert!(info.contains("\"version\":3"), "{info}");
    assert!(info.contains("\"nvals\":3"), "{info}");
    let bfs = c.request_ok("QUERY g BFS 0").unwrap();
    assert!(bfs.contains("\"levels\":[[0,1]]"), "{bfs}");

    // Deleting an absent edge is a no-op but still publishes.
    let info = c.request_ok("UPDATE g DEL 0:1").unwrap();
    assert!(info.contains("\"version\":4"), "{info}");
    assert!(info.contains("\"nvals\":3"), "{info}");
}

#[test]
fn update_errors_are_structured_and_connection_survives() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER g TRIPLES 2 2 fp64 0:1:1").unwrap();
    for (line, code) in [
        ("UPDATE ghost ADD 0:0:1", ErrCode::NotFound),
        ("UPDATE g ADD 9:9:1", ErrCode::BadRequest), // out of bounds
        ("UPDATE g ADD 0:1", ErrCode::BadRequest),   // malformed entry
        ("UPDATE g DEL 0:1:5", ErrCode::BadRequest), // DEL takes no value
        ("UPDATE g", ErrCode::BadRequest),
    ] {
        match c.request(line).unwrap() {
            Frame::Err(got, _) => assert_eq!(got, code, "line {line:?}"),
            Frame::Ok(p) | Frame::OkWarn(p, _) => panic!("line {line:?} unexpectedly ok: {p}"),
        }
    }
    // Failed updates never publish.
    assert_eq!(srv.catalog().get("g").unwrap().version, 1);
    assert_eq!(c.ping().unwrap(), "pong");
}

#[test]
fn update_values_cast_to_the_graph_dtype() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER g TRIPLES 2 2 int32 0:1:1").unwrap();
    let info = c.request_ok("UPDATE g ADD 1:0:3.7").unwrap();
    assert!(info.contains("\"dtype\":\"int32\""), "{info}");
    let snap = srv.catalog().get("g").unwrap();
    assert_eq!(snap.graph.get(1, 0).unwrap().as_i64(), 3);
}

#[test]
fn update_joins_register_and_query_in_a_batch() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    let frame = c
        .batch(&[
            "REGISTER g TRIPLES 3 3 fp64 0:1:1",
            "UPDATE g ADD 1:2:1",
            "QUERY g BFS 0",
        ])
        .unwrap();
    let Frame::Ok(payload) = frame else {
        panic!("batch failed: {frame:?}")
    };
    assert!(payload.contains("\"version\":2"), "{payload}");
    assert!(
        payload.contains("\"levels\":[[0,1],[1,2],[2,3]]"),
        "{payload}"
    );
}

#[test]
fn update_metrics_show_up_in_stats() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER g TRIPLES 2 2 fp64 0:1:1").unwrap();
    c.request_ok("UPDATE g ADD 1:0:1").unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.contains("serve/catalog_updates"), "{stats}");
    assert!(stats.contains("stream/update_batches"), "{stats}");
    assert!(stats.contains("stream/edges_added"), "{stats}");
}

#[test]
fn batch_reports_per_item_results() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER g TRIPLES 3 3 fp64 0:1:1,1:2:1")
        .unwrap();
    let frame = c
        .batch(&["QUERY g BFS 0", "QUERY ghost BFS 0", "QUERY g CC"])
        .unwrap();
    let Frame::Ok(payload) = frame else {
        panic!("batch failed: {frame:?}")
    };
    assert!(payload.starts_with("[{\"ok\":"), "{payload}");
    assert!(
        payload.contains("\"err\":{\"code\":\"not-found\""),
        "{payload}"
    );
    assert!(payload.contains("\"components\":"), "{payload}");
}

#[test]
fn replace_without_mask_surfaces_an_analyzer_warning() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER a TRIPLES 2 2 fp64 0:0:1,1:1:2")
        .unwrap();
    let (payload, warnings) = c
        .request_with_warnings("EXPR a EWADD a BINOP Plus REPLACE")
        .unwrap();
    assert!(payload.contains("\"triples\":"), "{payload}");
    assert!(
        warnings
            .iter()
            .any(|w| w.contains("replace without a mask")),
        "expected the replace-without-mask lint, got {warnings:?}"
    );
    // The same expression without REPLACE answers clean.
    let (_, clean) = c
        .request_with_warnings("EXPR a EWADD a BINOP Plus")
        .unwrap();
    assert!(clean.is_empty(), "unexpected warnings: {clean:?}");
}

#[test]
fn complemented_empty_mask_surfaces_an_analyzer_warning() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER a TRIPLES 2 2 fp64 0:0:1,1:1:2")
        .unwrap();
    // Empty the mask graph through the streaming path.
    c.request_ok("REGISTER m TRIPLES 2 2 fp64 0:0:1").unwrap();
    c.request_ok("UPDATE m DEL 0:0").unwrap();
    let (payload, warnings) = c
        .request_with_warnings("EXPR a EWADD a BINOP Plus MASK m COMPLEMENT")
        .unwrap();
    // The complement of an empty mask selects everything.
    assert!(payload.contains("\"nvals\":2"), "{payload}");
    assert!(
        warnings
            .iter()
            .any(|w| w.contains("complemented mask has no stored values")),
        "expected the empty-complement lint, got {warnings:?}"
    );
}

#[test]
fn batched_duplicate_exprs_cse_merge_into_one_dispatch() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER a TRIPLES 2 2 fp64 0:0:1,0:1:2,1:0:3,1:1:4")
        .unwrap();
    // The oracle: the same expression evaluated alone.
    let solo = c.request_ok("EXPR a MXM a SEMIRING ARITHMETIC").unwrap();

    let before = pygb_obs::registry().snapshot();
    let frame = c
        .batch(&[
            "EXPR a MXM a SEMIRING ARITHMETIC",
            "EXPR a MXM a SEMIRING ARITHMETIC",
            "EXPR a MXM a SEMIRING ARITHMETIC",
        ])
        .unwrap();
    let Frame::Ok(payload) = frame else {
        panic!("batch failed: {frame:?}")
    };
    let after = pygb_obs::registry().snapshot();

    // Every member answers, and answers exactly what the solo run did.
    let expected = format!("[{{\"ok\":{solo}}},{{\"ok\":{solo}}},{{\"ok\":{solo}}}]");
    assert_eq!(payload, expected, "grouped members must match the oracle");

    // The three identical members ran as one group; two collapsed.
    assert!(
        after.counter("serve/expr_grouped") - before.counter("serve/expr_grouped") >= 3,
        "consecutive EXPR members must be grouped"
    );
    assert!(
        after.counter("opt/cse_deduped") - before.counter("opt/cse_deduped") >= 2,
        "duplicate EXPR members must CSE-merge: {}",
        after.to_json()
    );
}

#[test]
fn expr_group_reports_per_member_errors_without_poisoning_the_rest() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER a TRIPLES 2 2 fp64 0:0:1,0:1:2")
        .unwrap();
    let frame = c
        .batch(&[
            "EXPR a EWADD a BINOP Plus",
            "EXPR a MXM ghost SEMIRING ARITHMETIC",
            "EXPR a EWMULT a BINOP Times",
        ])
        .unwrap();
    let Frame::Ok(payload) = frame else {
        panic!("batch failed: {frame:?}")
    };
    let items: Vec<&str> = payload
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split("},{")
        .collect();
    assert_eq!(items.len(), 3, "{payload}");
    assert!(items[0].contains("\"ok\":"), "{payload}");
    assert!(items[1].contains("\"code\":\"not-found\""), "{payload}");
    assert!(items[2].contains("\"ok\":"), "{payload}");
}

#[test]
fn batch_rejects_non_query_members() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    match c.batch(&["PING"]).unwrap() {
        Frame::Err(ErrCode::BadRequest, msg) => assert!(msg.contains("batch"), "{msg}"),
        other => panic!("expected bad-request, got {other:?}"),
    }
    assert_eq!(c.ping().unwrap(), "pong");
}

#[test]
fn zero_capacity_tenant_is_shed_with_overloaded() {
    let srv = Server::start(
        Arc::new(Catalog::new()),
        ServerConfig {
            admission: AdmissionConfig {
                max_inflight: 64,
                per_tenant: 0,
                queue_timeout: Duration::from_secs(5),
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    // Cheap verbs bypass admission and still work...
    assert_eq!(c.ping().unwrap(), "pong");
    // ...heavy ones shed gracefully instead of hanging or panicking.
    match c.request("REGISTER g ER 10 20 1").unwrap() {
        Frame::Err(ErrCode::Overloaded, msg) => {
            assert!(msg.contains("capacity"), "{msg}")
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert_eq!(c.ping().unwrap(), "pong");
}

#[test]
fn expired_queue_deadline_returns_timeout() {
    let srv = Server::start(
        Arc::new(Catalog::new()),
        ServerConfig {
            admission: AdmissionConfig {
                queue_timeout: Duration::ZERO, // every job expires in queue
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    match c.request("REGISTER g ER 10 20 1").unwrap() {
        Frame::Err(ErrCode::Timeout, msg) => assert!(msg.contains("expired"), "{msg}"),
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn stats_exposes_serve_metrics_and_tunables() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.request_ok("REGISTER g TRIPLES 2 2 fp64 0:1:1").unwrap();
    c.request_ok("QUERY g BFS 0").unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.contains("serve/requests"), "{stats}");
    assert!(stats.contains("serve/admitted"), "{stats}");
    assert!(stats.contains("serve/completed"), "{stats}");
    assert!(stats.contains("serve/catalog_registers"), "{stats}");
    assert!(stats.contains("serve/request_ns"), "{stats}");
    // The promoted push/pull density tunable is mirrored as metrics.
    assert!(stats.contains("tunables/push_pull_density_ppm"), "{stats}");
}

#[test]
fn request_spans_land_in_the_chrome_trace_export() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.hello("traced").unwrap();
    pygb_obs::enable();
    c.request_ok("REGISTER t TRIPLES 2 2 fp64 0:1:1").unwrap();
    c.request_ok("QUERY t BFS 0").unwrap();
    pygb_obs::disable();
    let trace = pygb_obs::chrome_trace_json();
    assert!(
        trace.contains("\"cat\":\"serve\""),
        "no serve spans: {trace}"
    );
    assert!(trace.contains("serve query tenant=traced"), "{trace}");
    assert!(trace.contains("serve register tenant=traced"), "{trace}");
}

#[test]
fn tenants_share_a_connectionless_catalog() {
    let srv = server();
    let mut a = Client::connect(srv.local_addr()).unwrap();
    let mut b = Client::connect(srv.local_addr()).unwrap();
    a.hello("tenant-a").unwrap();
    b.hello("tenant-b").unwrap();
    a.request_ok("REGISTER shared TRIPLES 2 2 fp64 0:1:1")
        .unwrap();
    let out = b.request_ok("QUERY shared BFS 0").unwrap();
    assert!(out.contains("\"graph\":\"shared\""), "{out}");
}

// ---------------------------------------------------------------------
// Request-scoped observability: IDs, the flight ring, EXPLAIN, METRICS.
// ---------------------------------------------------------------------

#[test]
fn responses_carry_request_ids_on_ok_and_err() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    assert!(c.last_request_id().is_none());
    c.ping().unwrap();
    let first = c.last_request_id().expect("OK frames carry an ID token");
    // Even a parse failure is addressable: the ID is minted before
    // parsing, so the bad-request frame still carries one.
    let frame = c.request("FROBNICATE").unwrap();
    assert!(
        matches!(frame, Frame::Err(ErrCode::BadRequest, _)),
        "{frame:?}"
    );
    let second = c.last_request_id().expect("ERR frames carry an ID token");
    assert!(second > first, "IDs are monotone: r{first} then r{second}");
}

#[test]
fn tail_and_slow_expose_the_flight_ring() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.hello("ringer").unwrap();
    c.request_ok("REGISTER ringg TRIPLES 3 3 fp64 0:1:1,1:2:1")
        .unwrap();
    c.request_ok("QUERY ringg BFS 0").unwrap();
    let qid = c.last_request_id().unwrap();
    // A failing heavy request is recorded too, with its error outcome.
    let _ = c.request("QUERY missing-graph BFS 0").unwrap();
    let eid = c.last_request_id().unwrap();

    let tail = c.request_ok("TAIL 4096").unwrap();
    let ok_rec = format!(
        "{{\"id\":\"r{qid}\",\"tenant\":\"ringer\",\"verb\":\"query\",\"graph\":\"ringg\",\"version\":1"
    );
    assert!(tail.contains(&ok_rec), "no record for r{qid}: {tail}");
    let err_rec = format!("{{\"id\":\"r{eid}\",");
    assert!(tail.contains(&err_rec), "no record for r{eid}: {tail}");
    let err_entry = tail
        .split("},{")
        .find(|e| e.contains(&format!("\"id\":\"r{eid}\"")))
        .unwrap();
    assert!(err_entry.contains("\"outcome\":\"error\""), "{err_entry}");

    // SLOW surfaces the same records, ranked by exec time.
    let slow = c.request_ok("SLOW 4096").unwrap();
    assert!(slow.contains(&format!("\"id\":\"r{qid}\"")), "{slow}");

    // Cheap verbs (PING, TAIL itself) must not pollute the ring.
    c.ping().unwrap();
    let ping_id = c.last_request_id().unwrap();
    let tail2 = c.request_ok("TAIL 4096").unwrap();
    assert!(
        !tail2.contains(&format!("\"id\":\"r{ping_id}\"")),
        "PING leaked into the flight ring: {tail2}"
    );
}

#[test]
fn explain_unknown_id_is_not_found() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    let frame = c.request("EXPLAIN r987654321987").unwrap();
    match frame {
        Frame::Err(ErrCode::NotFound, msg) => {
            assert!(msg.contains("r987654321987"), "{msg}");
        }
        other => panic!("want not-found, got {other:?}"),
    }
    // Bad ID syntax is a bad-request, not a crash.
    let frame = c.request("EXPLAIN banana").unwrap();
    assert!(
        matches!(frame, Frame::Err(ErrCode::BadRequest, _)),
        "{frame:?}"
    );
}

#[test]
fn slow_request_is_findable_and_explainable_by_id() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.hello("sleuth").unwrap();
    // Capture everything while this test drives the loop end-to-end:
    // heavy EXPR -> ID on the response -> findable via SLOW -> full
    // plan + per-node timings via EXPLAIN.
    c.request_ok("SLOW THRESHOLD 1").unwrap();
    c.request_ok("REGISTER sg TRIPLES 4 4 fp64 0:0:1,0:1:2,1:0:3,1:1:4,2:3:1,3:2:1")
        .unwrap();
    c.request_ok("EXPR sg MXM sg SEMIRING ARITHMETIC").unwrap();
    let id = c.last_request_id().unwrap();

    let slow = c.request_ok("SLOW 4096").unwrap();
    assert!(slow.contains(&format!("\"id\":\"r{id}\"")), "{slow}");

    let explain = c.request_ok(&format!("EXPLAIN r{id}")).unwrap();
    assert!(
        explain.contains(&format!("request r{id} tenant=sleuth verb=expr")),
        "{explain}"
    );
    assert!(
        explain.contains("--- plan (captured pre-flush) ---"),
        "{explain}"
    );
    assert!(
        explain.contains("--- execution (per-node measured ns) ---"),
        "{explain}"
    );
    assert!(
        explain.contains(&format!("trace report [r{id}]")),
        "{explain}"
    );

    // QUERY verbs flush inside library code: no pre-flush plan window,
    // but the per-node report is still captured and attributed.
    c.request_ok("QUERY sg BFS 0").unwrap();
    let qid = c.last_request_id().unwrap();
    let explain = c.request_ok(&format!("EXPLAIN r{qid}")).unwrap();
    assert!(explain.contains("--- plan unavailable"), "{explain}");

    c.request_ok(&format!("SLOW THRESHOLD {}", pygb_serve::DEFAULT_SLOW_NS))
        .unwrap();
}

#[test]
fn metrics_verb_emits_prometheus_exposition() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.hello("promtenant").unwrap();
    c.request_ok("REGISTER pm TRIPLES 2 2 fp64 0:1:1").unwrap();
    c.request_ok("QUERY pm BFS 0").unwrap();
    let m = c.request_ok("METRICS").unwrap();
    assert!(m.contains("# TYPE pygb_serve_requests counter"), "{m}");
    assert!(m.contains("# TYPE pygb_serve_request_ns histogram"), "{m}");
    assert!(m.contains("pygb_serve_request_ns_bucket"), "{m}");
    assert!(m.contains("le=\"+Inf\""), "{m}");
    // Labeled series: per-tenant/per-verb request latency + outcomes.
    assert!(
        m.contains("tenant=\"promtenant\"") && m.contains("verb=\"query\""),
        "{m}"
    );
    // The live slow threshold is mirrored into the exposition.
    assert!(m.contains("pygb_tunables_slow_ns"), "{m}");
}

#[test]
fn trace_dump_writes_chrome_trace_on_demand() {
    let srv = server();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.hello("dumper").unwrap();
    pygb_obs::enable();
    c.request_ok("REGISTER tdg TRIPLES 2 2 fp64 0:1:1").unwrap();
    c.request_ok("QUERY tdg BFS 0").unwrap();
    pygb_obs::disable();
    let path = std::env::temp_dir().join(format!("pygb_trace_dump_{}.json", std::process::id()));
    let out = c
        .request_ok(&format!("TRACE DUMP {}", path.display()))
        .unwrap();
    assert!(out.contains("\"dumped\""), "{out}");
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("\"traceEvents\":["), "{body}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn shed_requests_are_recorded_with_their_cause() {
    let srv = Server::start(
        Arc::new(Catalog::new()),
        ServerConfig {
            admission: AdmissionConfig {
                max_inflight: 10,
                per_tenant: 0,
                queue_timeout: Duration::from_millis(200),
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    c.hello("shed-me").unwrap();
    let frame = c.request("QUERY g BFS 0").unwrap();
    assert!(
        matches!(frame, Frame::Err(ErrCode::Overloaded, _)),
        "{frame:?}"
    );
    let id = c.last_request_id().unwrap();
    let tail = c.request_ok("TAIL 4096").unwrap();
    let entry = tail
        .split("},{")
        .find(|e| e.contains(&format!("\"id\":\"r{id}\"")))
        .unwrap_or_else(|| panic!("shed request r{id} not recorded: {tail}"));
    assert!(entry.contains("\"outcome\":\"shed-tenant\""), "{entry}");
}
