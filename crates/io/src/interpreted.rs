//! A good-faith model of the CPython object costs that dominate the
//! Python side of Fig. 11.
//!
//! In CPython, `gb.Matrix((vals, (row_idx, col_idx)))` starts from
//! *lists of PyObjects*: every value and every index is a separate
//! heap-allocated, reference-counted object, and every access goes
//! through a dynamic call the interpreter cannot inline. A flat
//! `Vec<DynScalar>` has none of those costs once the optimizer inlines
//! the enum match, so the interpreted benchmarks would be
//! indistinguishable from native.
//!
//! [`PyValue`] restores the load-bearing costs without fake sleeps:
//! one heap allocation per object ([`Box`]) and `#[inline(never)]`
//! accessors (an opaque call per element, like a CPython C-API call).

use pygb::DynScalar;

/// One "PyObject": a heap-boxed dynamically-typed value.
#[derive(Debug, Clone, PartialEq)]
pub struct PyValue(Box<DynScalar>);

impl PyValue {
    /// Allocate a new object.
    #[inline(never)]
    pub fn new(v: impl Into<DynScalar>) -> PyValue {
        PyValue(Box::new(v.into()))
    }

    /// Dynamic `float(x)` — opaque call + pointer chase.
    #[inline(never)]
    pub fn as_f64(&self) -> f64 {
        self.0.as_f64()
    }

    /// Dynamic `int(x)`.
    #[inline(never)]
    pub fn as_usize(&self) -> usize {
        self.0.as_i64() as usize
    }

    /// The boxed value (one more dynamic call).
    #[inline(never)]
    pub fn value(&self) -> DynScalar {
        *self.0
    }
}

/// A "Python list" of boxed objects.
pub type PyList = Vec<PyValue>;

/// The `(vals, (row_idx, col_idx))` triple-of-lists the paper's
/// constructor takes (Fig. 3a).
#[derive(Debug, Clone)]
pub struct PyCoo {
    /// Matrix dimension (square).
    pub n: usize,
    /// Values, one boxed object each.
    pub vals: PyList,
    /// Row indices, boxed.
    pub row_idx: PyList,
    /// Column indices, boxed.
    pub col_idx: PyList,
}

impl PyCoo {
    /// Box an edge list into Python-style parallel lists (each element
    /// is a separate heap allocation).
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> PyCoo {
        let mut vals = Vec::with_capacity(edges.len());
        let mut row_idx = Vec::with_capacity(edges.len());
        let mut col_idx = Vec::with_capacity(edges.len());
        for &(s, d, w) in edges {
            row_idx.push(PyValue::new(s as i64));
            col_idx.push(PyValue::new(d as i64));
            vals.push(PyValue::new(w));
        }
        PyCoo {
            n,
            vals,
            row_idx,
            col_idx,
        }
    }

    /// Number of boxed entries.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the lists are empty.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The interpreted construction step: walk the lists, unboxing
    /// every element through dynamic calls, and build the container.
    pub fn to_matrix(&self, dtype: pygb::DType) -> pygb::Result<pygb::Matrix> {
        let mut triples = Vec::with_capacity(self.len());
        for k in 0..self.len() {
            triples.push((
                self.row_idx[k].as_usize(),
                self.col_idx[k].as_usize(),
                self.vals[k].value(),
            ));
        }
        pygb::Matrix::from_triples_dyn(self.n, self.n, &triples, Some(dtype))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygb::DType;

    #[test]
    fn pyvalue_roundtrip() {
        let v = PyValue::new(2.5f64);
        assert_eq!(v.as_f64(), 2.5);
        assert_eq!(v.value(), DynScalar::Fp64(2.5));
        let i = PyValue::new(7i64);
        assert_eq!(i.as_usize(), 7);
    }

    #[test]
    fn pycoo_builds_the_same_matrix_as_the_fast_path() {
        let edges = vec![(0usize, 1usize, 1.5f64), (2, 0, -2.0)];
        let coo = PyCoo::from_edges(3, &edges);
        assert_eq!(coo.len(), 2);
        let slow = coo.to_matrix(DType::Fp64).unwrap();
        let fast = crate::EdgeList { n: 3, edges }.to_pygb(DType::Fp64);
        assert_eq!(slow.extract_triples(), fast.extract_triples());
    }

    #[test]
    fn each_element_is_its_own_allocation() {
        // Boxes are distinct allocations: mutating a clone of the list
        // cannot alias (smoke test that we actually box).
        let coo = PyCoo::from_edges(2, &[(0, 1, 1.0)]);
        let copy = coo.clone();
        assert_eq!(coo.vals[0], copy.vals[0]);
        assert_ne!(
            &*coo.vals[0].0 as *const DynScalar,
            &*copy.vals[0].0 as *const DynScalar
        );
    }
}
