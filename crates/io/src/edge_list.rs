//! Weighted edge lists — the common interchange format between
//! generators, file I/O, and the two container layers.

use gbtl::Scalar;
use pygb::{DType, Matrix};

/// A directed, weighted edge list over `n` vertices.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeList {
    /// Number of vertices.
    pub n: usize,
    /// `(src, dst, weight)` triples. May contain both directions of an
    /// undirected edge; never contains duplicates of the same ordered
    /// pair unless explicitly constructed so.
    pub edges: Vec<(usize, usize, f64)>,
}

impl EdgeList {
    /// An empty edge list.
    pub fn new(n: usize) -> Self {
        EdgeList {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of directed edges.
    pub fn nnz(&self) -> usize {
        self.edges.len()
    }

    /// Add the reverse of every edge (undirected closure). Existing
    /// symmetric pairs are preserved; duplicates are merged keeping the
    /// first weight.
    pub fn symmetrize(mut self) -> Self {
        let mut seen: std::collections::HashSet<(usize, usize)> =
            self.edges.iter().map(|&(s, d, _)| (s, d)).collect();
        let reversed: Vec<(usize, usize, f64)> = self
            .edges
            .iter()
            .filter(|&&(s, d, _)| s != d && !seen.contains(&(d, s)))
            .map(|&(s, d, w)| (d, s, w))
            .collect();
        for &(s, d, _) in &reversed {
            seen.insert((s, d));
        }
        self.edges.extend(reversed);
        self
    }

    /// Build a statically-typed GBTL matrix (duplicates combined by
    /// keeping the last value).
    pub fn to_gbtl<T: Scalar>(&self) -> gbtl::Matrix<T> {
        gbtl::Matrix::from_triples_dedup_with(
            self.n,
            self.n,
            self.edges.iter().map(|&(s, d, w)| (s, d, T::from_f64(w))),
            |_, b| b,
        )
        .expect("generator edges are in range")
    }

    /// Build a dynamically-typed PyGB matrix of the given dtype through
    /// the *typed* fast path.
    pub fn to_pygb(&self, dtype: DType) -> Matrix {
        let m: gbtl::Matrix<f64> = self.to_gbtl();
        if dtype == DType::Fp64 {
            Matrix::from_typed(m)
        } else {
            Matrix::from_typed(m).cast(dtype)
        }
    }

    /// Build a PyGB matrix through the *interpreted* path: every value
    /// and index becomes a separate heap-boxed object, then the
    /// container is built through per-element dynamic calls — the
    /// CPython analog measured in Fig. 11.
    pub fn to_pygb_interpreted(&self, dtype: DType) -> pygb::Result<Matrix> {
        crate::interpreted::PyCoo::from_edges(self.n, &self.edges).to_matrix(dtype)
    }

    /// Replace every weight with `1.0` — the 0/1 pattern triangle
    /// counting and BFS need (wedge *counts*, not weight products).
    pub fn unweighted(mut self) -> EdgeList {
        for e in &mut self.edges {
            e.2 = 1.0;
        }
        self
    }

    /// The strictly-lower-triangular half (triangle counting input).
    pub fn lower_triangular(&self) -> EdgeList {
        EdgeList {
            n: self.n,
            edges: self
                .edges
                .iter()
                .copied()
                .filter(|&(s, d, _)| d < s)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EdgeList {
        EdgeList {
            n: 3,
            edges: vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)],
        }
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let g = triangle().symmetrize();
        assert_eq!(g.nnz(), 6);
        assert!(g.edges.contains(&(1, 0, 1.0)));
        // Symmetrizing again is a no-op.
        assert_eq!(g.clone().symmetrize().nnz(), 6);
    }

    #[test]
    fn to_gbtl_types() {
        let g = triangle();
        let m: gbtl::Matrix<f64> = g.to_gbtl();
        assert_eq!(m.nvals(), 3);
        assert_eq!(m.get(0, 1), Some(1.0));
        let b: gbtl::Matrix<bool> = g.to_gbtl();
        assert_eq!(b.get(1, 2), Some(true));
    }

    #[test]
    fn pygb_paths_agree() {
        let g = triangle().symmetrize();
        let fast = g.to_pygb(DType::Fp64);
        let slow = g.to_pygb_interpreted(DType::Fp64).unwrap();
        assert_eq!(fast.extract_triples(), slow.extract_triples());
        assert_eq!(fast.dtype(), slow.dtype());
    }

    #[test]
    fn lower_triangular() {
        let l = triangle().symmetrize().lower_triangular();
        assert_eq!(l.nnz(), 3);
        assert!(l.edges.iter().all(|&(s, d, _)| d < s));
    }

    #[test]
    fn self_loops_not_duplicated_by_symmetrize() {
        let g = EdgeList {
            n: 2,
            edges: vec![(0, 0, 1.0), (0, 1, 2.0)],
        }
        .symmetrize();
        assert_eq!(g.nnz(), 3); // loop + both directions
    }
}
