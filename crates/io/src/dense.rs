//! Dense helpers — stand-ins for the NumPy / SciPy constructors of
//! Fig. 3b: `np.random.rand(r, c)` and
//! `scipy.sparse.diags(values, offsets, shape)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pygb::Matrix;

/// `np.random.rand(rows, cols)`: a dense matrix of uniform `[0, 1)`
/// values, deterministic per seed.
pub fn random_dense(rows: usize, cols: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

/// `gb.Matrix(np.random.rand(r, c))` in one call.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_dense(&random_dense(rows, cols, seed)).expect("rectangular by construction")
}

/// `scipy.sparse.diags(values, offsets, shape)`: place constant
/// diagonals. `offsets[k]` is the diagonal index (0 main, positive
/// above, negative below); `values[k]` fills that whole diagonal.
pub fn diags(values: &[f64], offsets: &[i64], shape: (usize, usize)) -> pygb::Result<Matrix> {
    assert_eq!(
        values.len(),
        offsets.len(),
        "diags: values and offsets must pair up"
    );
    let (r, c) = shape;
    let mut triples: Vec<(usize, usize, f64)> = Vec::new();
    for (&v, &off) in values.iter().zip(offsets) {
        let (mut i, mut j) = if off >= 0 {
            (0usize, off as usize)
        } else {
            ((-off) as usize, 0usize)
        };
        while i < r && j < c {
            triples.push((i, j, v));
            i += 1;
            j += 1;
        }
    }
    Matrix::from_triples(r, c, triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dense_deterministic() {
        let a = random_dense(3, 4, 9);
        let b = random_dense(3, 4, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].len(), 4);
        assert!(a.iter().flatten().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn random_matrix_is_dense() {
        let m = random_matrix(3, 3, 1);
        assert_eq!(m.nvals(), 9);
        assert_eq!(m.dtype(), pygb::DType::Fp64);
    }

    #[test]
    fn tridiagonal_like_fig3() {
        // sc.sparse.diags([1, 1, 1], [-1, 0, 1], shape=(3, 3))
        let m = diags(&[1.0, 1.0, 1.0], &[-1, 0, 1], (3, 3)).unwrap();
        assert_eq!(m.nvals(), 7); // 3 main + 2 + 2
        assert_eq!(m.get(0, 0).unwrap().as_f64(), 1.0);
        assert_eq!(m.get(1, 0).unwrap().as_f64(), 1.0);
        assert_eq!(m.get(0, 1).unwrap().as_f64(), 1.0);
        assert!(m.get(0, 2).is_none());
    }

    #[test]
    fn rectangular_diags() {
        let m = diags(&[2.0], &[1], (2, 4)).unwrap();
        assert_eq!(m.nvals(), 2); // (0,1) and (1,2)
        assert_eq!(m.get(1, 2).unwrap().as_f64(), 2.0);
    }

    #[test]
    fn far_offset_empty() {
        let m = diags(&[1.0], &[10], (3, 3)).unwrap();
        assert_eq!(m.nvals(), 0);
    }
}
