//! Graph generators — the workloads of the paper's evaluation.
//!
//! Fig. 10 and Fig. 11 both use Erdős–Rényi graphs "with density
//! |E| = O(|V|^1.5)"; Fig. 3b constructs from `nx.balanced_tree(r, h)`
//! and `scipy.sparse.diags`. All generators are deterministic given a
//! seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;

/// An Erdős–Rényi `G(n, m)` digraph: exactly `m` distinct directed
/// edges (no self-loops), weights uniform in `(0, 1]`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2, "need at least 2 vertices");
    let max_edges = n * (n - 1);
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s == d || !seen.insert((s, d)) {
            continue;
        }
        let w: f64 = rng.gen_range(f64::EPSILON..=1.0);
        edges.push((s, d, w));
    }
    EdgeList { n, edges }
}

/// The paper's scaling family: `G(n, m)` with `m = ⌊n^1.5⌋` —
/// "Erdős–Rényi graphs with density |E| = O(|V|^1.5)".
pub fn erdos_renyi_power(n: usize, seed: u64) -> EdgeList {
    let m = (n as f64).powf(1.5) as usize;
    erdos_renyi(n, m, seed)
}

/// `nx.balanced_tree(r, h)`: a perfectly balanced `r`-ary tree of
/// height `h`, as an undirected graph (both edge directions).
pub fn balanced_tree(r: usize, h: u32) -> EdgeList {
    assert!(r >= 2, "branching factor must be at least 2");
    // n = (r^(h+1) - 1) / (r - 1)
    let n = (r.pow(h + 1) - 1) / (r - 1);
    let mut edges = Vec::with_capacity(2 * (n - 1));
    for child in 1..n {
        let parent = (child - 1) / r;
        edges.push((parent, child, 1.0));
        edges.push((child, parent, 1.0));
    }
    EdgeList { n, edges }
}

/// A directed path `0 → 1 → … → n-1`.
pub fn path_graph(n: usize) -> EdgeList {
    EdgeList {
        n,
        edges: (0..n.saturating_sub(1)).map(|i| (i, i + 1, 1.0)).collect(),
    }
}

/// A directed cycle `0 → 1 → … → n-1 → 0`.
pub fn cycle_graph(n: usize) -> EdgeList {
    EdgeList {
        n,
        edges: (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect(),
    }
}

/// The complete digraph on `n` vertices (no self-loops).
pub fn complete_graph(n: usize) -> EdgeList {
    let mut edges = Vec::with_capacity(n * (n - 1));
    for s in 0..n {
        for d in 0..n {
            if s != d {
                edges.push((s, d, 1.0));
            }
        }
    }
    EdgeList { n, edges }
}

/// An R-MAT graph: `2^scale` vertices, `edge_factor · 2^scale` edge
/// samples recursively placed with quadrant probabilities
/// `(a, b, c, d)`. Duplicates are dropped (so `nnz ≤` the sample
/// count), matching the usual Graph500-style generator.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> EdgeList {
    let (a, b, c, d) = probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "R-MAT probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let samples = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(samples * 2);
    let mut edges = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (mut s, mut dst) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (down, right) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            s |= down << level;
            dst |= right << level;
        }
        if s != dst && seen.insert((s, dst)) {
            let w: f64 = rng.gen_range(f64::EPSILON..=1.0);
            edges.push((s, dst, w));
        }
    }
    EdgeList { n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_has_requested_edges() {
        let g = erdos_renyi(32, 100, 7);
        assert_eq!(g.n, 32);
        assert_eq!(g.nnz(), 100);
        // No self-loops, no duplicates, in range.
        let mut seen = std::collections::HashSet::new();
        for &(s, d, w) in &g.edges {
            assert_ne!(s, d);
            assert!(s < 32 && d < 32);
            assert!(w > 0.0 && w <= 1.0);
            assert!(seen.insert((s, d)));
        }
    }

    #[test]
    fn er_is_deterministic() {
        assert_eq!(erdos_renyi(16, 40, 3), erdos_renyi(16, 40, 3));
        assert_ne!(erdos_renyi(16, 40, 3), erdos_renyi(16, 40, 4));
    }

    #[test]
    fn er_power_density() {
        let g = erdos_renyi_power(64, 1);
        assert_eq!(g.nnz(), 512); // 64^1.5
    }

    #[test]
    fn er_caps_at_complete() {
        let g = erdos_renyi(4, 1000, 1);
        assert_eq!(g.nnz(), 12);
    }

    #[test]
    fn balanced_tree_shape() {
        // r=2, h=2: 7 vertices, 6 undirected edges.
        let t = balanced_tree(2, 2);
        assert_eq!(t.n, 7);
        assert_eq!(t.nnz(), 12);
        // Root has children 1 and 2.
        assert!(t.edges.contains(&(0, 1, 1.0)));
        assert!(t.edges.contains(&(0, 2, 1.0)));
        // Leaf 6's parent is 2 ((6-1)/2).
        assert!(t.edges.contains(&(2, 6, 1.0)));
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(path_graph(4).nnz(), 3);
        assert_eq!(cycle_graph(4).nnz(), 4);
        assert!(cycle_graph(4).edges.contains(&(3, 0, 1.0)));
    }

    #[test]
    fn complete_graph_size() {
        let k = complete_graph(5);
        assert_eq!(k.nnz(), 20);
    }

    #[test]
    fn rmat_basics() {
        let g = rmat(6, 8, (0.57, 0.19, 0.19, 0.05), 42);
        assert_eq!(g.n, 64);
        assert!(g.nnz() > 0 && g.nnz() <= 8 * 64);
        assert_eq!(
            g,
            rmat(6, 8, (0.57, 0.19, 0.19, 0.05), 42) // deterministic
        );
        // Skew: low-id vertices should carry more edges than high-id.
        let low: usize = g.edges.iter().filter(|&&(s, _, _)| s < 16).count();
        let high: usize = g.edges.iter().filter(|&&(s, _, _)| s >= 48).count();
        assert!(low > high, "low={low} high={high}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_validates_probs() {
        rmat(4, 2, (0.5, 0.5, 0.5, 0.5), 1);
    }
}
