//! # pygb-io — I/O and workload generation for the PyGB reproduction
//!
//! Covers the data paths of the paper's Fig. 3 ("construction from
//! NumPy / SciPy / NetworkX") and the Fig. 11 experiment (file read /
//! container construction / extraction, Python vs C++):
//!
//! * [`matrix_market`] — Matrix Market coordinate files, with a
//!   **native** typed parser and a deliberately **interpreted** parser
//!   that boxes every token (the CPython-list stand-in, see
//!   [`interpreted`]).
//! * [`generators`] — Erdős–Rényi (including the paper's
//!   `|E| = O(|V|^1.5)` density), balanced trees (NetworkX's
//!   `balanced_tree`), R-MAT, cycles, paths, complete graphs.
//! * [`dense`] — dense helpers standing in for NumPy arrays and SciPy's
//!   `diags`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dense;
pub mod edge_list;
pub mod generators;
pub mod interpreted;
pub mod matrix_market;

pub use edge_list::EdgeList;
