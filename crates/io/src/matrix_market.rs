//! Matrix Market coordinate files — the "read a matrix from a file on
//! disk" leg of Fig. 11.
//!
//! Two read paths exist on purpose:
//!
//! * [`read_native`] parses straight into a typed `gbtl::Matrix<f64>` —
//!   the C++ side of Fig. 11 ("C++ is much faster at this operation").
//! * [`read_interpreted`] mimics the Python side: every token becomes a
//!   separately heap-boxed object in Python-style lists (see
//!   [`crate::interpreted`]), then the container is built through
//!   per-element dynamic calls.
//!
//! Supported header: `%%MatrixMarket matrix coordinate
//! {real|integer|pattern} {general|symmetric}`. Indices are 1-based in
//! the file, 0-based in memory.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};

use gbtl::{GblasError, Matrix as GMatrix};
use pygb::{DType, Matrix};

use crate::edge_list::EdgeList;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed header or body.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Entries were inconsistent with the declared shape.
    Graphblas(GblasError),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            MmError::Graphblas(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

impl From<GblasError> for MmError {
    fn from(e: GblasError) -> Self {
        MmError::Graphblas(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> MmError {
    MmError::Parse {
        line,
        message: message.into(),
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Symmetry {
    General,
    Symmetric,
}

struct Header {
    field: Field,
    symmetry: Symmetry,
    nrows: usize,
    ncols: usize,
    nnz: usize,
}

fn parse_header(lines: &mut impl Iterator<Item = (usize, String)>) -> Result<Header, MmError> {
    let (lineno, banner) = lines.next().ok_or_else(|| parse_err(1, "empty file"))?;
    let tokens: Vec<&str> = banner.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(parse_err(lineno, "missing %%MatrixMarket banner"));
    }
    if !tokens[1].eq_ignore_ascii_case("matrix") || !tokens[2].eq_ignore_ascii_case("coordinate") {
        return Err(parse_err(
            lineno,
            "only `matrix coordinate` files are supported",
        ));
    }
    let field = match tokens[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(parse_err(lineno, format!("unsupported field `{other}`"))),
    };
    let symmetry = match tokens[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(parse_err(lineno, format!("unsupported symmetry `{other}`"))),
    };
    // Skip comments, find the size line.
    for (lineno, line) in lines.by_ref() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(parse_err(lineno, "size line must be `rows cols nnz`"));
        }
        let parse = |s: &str| {
            s.parse::<usize>()
                .map_err(|_| parse_err(lineno, format!("bad integer `{s}`")))
        };
        return Ok(Header {
            field,
            symmetry,
            nrows: parse(parts[0])?,
            ncols: parse(parts[1])?,
            nnz: parse(parts[2])?,
        });
    }
    Err(parse_err(0, "missing size line"))
}

fn parse_entries(
    header: &Header,
    lines: impl Iterator<Item = (usize, String)>,
) -> Result<Vec<(usize, usize, f64)>, MmError> {
    let mut triples = Vec::with_capacity(
        header.nnz
            * if header.symmetry == Symmetry::Symmetric {
                2
            } else {
                1
            },
    );
    let mut count = 0usize;
    for (lineno, line) in lines {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let i: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad row index"))?;
        let j: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad column index"))?;
        if i == 0 || j == 0 || i > header.nrows || j > header.ncols {
            return Err(parse_err(lineno, "index out of declared bounds"));
        }
        let v: f64 = match header.field {
            Field::Pattern => 1.0,
            _ => parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(lineno, "bad value"))?,
        };
        triples.push((i - 1, j - 1, v));
        if header.symmetry == Symmetry::Symmetric && i != j {
            triples.push((j - 1, i - 1, v));
        }
        count += 1;
    }
    if count != header.nnz {
        return Err(parse_err(
            0,
            format!("declared {} entries, found {count}", header.nnz),
        ));
    }
    Ok(triples)
}

fn numbered_lines(reader: impl Read) -> impl Iterator<Item = (usize, String)> {
    BufReader::new(reader)
        .lines()
        .map_while(|l| l.ok())
        .enumerate()
        .map(|(i, l)| (i + 1, l))
}

/// Native typed read: straight into a `gbtl::Matrix<f64>`.
pub fn read_native(reader: impl Read) -> Result<GMatrix<f64>, MmError> {
    let mut lines = numbered_lines(reader);
    let header = parse_header(&mut lines)?;
    let triples = parse_entries(&header, lines)?;
    Ok(GMatrix::from_triples_dedup_with(
        header.nrows,
        header.ncols,
        triples,
        |_, b| b,
    )?)
}

/// Native read into an [`EdgeList`] (square matrices only).
pub fn read_edge_list(reader: impl Read) -> Result<EdgeList, MmError> {
    let mut lines = numbered_lines(reader);
    let header = parse_header(&mut lines)?;
    if header.nrows != header.ncols {
        return Err(parse_err(0, "edge lists require a square matrix"));
    }
    let edges = parse_entries(&header, lines)?;
    Ok(EdgeList {
        n: header.nrows,
        edges,
    })
}

/// Interpreted read: every parsed token becomes a separate heap-boxed
/// object in Python-style lists (see [`crate::interpreted`]), then the
/// container is built through per-element dynamic calls — the Python
/// read path of Fig. 11.
pub fn read_interpreted(reader: impl Read, dtype: DType) -> Result<Matrix, MmError> {
    let mut lines = numbered_lines(reader);
    let header = parse_header(&mut lines)?;
    if header.nrows != header.ncols {
        return Err(parse_err(0, "interpreted path expects a square matrix"));
    }
    let triples = parse_entries(&header, lines)?;
    // The "three Python lists of PyObjects" intermediate.
    let coo = crate::interpreted::PyCoo::from_edges(header.nrows, &triples);
    coo.to_matrix(dtype)
        .map_err(|e| parse_err(0, e.to_string()))
}

/// Direct native load into a DSL container — Section VIII future work,
/// implemented: "wrapping a C++ function to directly load a matrix
/// instead of first loading into Python lists would be trivial." The
/// typed parser runs end to end and the result is moved (zero-copy)
/// into a `pygb::Matrix`, skipping the boxed intermediate entirely.
pub fn read_native_pygb(reader: impl Read, dtype: DType) -> Result<Matrix, MmError> {
    let typed = read_native(reader)?;
    let m = Matrix::from_typed(typed);
    Ok(if dtype == DType::Fp64 {
        m
    } else {
        m.cast(dtype)
    })
}

/// Write a typed matrix as `matrix coordinate real general`.
pub fn write_native(matrix: &GMatrix<f64>, mut writer: impl Write) -> Result<(), MmError> {
    let mut out = String::with_capacity(64 + matrix.nvals() * 24);
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    let _ = writeln!(
        out,
        "{} {} {}",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nvals()
    );
    for (i, j, v) in matrix.iter() {
        let _ = writeln!(out, "{} {} {}", i + 1, j + 1, v);
    }
    writer.write_all(out.as_bytes())?;
    Ok(())
}

/// Read a Matrix Market file by path (native typed path).
pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<GMatrix<f64>, MmError> {
    read_native(std::fs::File::open(path)?)
}

/// Read a Matrix Market file by path straight into a DSL container.
pub fn read_file_pygb(path: impl AsRef<std::path::Path>, dtype: DType) -> Result<Matrix, MmError> {
    read_native_pygb(std::fs::File::open(path)?, dtype)
}

/// Write a typed matrix to a Matrix Market file.
pub fn write_file(matrix: &GMatrix<f64>, path: impl AsRef<std::path::Path>) -> Result<(), MmError> {
    write_native(matrix, std::fs::File::create(path)?)
}

/// Serialize an edge list to Matrix Market text (for bench file-read
/// workloads).
pub fn to_string(edges: &EdgeList) -> String {
    let mut out = String::with_capacity(64 + edges.nnz() * 24);
    out.push_str("%%MatrixMarket matrix coordinate real general\n");
    let _ = writeln!(out, "{} {} {}", edges.n, edges.n, edges.nnz());
    for &(s, d, w) in &edges.edges {
        let _ = writeln!(out, "{} {} {}", s + 1, d + 1, w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 3\n\
        1 2 1.5\n\
        2 3 -2.0\n\
        3 1 0.25\n";

    #[test]
    fn read_native_basic() {
        let m = read_native(SAMPLE.as_bytes()).unwrap();
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m.nvals(), 3);
        assert_eq!(m.get(0, 1), Some(1.5));
        assert_eq!(m.get(1, 2), Some(-2.0));
        assert_eq!(m.get(2, 0), Some(0.25));
    }

    #[test]
    fn symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
            2 2 2\n\
            1 1 5\n\
            2 1 7\n";
        let m = read_native(text.as_bytes()).unwrap();
        assert_eq!(m.nvals(), 3);
        assert_eq!(m.get(0, 1), Some(7.0));
        assert_eq!(m.get(1, 0), Some(7.0));
        assert_eq!(m.get(0, 0), Some(5.0)); // diagonal not duplicated
    }

    #[test]
    fn pattern_files_give_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
            2 2 1\n\
            1 2\n";
        let m = read_native(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
    }

    #[test]
    fn interpreted_matches_native() {
        let native = read_native(SAMPLE.as_bytes()).unwrap();
        let interp = read_interpreted(SAMPLE.as_bytes(), DType::Fp64).unwrap();
        assert_eq!(interp.nvals(), native.nvals());
        for (i, j, v) in native.iter() {
            assert_eq!(interp.get(i, j).unwrap().as_f64(), v);
        }
    }

    #[test]
    fn roundtrip_through_writer() {
        let m = read_native(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_native(&m, &mut buf).unwrap();
        let back = read_native(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn edge_list_roundtrip() {
        let e = crate::generators::erdos_renyi(10, 20, 5);
        let text = to_string(&e);
        let back = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(back.n, 10);
        assert_eq!(back.nnz(), 20);
        let m1: GMatrix<f64> = e.to_gbtl();
        let m2: GMatrix<f64> = back.to_gbtl();
        assert_eq!(m1, m2);
    }

    #[test]
    fn file_roundtrip_by_path() {
        let dir = std::env::temp_dir().join(format!("pygb-mm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");

        let m = read_native(SAMPLE.as_bytes()).unwrap();
        write_file(&m, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, m);

        let dsl = read_file_pygb(&path, DType::Fp64).unwrap();
        assert_eq!(dsl.nvals(), m.nvals());
        assert_eq!(dsl.get(0, 1).unwrap().as_f64(), 1.5);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_file("/nonexistent/definitely/missing.mtx").unwrap_err();
        assert!(matches!(err, MmError::Io(_)));
    }

    #[test]
    fn error_cases() {
        assert!(read_native("".as_bytes()).is_err());
        assert!(read_native("%%MatrixMarket array real general\n".as_bytes()).is_err());
        let bad_count = "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1\n";
        assert!(read_native(bad_count.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n";
        assert!(read_native(oob.as_bytes()).is_err());
        let zero_idx = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n";
        assert!(read_native(zero_idx.as_bytes()).is_err());
    }
}
