//! Exhaustive model check of the wave scheduler's flush path.
//!
//! The flush path has two sources of schedule nondeterminism: which
//! ready node of a wave completes first, and when a re-entrant flush
//! (triggered by a read during node execution) observes the `flushing`
//! claim. Both are cooperative — no weak memory is involved — so the
//! whole schedule space can be enumerated with the loom-style drivers
//! in `parking_lot::model` (the workspace's `pygb-sync` shim) and the
//! real scheduler primitives ([`dag::begin_flush`],
//! [`dag::ready_indices`]) asserted under every ordering.

use std::sync::Arc;

use parking_lot::model;
use pygb::expr::{VectorExpr, VectorExprKind};
use pygb::nb::{VecOpDesc, VecRhs};
use pygb::store::VectorStore;
use pygb::DType;

use crate::dag::{self, vptr, Dag, Node};

fn store(size: usize) -> Arc<VectorStore> {
    Arc::new(VectorStore::new(size, DType::Fp64))
}

/// A synthetic deferred node reading `input` and producing `out` — a
/// real `VecOpDesc` (plain `Ref` assignment), as enqueue would mint it.
fn node(input: &Arc<VectorStore>, out: &Arc<VectorStore>) -> Node {
    Node::Vec(VecOpDesc {
        target: store(input.size()),
        out: Arc::clone(out),
        mask: None,
        accum: None,
        replace: false,
        region: None,
        rhs: VecRhs::Expr(VectorExpr {
            kind: VectorExprKind::Ref {
                u: Arc::clone(input),
            },
            build_ns: 0,
        }),
    })
}

fn push(dag: &mut Dag, n: Node) {
    let out = match &n {
        Node::Vec(d) => vptr(&d.out),
        Node::Mat(_) => unreachable!("vector-only model"),
    };
    // The real enqueue path, so ids are minted exactly as in production.
    dag::push_node(dag, out, n);
}

/// Diamond topology: `0 -> {1, 2} -> 3`, plus the placeholder handles a
/// caller would hold (returned so `Arc` counts mirror live containers).
fn diamond() -> (Dag, Vec<Arc<VectorStore>>) {
    let src = store(4);
    let o0 = store(4);
    let o1 = store(4);
    let o2 = store(4);
    let o3 = store(4);
    let mut dag = Dag::default();
    push(&mut dag, node(&src, &o0));
    push(&mut dag, node(&o0, &o1));
    push(&mut dag, node(&o0, &o2));
    // The sink reads one mid node as its expression input and the other
    // as its mask, so it depends on both.
    let sink = match node(&o1, &o3) {
        Node::Vec(mut d) => {
            d.mask = Some((Arc::clone(&o2), false));
            Node::Vec(d)
        }
        Node::Mat(_) => unreachable!(),
    };
    push(&mut dag, sink);
    (dag, vec![o0, o1, o2, o3])
}

/// Mark node `i` complete: remove it and resolve its placeholder, as
/// the flush's merge loop does after a wave runs.
fn complete(dag: &mut Dag, i: usize) {
    let out = match dag.nodes[i].take() {
        Some(Node::Vec(d)) => vptr(&d.out),
        _ => panic!("completing an absent node"),
    };
    dag.pending.remove(&out);
}

#[test]
fn scheduler_admits_exactly_the_topological_orders() {
    let mut completed_schedules = 0;
    let explored = model::permutations(&[0usize, 1, 2, 3], |order| {
        let (mut dag, _keep) = diamond();
        let mut ran = Vec::new();
        for &i in order {
            if !dag::ready_indices(&dag).contains(&i) {
                // The scheduler can never run a node before its inputs
                // resolve; this order is unreachable. Every dependency
                // violated must involve a predecessor not yet run.
                let deps: &[usize] = match i {
                    0 => &[],
                    1 | 2 => &[0],
                    3 => &[1, 2],
                    _ => unreachable!(),
                };
                assert!(
                    deps.iter().any(|d| !ran.contains(d)),
                    "node {i} blocked with all dependencies resolved"
                );
                return;
            }
            complete(&mut dag, i);
            ran.push(i);
        }
        // Fully drained: the DAG is empty and nothing is pending.
        assert!(dag.nodes.iter().all(|n| n.is_none()));
        assert!(dag.pending.is_empty());
        completed_schedules += 1;
    });
    assert_eq!(explored, 24, "4! schedules must be explored");
    assert_eq!(
        completed_schedules, 2,
        "the diamond admits exactly two topological orders (0,1,2,3 / 0,2,1,3)"
    );
}

#[test]
fn every_wave_is_nonempty_until_drained() {
    // Whatever completion order previous waves took, the next
    // ready set is never empty while nodes remain (no spurious wedge).
    let explored = model::permutations(&[0usize, 1, 2], |mid_order| {
        let (mut dag, _keep) = diamond();
        // Wave 1 is exactly the source.
        assert_eq!(dag::ready_indices(&dag), vec![0]);
        complete(&mut dag, 0);
        // Wave 2 is both mid nodes; complete them in the explored
        // order (the third event, the sink, must never be ready early).
        for &ev in mid_order {
            match ev {
                0 | 1 => {
                    let ready = dag::ready_indices(&dag);
                    assert!(ready.contains(&(ev + 1)), "mid node {} ready", ev + 1);
                    assert!(!ready.contains(&3), "sink ready before its inputs");
                    complete(&mut dag, ev + 1);
                }
                2 => {
                    // The sink's slot in the schedule: ready only once
                    // both mids completed.
                    let ready = dag::ready_indices(&dag);
                    let mids_done = dag.nodes[1].is_none() && dag.nodes[2].is_none();
                    assert_eq!(ready.contains(&3), mids_done);
                    if mids_done {
                        complete(&mut dag, 3);
                    }
                }
                _ => unreachable!(),
            }
        }
        let remaining = dag.nodes.iter().flatten().count();
        if remaining > 0 {
            // Only the sink can remain, and only because its schedule
            // slot came too early — it is ready now.
            assert_eq!(dag::ready_indices(&dag), vec![3]);
        }
    });
    assert_eq!(explored, 6);
}

#[test]
fn cyclic_dag_is_reported_wedged_not_spun() {
    // Two nodes reading each other's placeholders: no wave is ever
    // ready. The scheduler must detect this (flush surfaces it as a
    // "wedged" error) rather than loop forever.
    let o0 = store(2);
    let o1 = store(2);
    let mut dag = Dag::default();
    push(&mut dag, node(&o1, &o0));
    push(&mut dag, node(&o0, &o1));
    assert!(dag::ready_indices(&dag).is_empty());
    assert_eq!(dag.nodes.iter().flatten().count(), 2);
}

#[test]
fn flush_claim_is_exclusive_under_all_interleavings() {
    // Two logical flushers each run [try-claim, release-if-held]. Under
    // every interleaving: at most one holds the claim at a time, the
    // flag always equals "someone holds it", and at least one flusher
    // succeeds (no lost flush).
    let explored = model::interleavings(&[2, 2], |sched| {
        let (mut dag, _keep) = diamond();
        let mut pc = [0usize; 2];
        let mut holding = [false; 2];
        let mut successes = 0;
        for &t in sched {
            match pc[t] {
                0 => {
                    if dag::begin_flush(&mut dag) {
                        holding[t] = true;
                        successes += 1;
                    }
                }
                1 => {
                    if holding[t] {
                        dag.flushing = false;
                        holding[t] = false;
                    }
                }
                _ => unreachable!(),
            }
            pc[t] += 1;
            assert!(
                holding.iter().filter(|&&h| h).count() <= 1,
                "two flushers claimed the same DAG"
            );
            assert_eq!(dag.flushing, holding.iter().any(|&h| h));
        }
        assert!(successes >= 1, "every schedule must admit one flush");
    });
    assert_eq!(explored, 6);
}

#[test]
fn reentrant_claim_inside_a_flush_is_a_noop() {
    let (mut dag, _keep) = diamond();
    assert!(dag::begin_flush(&mut dag));
    // A read during node execution re-enters flush: it must not claim.
    assert!(!dag::begin_flush(&mut dag));
    dag.flushing = false;
    // After the drain completes the claim is available again.
    assert!(dag::begin_flush(&mut dag));
}

#[test]
fn empty_dag_never_claims_the_flush() {
    let mut dag = Dag::default();
    assert!(!dag::begin_flush(&mut dag));
    assert!(!dag.flushing);
    // Fully executed DAG (all slots None) also declines and compacts.
    let (mut dag, _keep) = diamond();
    for i in 0..4 {
        if dag::ready_indices(&dag).contains(&i) {
            complete(&mut dag, i);
        }
    }
    complete_all(&mut dag);
    assert!(!dag::begin_flush(&mut dag));
    assert!(dag.nodes.is_empty(), "claim attempt compacts the spent DAG");
}

fn complete_all(dag: &mut Dag) {
    loop {
        let ready = dag::ready_indices(dag);
        if ready.is_empty() {
            return;
        }
        for i in ready {
            complete(dag, i);
        }
    }
}
