//! Exhaustive model check of the wave scheduler's flush path.
//!
//! The flush path has two sources of schedule nondeterminism: which
//! ready node of a wave completes first, and when a re-entrant flush
//! (triggered by a read during node execution) observes the `flushing`
//! claim. Both are cooperative — no weak memory is involved — so the
//! whole schedule space can be enumerated with the loom-style drivers
//! in `parking_lot::model` (the workspace's `pygb-sync` shim) and the
//! real scheduler primitives ([`dag::begin_flush`],
//! [`dag::ready_indices`]) asserted under every ordering.

use std::sync::Arc;

use parking_lot::model;
use pygb::expr::{VectorExpr, VectorExprKind};
use pygb::nb::{VecOpDesc, VecRhs};
use pygb::store::VectorStore;
use pygb::DType;

use crate::dag::{self, vptr, Dag, Node};

fn store(size: usize) -> Arc<VectorStore> {
    Arc::new(VectorStore::new(size, DType::Fp64))
}

/// A synthetic deferred node reading `input` and producing `out` — a
/// real `VecOpDesc` (plain `Ref` assignment), as enqueue would mint it.
fn node(input: &Arc<VectorStore>, out: &Arc<VectorStore>) -> Node {
    Node::Vec(VecOpDesc {
        target: store(input.size()),
        out: Arc::clone(out),
        mask: None,
        accum: None,
        replace: false,
        region: None,
        rhs: VecRhs::Expr(VectorExpr {
            kind: VectorExprKind::Ref {
                u: Arc::clone(input),
            },
            build_ns: 0,
        }),
    })
}

fn push(dag: &mut Dag, n: Node) {
    let out = match &n {
        Node::Vec(d) => vptr(&d.out),
        Node::Mat(_) => unreachable!("vector-only model"),
    };
    // The real enqueue path, so ids are minted exactly as in production.
    dag::push_node(dag, out, n);
}

/// Diamond topology: `0 -> {1, 2} -> 3`, plus the placeholder handles a
/// caller would hold (returned so `Arc` counts mirror live containers).
fn diamond() -> (Dag, Vec<Arc<VectorStore>>) {
    let src = store(4);
    let o0 = store(4);
    let o1 = store(4);
    let o2 = store(4);
    let o3 = store(4);
    let mut dag = Dag::default();
    push(&mut dag, node(&src, &o0));
    push(&mut dag, node(&o0, &o1));
    push(&mut dag, node(&o0, &o2));
    // The sink reads one mid node as its expression input and the other
    // as its mask, so it depends on both.
    let sink = match node(&o1, &o3) {
        Node::Vec(mut d) => {
            d.mask = Some((Arc::clone(&o2), false));
            Node::Vec(d)
        }
        Node::Mat(_) => unreachable!(),
    };
    push(&mut dag, sink);
    (dag, vec![o0, o1, o2, o3])
}

/// Mark node `i` complete: remove it and resolve its placeholder, as
/// the flush's merge loop does after a wave runs.
fn complete(dag: &mut Dag, i: usize) {
    let out = match dag.nodes[i].take() {
        Some(Node::Vec(d)) => vptr(&d.out),
        _ => panic!("completing an absent node"),
    };
    dag.pending.remove(&out);
}

#[test]
fn scheduler_admits_exactly_the_topological_orders() {
    let mut completed_schedules = 0;
    let explored = model::permutations(&[0usize, 1, 2, 3], |order| {
        let (mut dag, _keep) = diamond();
        let mut ran = Vec::new();
        for &i in order {
            if !dag::ready_indices(&dag).contains(&i) {
                // The scheduler can never run a node before its inputs
                // resolve; this order is unreachable. Every dependency
                // violated must involve a predecessor not yet run.
                let deps: &[usize] = match i {
                    0 => &[],
                    1 | 2 => &[0],
                    3 => &[1, 2],
                    _ => unreachable!(),
                };
                assert!(
                    deps.iter().any(|d| !ran.contains(d)),
                    "node {i} blocked with all dependencies resolved"
                );
                return;
            }
            complete(&mut dag, i);
            ran.push(i);
        }
        // Fully drained: the DAG is empty and nothing is pending.
        assert!(dag.nodes.iter().all(|n| n.is_none()));
        assert!(dag.pending.is_empty());
        completed_schedules += 1;
    });
    assert_eq!(explored, 24, "4! schedules must be explored");
    assert_eq!(
        completed_schedules, 2,
        "the diamond admits exactly two topological orders (0,1,2,3 / 0,2,1,3)"
    );
}

#[test]
fn every_wave_is_nonempty_until_drained() {
    // Whatever completion order previous waves took, the next
    // ready set is never empty while nodes remain (no spurious wedge).
    let explored = model::permutations(&[0usize, 1, 2], |mid_order| {
        let (mut dag, _keep) = diamond();
        // Wave 1 is exactly the source.
        assert_eq!(dag::ready_indices(&dag), vec![0]);
        complete(&mut dag, 0);
        // Wave 2 is both mid nodes; complete them in the explored
        // order (the third event, the sink, must never be ready early).
        for &ev in mid_order {
            match ev {
                0 | 1 => {
                    let ready = dag::ready_indices(&dag);
                    assert!(ready.contains(&(ev + 1)), "mid node {} ready", ev + 1);
                    assert!(!ready.contains(&3), "sink ready before its inputs");
                    complete(&mut dag, ev + 1);
                }
                2 => {
                    // The sink's slot in the schedule: ready only once
                    // both mids completed.
                    let ready = dag::ready_indices(&dag);
                    let mids_done = dag.nodes[1].is_none() && dag.nodes[2].is_none();
                    assert_eq!(ready.contains(&3), mids_done);
                    if mids_done {
                        complete(&mut dag, 3);
                    }
                }
                _ => unreachable!(),
            }
        }
        let remaining = dag.nodes.iter().flatten().count();
        if remaining > 0 {
            // Only the sink can remain, and only because its schedule
            // slot came too early — it is ready now.
            assert_eq!(dag::ready_indices(&dag), vec![3]);
        }
    });
    assert_eq!(explored, 6);
}

#[test]
fn cyclic_dag_is_reported_wedged_not_spun() {
    // Two nodes reading each other's placeholders: no wave is ever
    // ready. The scheduler must detect this (flush surfaces it as a
    // "wedged" error) rather than loop forever.
    let o0 = store(2);
    let o1 = store(2);
    let mut dag = Dag::default();
    push(&mut dag, node(&o1, &o0));
    push(&mut dag, node(&o0, &o1));
    assert!(dag::ready_indices(&dag).is_empty());
    assert_eq!(dag.nodes.iter().flatten().count(), 2);
}

#[test]
fn flush_claim_is_exclusive_under_all_interleavings() {
    // Two logical flushers each run [try-claim, release-if-held]. Under
    // every interleaving: at most one holds the claim at a time, the
    // flag always equals "someone holds it", and at least one flusher
    // succeeds (no lost flush).
    let explored = model::interleavings(&[2, 2], |sched| {
        let (mut dag, _keep) = diamond();
        let mut pc = [0usize; 2];
        let mut holding = [false; 2];
        let mut successes = 0;
        for &t in sched {
            match pc[t] {
                0 => {
                    if dag::begin_flush(&mut dag) {
                        holding[t] = true;
                        successes += 1;
                    }
                }
                1 => {
                    if holding[t] {
                        dag.flushing = false;
                        holding[t] = false;
                    }
                }
                _ => unreachable!(),
            }
            pc[t] += 1;
            assert!(
                holding.iter().filter(|&&h| h).count() <= 1,
                "two flushers claimed the same DAG"
            );
            assert_eq!(dag.flushing, holding.iter().any(|&h| h));
        }
        assert!(successes >= 1, "every schedule must admit one flush");
    });
    assert_eq!(explored, 6);
}

#[test]
fn reentrant_claim_inside_a_flush_is_a_noop() {
    let (mut dag, _keep) = diamond();
    assert!(dag::begin_flush(&mut dag));
    // A read during node execution re-enters flush: it must not claim.
    assert!(!dag::begin_flush(&mut dag));
    dag.flushing = false;
    // After the drain completes the claim is available again.
    assert!(dag::begin_flush(&mut dag));
}

#[test]
fn empty_dag_never_claims_the_flush() {
    let mut dag = Dag::default();
    assert!(!dag::begin_flush(&mut dag));
    assert!(!dag.flushing);
    // Fully executed DAG (all slots None) also declines and compacts.
    let (mut dag, _keep) = diamond();
    for i in 0..4 {
        if dag::ready_indices(&dag).contains(&i) {
            complete(&mut dag, i);
        }
    }
    complete_all(&mut dag);
    assert!(!dag::begin_flush(&mut dag));
    assert!(dag.nodes.is_empty(), "claim attempt compacts the spent DAG");
}

fn complete_all(dag: &mut Dag) {
    loop {
        let ready = dag::ready_indices(dag);
        if ready.is_empty() {
            return;
        }
        for i in ready {
            complete(dag, i);
        }
    }
}

// ---------------------------------------------------------------------
// Serve-layer protocols, modeled here where the interleaving drivers
// live. The catalog's CAS publish is an abstract state machine (the
// serve crate sits above this one); the delta-merge model drives the
// real `gbtl::delta::DeltaMatrix` container.
// ---------------------------------------------------------------------

/// Model of `pygb_serve::Catalog::update_edges`: read the current
/// version, do the merge off-lock, publish only if the version is
/// still the one that was read, else retry on the winner's snapshot.
///
/// Two writers (one batch each) race a reader over a graph seeded at
/// version 1. Each writer attempt is two scheduler-visible steps —
/// [read-version, CAS-publish] — and each writer gets two attempts
/// (with one rival publish per writer, one retry always suffices; the
/// model asserts that bound rather than assuming it). Under every
/// interleaving: both batches land as distinct versions (none lost),
/// the version ends exactly two past the seed, a published snapshot is
/// never mutated, and the reader's observed version never regresses.
#[test]
fn catalog_cas_publish_loses_no_batch_under_any_interleaving() {
    let explored = model::interleavings(&[4, 4, 2], |sched| {
        // name -> latest version; plus the immutable publish history
        // (version -> writer id), standing in for snapshot payloads.
        let mut version: u64 = 1;
        let mut history: Vec<(u64, usize)> = vec![(1, usize::MAX)]; // seed
        let mut races = 0usize;
        // Per-writer: program counter, version read at attempt start,
        // and whether its batch has been published.
        let mut pc = [0usize; 2];
        let mut read_at = [0u64; 2];
        let mut done = [false; 2];
        // Reader: snapshot captured at its first step, for the
        // immutability and monotonicity checks.
        let mut held: Option<(u64, usize)> = None;
        let mut last_seen: u64 = 0;
        for &t in sched {
            match t {
                0 | 1 => {
                    if done[t] {
                        continue; // published: remaining slots are no-ops
                    }
                    if pc[t] % 2 == 0 {
                        // Read the current snapshot; the merge itself
                        // happens off-lock on this frozen version.
                        read_at[t] = version;
                    } else {
                        // CAS publish: only if nobody won in between.
                        if version == read_at[t] {
                            version += 1;
                            history.push((version, t));
                            done[t] = true;
                        } else {
                            races += 1; // stale merge dropped, re-apply
                        }
                    }
                    pc[t] += 1;
                }
                2 => {
                    // Reader: versions move forward only, and the
                    // snapshot it was admitted with never changes.
                    assert!(version >= last_seen, "catalog version regressed");
                    last_seen = version;
                    match held {
                        None => held = Some(*history.last().unwrap()),
                        Some(snap) => assert!(
                            history.contains(&snap),
                            "held snapshot mutated under the reader"
                        ),
                    }
                }
                _ => unreachable!(),
            }
        }
        assert!(
            done[0] && done[1],
            "a writer needed more than one retry with a single rival publish"
        );
        assert_eq!(version, 3, "two batches over a v1 seed must end at v3");
        assert!(races <= 1, "at most one CAS can lose with two writers");
        let published: Vec<usize> = history[1..].iter().map(|&(_, w)| w).collect();
        let mut sorted = published.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1], "each batch published exactly once");
    });
    // 10 steps, 4+4+2 per thread: 10!/(4!·4!·2!) schedules.
    assert_eq!(explored, 3150);
}

/// Drive the real [`gbtl::delta::DeltaMatrix`] through every
/// interleaving of two writers (two update batches each, with
/// overlapping coordinates so last-write-wins order matters) and one
/// reader issuing tracked reads. The policy thresholds are set low so
/// both auto-merge triggers — pending-op count and read pressure —
/// fire mid-schedule in some interleavings and not others.
///
/// Invariants under every schedule: `nvals` stays exact after every
/// step, every tracked read returns the oracle value at that moment,
/// and the settled container matches a plain map that applied the same
/// ops in the same executed order — i.e. a policy-triggered merge
/// firing between (or inside) batches never loses or reorders an op.
#[test]
fn delta_merge_triggers_lose_no_ops_under_any_interleaving() {
    use gbtl::delta::{DeltaMatrix, MergePolicy};
    use gbtl::matrix::Matrix;
    use std::collections::BTreeMap;

    type Batch = &'static [(usize, usize, Option<i64>)];
    // Writer programs. (0,0) is written by both writers and deleted by
    // one; (0,3) deletes a base-resident value through the overlay.
    const W0: [Batch; 2] = [
        &[(0, 0, Some(10)), (1, 1, Some(11))],
        &[(0, 0, None), (2, 2, Some(12))],
    ];
    const W1: [Batch; 2] = [
        &[(0, 0, Some(20)), (3, 3, Some(21))],
        &[(0, 3, None), (0, 1, Some(22))],
    ];

    let mut any_auto_merge = false;
    let explored = model::interleavings(&[2, 2, 2], |sched| {
        // Settled 4x4 base with two seeded values.
        let mut seed = DeltaMatrix::new(Matrix::<i64>::new(4, 4));
        seed.update_edges([(0, 3, Some(7)), (3, 0, Some(8))])
            .unwrap();
        seed.settle();
        let mut dm = DeltaMatrix::with_policy(
            seed.base().clone(),
            MergePolicy {
                max_pending: 3,
                read_pressure: 2,
            },
        );
        // Oracle: the merged view is exactly "apply ops in executed
        // order, last write wins" over the base.
        let mut oracle: BTreeMap<(usize, usize), i64> =
            [((0, 3), 7), ((3, 0), 8)].into_iter().collect();
        let mut pc = [0usize; 3];
        let mut merges_seen = 0u64;
        for &t in sched {
            match t {
                0 | 1 => {
                    let batch = if t == 0 { W0[pc[t]] } else { W1[pc[t]] };
                    dm.update_edges(batch.iter().copied()).unwrap();
                    for &(i, j, op) in batch {
                        match op {
                            Some(v) => {
                                oracle.insert((i, j), v);
                            }
                            None => {
                                oracle.remove(&(i, j));
                            }
                        }
                    }
                }
                2 => {
                    let coord = [(0, 0), (1, 1)][pc[t]];
                    let got = dm.read(coord.0, coord.1);
                    assert_eq!(
                        got,
                        oracle.get(&coord).copied(),
                        "tracked read disagreed with the oracle at {coord:?}"
                    );
                }
                _ => unreachable!(),
            }
            pc[t] += 1;
            // Merges (policy-triggered or not) may fire at any step;
            // they must never change the visible view.
            assert!(dm.merges() >= merges_seen, "merge count regressed");
            merges_seen = dm.merges();
            assert_eq!(dm.nvals(), oracle.len(), "nvals drifted from exact");
        }
        any_auto_merge |= merges_seen > 0;
        // Settle and compare the full 4x4 view against the oracle.
        dm.settle();
        assert!(dm.is_settled());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    dm.get(i, j),
                    oracle.get(&(i, j)).copied(),
                    "settled view lost or invented ({i},{j})"
                );
            }
        }
        assert_eq!(dm.nvals(), oracle.len());
    });
    assert_eq!(explored, 90); // 6!/(2!·2!·2!)
    assert!(
        any_auto_merge,
        "thresholds never fired: the model is not exercising auto-merge"
    );
}
