//! Dataflow facts over the deferred op-DAG — the analysis substrate the
//! optimization passes ([`crate::passes`]) and the fusion legality check
//! ([`crate::analyze::check_producer`]) share.
//!
//! ## External-reference accounting
//!
//! Every placeholder in the DAG is named by the `Arc` address of the
//! store minted at enqueue. `Arc::strong_count` on such a placeholder
//! counts three kinds of owner:
//!
//! 1. *internal* references — fields of live node descriptors (their own
//!    `out`, another node's operand/mask/target) plus alias-set entries;
//! 2. *external* references — user-held container handles;
//! 3. nothing else: resolution-map keepalives never hold a *live* node's
//!    placeholder (a placeholder is only inserted there after its
//!    producer left the DAG, and the keepalive pins the address against
//!    reuse).
//!
//! So `external(p) = strong_count(p) − mult × internal(p)`, where
//! `internal(p)` is a structural scan of the DAG and `mult` is how many
//! copies of each descriptor exist: 1 during a real flush, 2 when a
//! pass pipeline runs on a `Dag::clone` (the plan/explain simulation —
//! cloning duplicates every descriptor-held `Arc` exactly once).
//!
//! [`ExtRefs::freeze`] computes this once, at pipeline start. External
//! counts cannot change mid-pipeline (the flushing thread owns the DAG
//! and user code is not running), but *internal* counts change with
//! every rewrite — so passes combine the frozen external counts with
//! fresh structural scans ([`dag_ref_count`]) and never read
//! `Arc::strong_count` again. Reading it again would be unsound in the
//! simulation: rewrites mutate the clone's descriptors, skewing the
//! shared strong counts asymmetrically.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use pygb::expr::{MatrixExpr, MatrixExprKind, VectorExpr, VectorExprKind};
use pygb::nb::{MatOpDesc, MatRhs, VecOpDesc, VecRhs};
use pygb::store::VectorStore;

use crate::dag::{mptr, vptr, Dag, Node};

/// The placeholder address a node writes.
pub(crate) fn node_out_ptr(n: &Node) -> usize {
    match n {
        Node::Vec(d) => vptr(&d.out),
        Node::Mat(d) => mptr(&d.out),
    }
}

// ---------------------------------------------------------------------
// Descriptor walking: every Arc a descriptor holds besides its `out`.
// ---------------------------------------------------------------------

fn visit_vec_expr(e: &VectorExpr, f: &mut dyn FnMut(usize)) {
    match &e.kind {
        VectorExprKind::MxV { a, u, .. } | VectorExprKind::FusedMxvApply { a, u, .. } => {
            f(mptr(&a.store));
            f(vptr(u));
        }
        VectorExprKind::VxM { u, a, .. } => {
            f(vptr(u));
            f(mptr(&a.store));
        }
        VectorExprKind::EWiseAdd { u, v, .. } | VectorExprKind::EWiseMult { u, v, .. } => {
            f(vptr(u));
            f(vptr(v));
        }
        VectorExprKind::Apply { u, .. }
        | VectorExprKind::Extract { u, .. }
        | VectorExprKind::Ref { u } => f(vptr(u)),
        VectorExprKind::ReduceRows { a, .. } => f(mptr(&a.store)),
        VectorExprKind::FusedEwiseChain { u, v, w, .. } => {
            f(vptr(u));
            f(vptr(v));
            if let Some(w) = w {
                f(vptr(w));
            }
        }
    }
}

fn visit_mat_expr(e: &MatrixExpr, f: &mut dyn FnMut(usize)) {
    match &e.kind {
        MatrixExprKind::MxM { a, b, .. }
        | MatrixExprKind::EWiseAdd { a, b, .. }
        | MatrixExprKind::EWiseMult { a, b, .. } => {
            f(mptr(&a.store));
            f(mptr(&b.store));
        }
        MatrixExprKind::Apply { a, .. } | MatrixExprKind::Extract { a, .. } => f(mptr(&a.store)),
        MatrixExprKind::Transpose { a } | MatrixExprKind::Ref { a } => f(mptr(a)),
    }
}

/// Visit every Arc address a vector descriptor holds except its `out`:
/// merge-base target, mask, and expression operands.
pub(crate) fn visit_vec_desc(d: &VecOpDesc, f: &mut dyn FnMut(usize)) {
    f(vptr(&d.target));
    if let Some((m, _)) = &d.mask {
        f(vptr(m));
    }
    if let VecRhs::Expr(e) = &d.rhs {
        visit_vec_expr(e, f);
    }
}

/// Matrix analog of [`visit_vec_desc`].
pub(crate) fn visit_mat_desc(d: &MatOpDesc, f: &mut dyn FnMut(usize)) {
    f(mptr(&d.target));
    if let Some((m, _)) = &d.mask {
        f(mptr(m));
    }
    if let MatRhs::Expr(e) = &d.rhs {
        visit_mat_expr(e, f);
    }
}

fn visit_node(n: &Node, include_out: bool, f: &mut dyn FnMut(usize)) {
    match n {
        Node::Vec(d) => {
            if include_out {
                f(vptr(&d.out));
            }
            visit_vec_desc(d, f);
        }
        Node::Mat(d) => {
            if include_out {
                f(mptr(&d.out));
            }
            visit_mat_desc(d, f);
        }
    }
}

fn visit_aliases(dag: &Dag, f: &mut dyn FnMut(usize)) {
    for set in dag.alias_v.values() {
        f(vptr(&set.rep));
        for dup in &set.dups {
            f(vptr(dup));
        }
    }
    for set in dag.alias_m.values() {
        f(mptr(&set.rep));
        for dup in &set.dups {
            f(mptr(dup));
        }
    }
}

// ---------------------------------------------------------------------
// Frozen external-reference counts.
// ---------------------------------------------------------------------

/// External (user-handle) reference counts per placeholder, frozen at
/// pipeline start — see the module docs for why they are computed once
/// and why `mult` exists.
pub(crate) struct ExtRefs {
    map: HashMap<usize, usize>,
}

impl ExtRefs {
    /// Compute the external count of every live node's output
    /// placeholder. `mult` is 1 for a real flush, 2 when the pipeline
    /// runs on a `Dag::clone`.
    pub(crate) fn freeze(dag: &Dag, mult: usize) -> ExtRefs {
        let mut internal: HashMap<usize, usize> = HashMap::new();
        let mut bump = |p: usize| *internal.entry(p).or_insert(0) += 1;
        for n in dag.nodes.iter().flatten() {
            visit_node(n, true, &mut bump);
        }
        visit_aliases(dag, &mut bump);
        let map = dag
            .nodes
            .iter()
            .flatten()
            .map(|n| {
                let (p, strong) = match n {
                    Node::Vec(d) => (vptr(&d.out), Arc::strong_count(&d.out)),
                    Node::Mat(d) => (mptr(&d.out), Arc::strong_count(&d.out)),
                };
                let inner = internal.get(&p).copied().unwrap_or(0);
                (p, strong.saturating_sub(mult * inner))
            })
            .collect();
        ExtRefs { map }
    }

    /// External references to placeholder `p`. Addresses unknown at
    /// freeze time are reported as externally held (conservative: that
    /// blocks rewrites, never legalizes one).
    pub(crate) fn get(&self, p: usize) -> usize {
        self.map.get(&p).copied().unwrap_or(usize::MAX)
    }
}

/// Fresh structural count of placeholder `p` across the DAG: every
/// occurrence in any live descriptor (including producers' own `out`
/// fields) plus alias-set entries. The slot at `skip` is excluded —
/// callers checking fusion pass the consumer's slot, whose references
/// are accounted separately against the rule's expectation.
pub(crate) fn dag_ref_count(dag: &Dag, p: usize, skip: Option<usize>) -> usize {
    let mut count = 0usize;
    let mut bump = |q: usize| {
        if q == p {
            count += 1;
        }
    };
    for (i, n) in dag.nodes.iter().enumerate() {
        if Some(i) == skip {
            continue;
        }
        if let Some(n) = n {
            visit_node(n, true, &mut bump);
        }
    }
    visit_aliases(dag, &mut bump);
    count
}

/// How many references to placeholder `p` one vector descriptor holds
/// outside its own `out` field (target + mask + expression operands).
pub(crate) fn vec_desc_ref_count(d: &VecOpDesc, p: usize) -> usize {
    let mut count = 0usize;
    visit_vec_desc(d, &mut |q| {
        if q == p {
            count += 1;
        }
    });
    count
}

// ---------------------------------------------------------------------
// Liveness: which placeholders have at least one *reading* use.
// ---------------------------------------------------------------------

/// The set of placeholder addresses with at least one live (reading)
/// use. A use is live when it is an expression operand, a mask, the
/// merge-base target of a node that does NOT fully overwrite it, or an
/// alias-set representative (merged duplicates resolve through it). A
/// full-overwrite target is a *dead* use: the node never reads the
/// prior contents, so the producer of those contents is prunable.
pub(crate) fn live_use_ptrs(dag: &Dag) -> HashSet<usize> {
    let mut live = HashSet::new();
    for n in dag.nodes.iter().flatten() {
        match n {
            Node::Vec(d) => {
                if !d.overwrites_fully() {
                    live.insert(vptr(&d.target));
                }
                if let Some((m, _)) = &d.mask {
                    live.insert(vptr(m));
                }
                if let VecRhs::Expr(e) = &d.rhs {
                    visit_vec_expr(e, &mut |p| {
                        live.insert(p);
                    });
                }
            }
            Node::Mat(d) => {
                if !d.overwrites_fully() {
                    live.insert(mptr(&d.target));
                }
                if let Some((m, _)) = &d.mask {
                    live.insert(mptr(m));
                }
                if let MatRhs::Expr(e) = &d.rhs {
                    visit_mat_expr(e, &mut |p| {
                        live.insert(p);
                    });
                }
            }
        }
    }
    for &k in dag.alias_v.keys() {
        live.insert(k);
    }
    for &k in dag.alias_m.keys() {
        live.insert(k);
    }
    live
}

// ---------------------------------------------------------------------
// Structural facts: known-empty operands, present operators.
// ---------------------------------------------------------------------

/// Whether a vector store handle is *known* empty right now: a pending
/// placeholder is unknown (false); a resolved placeholder consults the
/// computed store; a clean handle consults the store itself.
pub(crate) fn vec_known_empty(dag: &Dag, a: &Arc<VectorStore>) -> bool {
    let p = vptr(a);
    if let Some((_, s)) = dag.resolved_v.get(&p) {
        return s.nvals() == 0;
    }
    if dag.pending.contains_key(&p) {
        return false;
    }
    a.nvals() == 0
}

/// Matrix analog of [`vec_known_empty`].
pub(crate) fn mat_known_empty(dag: &Dag, a: &Arc<pygb::store::MatrixStore>) -> bool {
    let p = mptr(a);
    if let Some((_, s)) = dag.resolved_m.get(&p) {
        return s.nvals() == 0;
    }
    if dag.pending.contains_key(&p) {
        return false;
    }
    a.nvals() == 0
}

/// Whether a vector expression's result is provably empty from operand
/// emptiness alone. Requires the relevant operator to be present:
/// folding an expression whose missing operator would error at eval
/// must not hide that error.
pub(crate) fn vec_expr_known_empty(dag: &Dag, e: &VectorExpr) -> bool {
    match &e.kind {
        VectorExprKind::MxV {
            a,
            u,
            semiring: Some(_),
        } => mat_known_empty(dag, &a.store) || vec_known_empty(dag, u),
        VectorExprKind::VxM {
            u,
            a,
            semiring: Some(_),
        } => vec_known_empty(dag, u) || mat_known_empty(dag, &a.store),
        VectorExprKind::EWiseAdd { u, v, op: Some(_) } => {
            vec_known_empty(dag, u) && vec_known_empty(dag, v)
        }
        VectorExprKind::EWiseMult { u, v, op: Some(_) } => {
            vec_known_empty(dag, u) || vec_known_empty(dag, v)
        }
        VectorExprKind::Apply { u, op: Some(_) } => vec_known_empty(dag, u),
        VectorExprKind::Extract { u, .. } | VectorExprKind::Ref { u } => vec_known_empty(dag, u),
        VectorExprKind::ReduceRows { a, monoid: Some(_) } => mat_known_empty(dag, &a.store),
        _ => false,
    }
}

/// Matrix analog of [`vec_expr_known_empty`].
pub(crate) fn mat_expr_known_empty(dag: &Dag, e: &MatrixExpr) -> bool {
    match &e.kind {
        MatrixExprKind::MxM {
            a,
            b,
            semiring: Some(_),
        } => mat_known_empty(dag, &a.store) || mat_known_empty(dag, &b.store),
        MatrixExprKind::EWiseAdd { a, b, op: Some(_) } => {
            mat_known_empty(dag, &a.store) && mat_known_empty(dag, &b.store)
        }
        MatrixExprKind::EWiseMult { a, b, op: Some(_) } => {
            mat_known_empty(dag, &a.store) || mat_known_empty(dag, &b.store)
        }
        MatrixExprKind::Apply { a, op: Some(_) } => mat_known_empty(dag, &a.store),
        MatrixExprKind::Extract { a, .. } => mat_known_empty(dag, &a.store),
        MatrixExprKind::Transpose { a } | MatrixExprKind::Ref { a } => mat_known_empty(dag, a),
        _ => false,
    }
}

/// Whether every operator the right-hand side needs at eval time was
/// captured. A `None` operator must surface as `MissingOperator` when
/// the node runs — no pass may fold such a node away.
pub(crate) fn vec_rhs_ops_present(rhs: &VecRhs) -> bool {
    match rhs {
        VecRhs::Scalar(_) => true,
        VecRhs::Expr(e) => match &e.kind {
            VectorExprKind::MxV { semiring, .. }
            | VectorExprKind::VxM { semiring, .. }
            | VectorExprKind::FusedMxvApply { semiring, .. } => semiring.is_some(),
            VectorExprKind::EWiseAdd { op, .. } | VectorExprKind::EWiseMult { op, .. } => {
                op.is_some()
            }
            VectorExprKind::Apply { op, .. } => op.is_some(),
            VectorExprKind::ReduceRows { monoid, .. } => monoid.is_some(),
            VectorExprKind::Extract { .. }
            | VectorExprKind::Ref { .. }
            | VectorExprKind::FusedEwiseChain { .. } => true,
        },
    }
}

/// Matrix analog of [`vec_rhs_ops_present`].
pub(crate) fn mat_rhs_ops_present(rhs: &MatRhs) -> bool {
    match rhs {
        MatRhs::Scalar(_) => true,
        MatRhs::Expr(e) => match &e.kind {
            MatrixExprKind::MxM { semiring, .. } => semiring.is_some(),
            MatrixExprKind::EWiseAdd { op, .. } | MatrixExprKind::EWiseMult { op, .. } => {
                op.is_some()
            }
            MatrixExprKind::Apply { op, .. } => op.is_some(),
            MatrixExprKind::Transpose { .. }
            | MatrixExprKind::Extract { .. }
            | MatrixExprKind::Ref { .. } => true,
        },
    }
}

// ---------------------------------------------------------------------
// CSE structural keys over whole descriptors.
// ---------------------------------------------------------------------

/// Hash-consing key for the CSE pass, or `None` when the node is
/// ineligible (scalar broadcast, index region, excluded expression
/// shape, or a missing operator that must error at eval).
///
/// *Plain* nodes (no mask/accum/region) key on the expression structure
/// plus the output's dtype and extent — their target's prior contents
/// are irrelevant. Non-plain nodes additionally key on the target
/// identity, mask identity + complement, accumulator, and replace flag,
/// so merge semantics participate in the comparison. The two classes
/// never merge with each other.
pub(crate) fn node_cse_hash(n: &Node) -> Option<u64> {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match n {
        Node::Vec(d) => {
            if d.region.is_some() || !vec_rhs_ops_present(&d.rhs) {
                return None;
            }
            let VecRhs::Expr(e) = &d.rhs else {
                return None;
            };
            0u8.hash(&mut h);
            if !e.kind.structural_fingerprint(&mut h) {
                return None;
            }
            d.out.dtype().hash(&mut h);
            d.out.size().hash(&mut h);
            if !d.is_plain() {
                1u8.hash(&mut h);
                vptr(&d.target).hash(&mut h);
                match &d.mask {
                    Some((m, c)) => {
                        1u8.hash(&mut h);
                        vptr(m).hash(&mut h);
                        c.hash(&mut h);
                    }
                    None => 0u8.hash(&mut h),
                }
                d.accum.hash(&mut h);
                d.replace.hash(&mut h);
            }
        }
        Node::Mat(d) => {
            if d.region.is_some() || !mat_rhs_ops_present(&d.rhs) {
                return None;
            }
            let MatRhs::Expr(e) = &d.rhs else {
                return None;
            };
            2u8.hash(&mut h);
            if !e.kind.structural_fingerprint(&mut h) {
                return None;
            }
            d.out.dtype().hash(&mut h);
            (d.out.nrows(), d.out.ncols()).hash(&mut h);
            if !d.is_plain() {
                1u8.hash(&mut h);
                mptr(&d.target).hash(&mut h);
                match &d.mask {
                    Some((m, c)) => {
                        1u8.hash(&mut h);
                        mptr(m).hash(&mut h);
                        c.hash(&mut h);
                    }
                    None => 0u8.hash(&mut h),
                }
                d.accum.hash(&mut h);
                d.replace.hash(&mut h);
            }
        }
    }
    Some(h.finish())
}

/// Exact confirmation behind [`node_cse_hash`] — hash-collision safety.
/// Both nodes must already have produced `Some` keys.
pub(crate) fn node_cse_eq(a: &Node, b: &Node) -> bool {
    match (a, b) {
        (Node::Vec(x), Node::Vec(y)) => {
            let (VecRhs::Expr(ex), VecRhs::Expr(ey)) = (&x.rhs, &y.rhs) else {
                return false;
            };
            if !ex.kind.structural_eq(&ey.kind)
                || x.out.dtype() != y.out.dtype()
                || x.out.size() != y.out.size()
            {
                return false;
            }
            match (x.is_plain(), y.is_plain()) {
                (true, true) => true,
                (false, false) => {
                    let mask_eq = match (&x.mask, &y.mask) {
                        (Some((m1, c1)), Some((m2, c2))) => Arc::ptr_eq(m1, m2) && c1 == c2,
                        (None, None) => true,
                        _ => false,
                    };
                    Arc::ptr_eq(&x.target, &y.target)
                        && mask_eq
                        && x.accum == y.accum
                        && x.replace == y.replace
                }
                _ => false,
            }
        }
        (Node::Mat(x), Node::Mat(y)) => {
            let (MatRhs::Expr(ex), MatRhs::Expr(ey)) = (&x.rhs, &y.rhs) else {
                return false;
            };
            if !ex.kind.structural_eq(&ey.kind)
                || x.out.dtype() != y.out.dtype()
                || (x.out.nrows(), x.out.ncols()) != (y.out.nrows(), y.out.ncols())
            {
                return false;
            }
            match (x.is_plain(), y.is_plain()) {
                (true, true) => true,
                (false, false) => {
                    let mask_eq = match (&x.mask, &y.mask) {
                        (Some((m1, c1)), Some((m2, c2))) => Arc::ptr_eq(m1, m2) && c1 == c2,
                        (None, None) => true,
                        _ => false,
                    };
                    Arc::ptr_eq(&x.target, &y.target)
                        && mask_eq
                        && x.accum == y.accum
                        && x.replace == y.replace
                }
                _ => false,
            }
        }
        _ => false,
    }
}
