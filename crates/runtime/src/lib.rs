//! Nonblocking execution runtime for PyGB: a deferred operation DAG
//! with automatic kernel fusion and flush-on-read.
//!
//! GraphBLAS distinguishes *blocking* mode, where every operation
//! completes before the call returns, from *nonblocking* mode, where
//! the implementation may delay work until a result is observed. PyGB
//! containers stay in blocking mode by default; entering a
//! [`nonblocking`] scope reroutes every assignment into a per-thread
//! operation DAG instead of dispatching a kernel eagerly:
//!
//! ```
//! use pygb::{DType, Vector};
//!
//! let mut u = Vector::new(4, DType::Fp64);
//! let mut w = Vector::new(4, DType::Fp64);
//! for i in 0..4 {
//!     u.set(i, 1.0f64).unwrap();
//! }
//! {
//!     let _nb = pygb_runtime::nonblocking().unwrap();
//!     let t = Vector::from_expr(&u + &u).unwrap(); // deferred
//!     w.no_mask().assign(&t * &u).unwrap(); // deferred, fuses with t
//! } // scope exit flushes: one fused kernel dispatch
//! assert_eq!(w.get(0).unwrap().as_f64(), 2.0);
//! ```
//!
//! Reads (`get`, `nvals`, `reduce`, `extract_pairs`, …) force a flush
//! of the deferred operations the read depends on, so laziness is
//! never observable — only faster. Before executing, the optimization
//! pipeline (`passes.rs`: liveness/DCE, CSE, sparsity folding, no-op
//! folding — toggled via `PYGB_PASSES` or [`set_passes`]) and the
//! fusion pass
//! (`fuse.rs`) rewrite the DAG, then a scheduler runs each wave of
//! independent nodes in parallel.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
mod dag;
mod dataflow;
mod fuse;
#[cfg(test)]
mod model_check;
mod passes;
mod sparsity;

use std::sync::Once;

pub use analyze::{
    last_refusals, plan, set_report_forced, set_request_tag, trace_report, trace_report_for,
    ExecutedNode, NodeId, Plan, PlanNode, TraceReport,
};
pub use passes::{reset_passes, set_passes, PassKind};
pub use pygb::nb::DeferGuard;

/// Install the DAG engine into the core crate's nonblocking hooks.
/// Idempotent; called automatically by [`nonblocking`].
pub fn install_engine() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // The sparsity analysis's checked interpretation: gbtl's write
        // funnel reports every container finalize, and the scheduler
        // compares the recorded (nvals, dim) against each node's
        // predicted fact (`opt/fact_misses`).
        gbtl::hooks::install_fact_checker(sparsity::record_write);
        pygb::nb::install_engine(pygb::nb::EngineOps {
            enqueue_vector: dag::enqueue_vector,
            enqueue_matrix: dag::enqueue_matrix,
            flush: dag::flush,
            resolve_vector: dag::resolve_vector,
            resolve_matrix: dag::resolve_matrix,
            reduce_vector: dag::reduce_vector,
        });
    });
}

/// Enter nonblocking mode on the current thread. Assignments made
/// while the returned guard is alive are deferred into the thread's
/// operation DAG; dropping the guard (leaving the outermost scope)
/// flushes it. Guards nest.
pub fn nonblocking() -> pygb::Result<DeferGuard> {
    install_engine();
    pygb::nb::enter()
}

/// Execute every operation deferred on the current thread. Safe to
/// call at any time, in or out of nonblocking scopes.
pub fn flush() -> pygb::Result<()> {
    pygb::nb::flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pygb::{DType, Vector};

    fn dense(vals: &[f64]) -> Vector {
        let mut v = Vector::new(vals.len(), DType::Fp64);
        for (i, &x) in vals.iter().enumerate() {
            v.set(i, x).unwrap();
        }
        v
    }

    #[test]
    fn deferred_chain_flushes_on_scope_exit() {
        let u = dense(&[1.0, 2.0, 3.0]);
        let mut w = Vector::new(3, DType::Fp64);
        {
            let _nb = nonblocking().unwrap();
            let t = Vector::from_expr(&u + &u).unwrap();
            w.no_mask().assign(&t * &u).unwrap();
        }
        assert_eq!(w.to_dense_f64(), vec![2.0, 8.0, 18.0]);
    }

    #[test]
    fn read_inside_scope_forces_flush() {
        let u = dense(&[1.0, 2.0, 3.0]);
        let mut w = Vector::new(3, DType::Fp64);
        let _nb = nonblocking().unwrap();
        w.no_mask().assign(&u + &u).unwrap();
        // `get` must observe the deferred assignment.
        assert_eq!(w.get(1).unwrap().as_f64(), 4.0);
    }

    #[test]
    fn ewise_chain_fuses_to_one_dispatch() {
        let u = dense(&[1.0, 2.0, 3.0]);
        let mut w = Vector::new(3, DType::Fp64);
        // Warm both kernels so only memory hits are counted below.
        {
            let _nb = nonblocking().unwrap();
            let t = Vector::from_expr(&u + &u).unwrap();
            w.no_mask().assign(&t * &u).unwrap();
        }
        let stats = pygb::runtime().cache().stats();
        let before = stats.snapshot();
        {
            let _nb = nonblocking().unwrap();
            let t = Vector::from_expr(&u + &u).unwrap();
            w.no_mask().assign(&t * &u).unwrap();
        }
        let after = stats.snapshot();
        assert_eq!(
            after.invocations - before.invocations,
            1,
            "two deferred eWise ops must fuse into one kernel invocation"
        );
        assert_eq!(after.fused_ops - before.fused_ops, 1);
        assert_eq!(after.deferred_ops - before.deferred_ops, 2);
        assert_eq!(w.to_dense_f64(), vec![2.0, 8.0, 18.0]);
    }

    #[test]
    fn dead_node_is_elided() {
        let u = dense(&[1.0, 2.0]);
        let stats = pygb::runtime().cache().stats();
        let before = stats.snapshot();
        {
            let _nb = nonblocking().unwrap();
            let t = Vector::from_expr(&u + &u).unwrap();
            drop(t); // result never observed
        }
        let after = stats.snapshot();
        assert_eq!(
            after.invocations, before.invocations,
            "dead op must not run"
        );
        assert_eq!(after.elided_ops - before.elided_ops, 1);
    }

    #[test]
    fn held_temp_blocks_fusion_but_stays_correct() {
        let u = dense(&[1.0, 2.0, 3.0]);
        let mut w = Vector::new(3, DType::Fp64);
        let _nb = nonblocking().unwrap();
        let t = Vector::from_expr(&u + &u).unwrap();
        w.no_mask().assign(&t * &u).unwrap();
        // `t` is still live, so the producer must materialize.
        assert_eq!(t.to_dense_f64(), vec![2.0, 4.0, 6.0]);
        assert_eq!(w.to_dense_f64(), vec![2.0, 8.0, 18.0]);
    }

    #[test]
    fn reduce_fuses_with_ewise_producer() {
        let u = dense(&[1.0, 2.0, 3.0]);
        let mut d = Vector::new(3, DType::Fp64);
        // Warm.
        {
            let _nb = nonblocking().unwrap();
            d.no_mask().assign(&u * &u).unwrap();
            assert_eq!(pygb::reduce(&d).unwrap().as_f64(), 14.0);
        }
        let stats = pygb::runtime().cache().stats();
        let before = stats.snapshot();
        {
            let _nb = nonblocking().unwrap();
            d.no_mask().assign(&u * &u).unwrap();
            assert_eq!(pygb::reduce(&d).unwrap().as_f64(), 14.0);
        }
        let after = stats.snapshot();
        assert_eq!(
            after.invocations - before.invocations,
            1,
            "eWise + reduce must fold into one fused dispatch"
        );
        // The fused kernel also materializes the vector for later reads.
        assert_eq!(d.to_dense_f64(), vec![1.0, 4.0, 9.0]);
    }

    #[test]
    fn invalid_op_is_rejected_at_enqueue_not_flush() {
        let u = dense(&[1.0, 2.0]);
        let bad = dense(&[1.0, 2.0, 3.0]); // size mismatch
        let mut w = Vector::new(2, DType::Fp64);
        {
            let _nb = nonblocking().unwrap();
            // The analyzer rejects the op at enqueue time — it never
            // enters the DAG, so the later flush has nothing poisoned.
            let err = w.no_mask().assign(&u + &bad).unwrap_err();
            assert!(
                matches!(err, pygb::PygbError::Invalid { op: "eWiseAdd", .. }),
                "expected an analyzer diagnostic, got: {err}"
            );
            assert!(flush().is_ok(), "rejected op must not poison the flush");
            // The runtime stays usable inside the same scope.
            w.no_mask().assign(&u + &u).unwrap();
        }
        assert_eq!(w.to_dense_f64(), vec![2.0, 4.0]);
    }
}
