//! The dataflow optimization pipeline: liveness-based dead-op
//! elimination, common-subexpression elimination by hash-consing, and
//! structural no-op folding — run over the deferred op-DAG between
//! enqueue and wave scheduling, before the fusion pass.
//!
//! Passes are individually toggleable: the `PYGB_PASSES` environment
//! variable selects the pipeline (`dce,cse,noop` is the default; empty
//! or `none` disables all three), and [`set_passes`] overrides it per
//! thread for tests and ablation benches. Fusion is not a member of the
//! pipeline — it is the scheduler's kernel-selection step and always
//! runs — but it consumes the same frozen external-reference facts
//! ([`crate::dataflow::ExtRefs`]) the passes do.
//!
//! Every rewrite is recorded as `(node, note)` provenance so `plan()`
//! can show the raw-vs-optimized DAG with per-node attribution, and as
//! `opt/*` counters in the metrics registry so ablation runs can
//! measure launches saved.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use gbtl::ops::kind::{AppliedUnaryKind, UnaryOpKind};
use pygb::expr::{MatrixExprKind, VectorExprKind};
use pygb::nb::{MatOpDesc, MatRhs, VecOpDesc, VecRhs};
use pygb::store::{MatrixStore, VectorStore};

use crate::analyze::NodeId;
use crate::dag::{drain_aliases, mptr, subst_mat_desc, subst_vec_desc, vptr, AliasSet, Dag, Node};
use crate::dataflow::{
    self, mat_expr_known_empty, mat_known_empty, mat_rhs_ops_present, node_cse_eq, node_cse_hash,
    node_out_ptr, vec_expr_known_empty, vec_known_empty, vec_rhs_ops_present, ExtRefs,
};

// ---------------------------------------------------------------------
// Pass selection.
// ---------------------------------------------------------------------

/// One optimization pass of the pre-scheduling pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// Liveness analysis + dead-op elimination.
    Dce,
    /// Common-subexpression elimination by structural hash-consing.
    Cse,
    /// Abstract-interpretation sparsity folding: nodes whose write-back
    /// fact is provably empty resolve without dispatching (see
    /// `crate::sparsity`).
    Sparsity,
    /// Structural no-op folding (empty masks, identity applies,
    /// known-empty operands).
    Noop,
}

impl PassKind {
    pub(crate) fn label(self) -> &'static str {
        match self {
            PassKind::Dce => "dce",
            PassKind::Cse => "cse",
            PassKind::Sparsity => "sparsity",
            PassKind::Noop => "noop",
        }
    }

    fn span_label(self) -> &'static str {
        match self {
            PassKind::Dce => "opt/dce",
            PassKind::Cse => "opt/cse",
            PassKind::Sparsity => "opt/sparsity",
            PassKind::Noop => "opt/noop",
        }
    }
}

fn parse_passes(s: &str) -> Vec<PassKind> {
    let t = s.trim();
    if t.is_empty() || t == "none" {
        return Vec::new();
    }
    t.split(',')
        .filter_map(|tok| match tok.trim() {
            "dce" => Some(PassKind::Dce),
            "cse" => Some(PassKind::Cse),
            "sparsity" => Some(PassKind::Sparsity),
            "noop" => Some(PassKind::Noop),
            _ => None,
        })
        .collect()
}

fn env_passes() -> &'static [PassKind] {
    static ENV: OnceLock<Vec<PassKind>> = OnceLock::new();
    ENV.get_or_init(|| match std::env::var("PYGB_PASSES") {
        Ok(s) => parse_passes(&s),
        Err(_) => vec![
            PassKind::Dce,
            PassKind::Cse,
            PassKind::Sparsity,
            PassKind::Noop,
        ],
    })
}

thread_local! {
    static OVERRIDE: RefCell<Option<Vec<PassKind>>> = const { RefCell::new(None) };
}

/// Override the pass pipeline for the calling thread (tests, ablation
/// benches). Replaces whatever `PYGB_PASSES` selected until
/// [`reset_passes`] is called. Passing an empty slice disables every
/// pass (fusion still runs — it is not a pipeline member).
pub fn set_passes(passes: &[PassKind]) {
    OVERRIDE.with(|o| *o.borrow_mut() = Some(passes.to_vec()));
}

/// Drop the calling thread's [`set_passes`] override, reverting to the
/// `PYGB_PASSES` selection.
pub fn reset_passes() {
    OVERRIDE.with(|o| *o.borrow_mut() = None);
}

/// The pipeline currently in effect on this thread, in run order.
pub(crate) fn enabled_passes() -> Vec<PassKind> {
    OVERRIDE
        .with(|o| o.borrow().clone())
        .unwrap_or_else(|| env_passes().to_vec())
}

// ---------------------------------------------------------------------
// Pipeline driver.
// ---------------------------------------------------------------------

/// Shared pass state: frozen external-reference counts, the
/// simulation flag (plan's what-if run must not move counters, spans,
/// or the refusal log), and accumulated rewrite provenance.
pub(crate) struct PassCtx {
    pub(crate) ext: ExtRefs,
    pub(crate) simulate: bool,
    pub(crate) provenance: Vec<(NodeId, String)>,
}

/// What one pipeline run did, for the statistics counters and the
/// plan/trace provenance views.
#[derive(Debug, Default)]
pub(crate) struct PipelineSummary {
    /// Producer nodes absorbed by the fusion pass.
    pub(crate) fused: usize,
    /// Nodes removed by dead-op elimination.
    pub(crate) dce: usize,
    /// Duplicate nodes merged by CSE.
    pub(crate) cse: usize,
    /// Provably-empty nodes folded by the sparsity pass.
    pub(crate) sparsity: usize,
    /// Nodes folded away by the no-op pass.
    pub(crate) noop: usize,
    /// Per-node rewrite attribution, in rewrite order.
    pub(crate) provenance: Vec<(NodeId, String)>,
}

/// Run the enabled passes, then the fusion pass, then (when DCE is
/// enabled) a final dead-op sweep over whatever fusion and folding
/// orphaned. `mult` is the descriptor multiplicity for the
/// external-reference freeze: 1 on the real DAG, 2 when `dag` is a
/// clone and the original still holds every descriptor (plan's
/// simulation).
pub(crate) fn run_pipeline(dag: &mut Dag, mult: usize, simulate: bool) -> PipelineSummary {
    let mut ctx = PassCtx {
        ext: ExtRefs::freeze(dag, mult),
        simulate,
        provenance: Vec::new(),
    };
    if !simulate {
        crate::analyze::clear_refusals();
    }
    let passes = enabled_passes();
    let mut summary = PipelineSummary::default();
    for p in &passes {
        let sp = (!simulate).then(|| pygb_obs::span(pygb_obs::Cat::Opt, p.span_label()));
        let n = match p {
            PassKind::Dce => {
                let n = dce_pass(dag, &mut ctx);
                summary.dce += n;
                n
            }
            PassKind::Cse => {
                let n = cse_pass(dag, &mut ctx);
                summary.cse += n;
                n
            }
            PassKind::Sparsity => {
                let n = sparsity_pass(dag, &mut ctx);
                summary.sparsity += n;
                n
            }
            PassKind::Noop => {
                let n = noop_pass(dag, &mut ctx);
                summary.noop += n;
                n
            }
        };
        if let Some(mut sp) = sp {
            if sp.is_active() {
                sp.arg("rewrites", n.to_string());
            }
        }
    }
    summary.fused = crate::fuse::fuse_pass(dag, &mut ctx);
    if passes.contains(&PassKind::Dce) {
        // Fusion and folding drop operand references; a producer whose
        // only consumer was absorbed or folded is now dead.
        let sp = (!simulate).then(|| pygb_obs::span(pygb_obs::Cat::Opt, "opt/dce"));
        summary.dce += dce_pass(dag, &mut ctx);
        drop(sp);
    }
    summary.provenance = ctx.provenance;
    summary
}

// ---------------------------------------------------------------------
// Pass 1: liveness / dead-op elimination.
// ---------------------------------------------------------------------

/// Remove every node whose output can never be observed: no external
/// handle survives (frozen count) and no live use reads it — where a
/// fully-overwriting consumer's `target` is a *dead* use (the prior
/// contents are never read). Cascades to fixpoint: an elided node
/// drops its operand uses, which may orphan upstream producers.
fn dce_pass(dag: &mut Dag, ctx: &mut PassCtx) -> usize {
    let mut elided = 0;
    loop {
        let live = dataflow::live_use_ptrs(dag);
        let mut any = false;
        for i in 0..dag.nodes.len() {
            let Some(n) = &dag.nodes[i] else { continue };
            let p = node_out_ptr(n);
            if ctx.ext.get(p) != 0 || live.contains(&p) {
                continue;
            }
            dag.nodes[i] = None;
            dag.pending.remove(&p);
            ctx.provenance
                .push((dag.ids[i], "elided by dce (output never read)".to_string()));
            elided += 1;
            any = true;
        }
        if !any {
            return elided;
        }
    }
}

// ---------------------------------------------------------------------
// Pass 2: common-subexpression elimination.
// ---------------------------------------------------------------------

/// Merge structurally identical nodes: one forward scan hash-conses
/// each eligible node ([`node_cse_hash`]); a later duplicate is elided
/// and every surviving reference to its placeholder is rewritten to
/// the representative's. Sound because stores are immutable `Arc`
/// snapshots — pointer-identical operands can never diverge in value.
fn cse_pass(dag: &mut Dag, ctx: &mut PassCtx) -> usize {
    let mut merged = 0;
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for i in 0..dag.nodes.len() {
        let Some(n) = &dag.nodes[i] else { continue };
        let Some(h) = node_cse_hash(n) else { continue };
        let slots = buckets.entry(h).or_default();
        let rep = slots
            .iter()
            .copied()
            .find(|&j| dag.nodes[j].as_ref().is_some_and(|m| node_cse_eq(m, n)));
        match rep {
            Some(j) => {
                merge_dup(dag, ctx, j, i);
                merged += 1;
            }
            None => slots.push(i),
        }
    }
    merged
}

/// Elide duplicate node `dup_i`, redirecting its placeholder to
/// representative `rep_i`'s: surviving descriptors are rewritten to
/// read the representative's placeholder directly, while external
/// handles of the duplicate resolve through an [`AliasSet`] when the
/// representative's result lands. The duplicate's `pending` entry is
/// kept (mapping to the now-empty slot) so flush-on-read still
/// triggers for user handles.
fn merge_dup(dag: &mut Dag, ctx: &mut PassCtx, rep_i: usize, dup_i: usize) {
    let note = format!("elided by cse, dup of {}", dag.ids[rep_i]);
    ctx.provenance.push((dag.ids[dup_i], note));
    let dup = dag.nodes[dup_i].take().expect("dup slot checked by caller");
    match (&dag.nodes[rep_i], dup) {
        (Some(Node::Vec(r)), Node::Vec(d)) => {
            let dup_out = d.out;
            let rep_out = Arc::clone(&r.out);
            dag.alias_v
                .entry(vptr(&rep_out))
                .or_insert_with(|| AliasSet {
                    rep: rep_out.clone(),
                    dups: Vec::new(),
                })
                .dups
                .push(Arc::clone(&dup_out));
            let mut rv = HashMap::new();
            rv.insert(vptr(&dup_out), (dup_out, rep_out));
            let rm = HashMap::new();
            rewrite_all(dag, &rv, &rm);
        }
        (Some(Node::Mat(r)), Node::Mat(d)) => {
            let dup_out = d.out;
            let rep_out = Arc::clone(&r.out);
            dag.alias_m
                .entry(mptr(&rep_out))
                .or_insert_with(|| AliasSet {
                    rep: rep_out.clone(),
                    dups: Vec::new(),
                })
                .dups
                .push(Arc::clone(&dup_out));
            let rv = HashMap::new();
            let mut rm = HashMap::new();
            rm.insert(mptr(&dup_out), (dup_out, rep_out));
            rewrite_all(dag, &rv, &rm);
        }
        _ => unreachable!("node_cse_eq never matches across vec/mat"),
    }
}

/// Substitute placeholder redirections into every surviving node.
/// Vector nodes consult both maps (their expressions carry matrix
/// operands); matrix nodes only the matrix map.
fn rewrite_all(
    dag: &mut Dag,
    rv: &HashMap<usize, (Arc<VectorStore>, Arc<VectorStore>)>,
    rm: &HashMap<usize, (Arc<MatrixStore>, Arc<MatrixStore>)>,
) {
    for n in dag.nodes.iter_mut().flatten() {
        match n {
            Node::Vec(d) => subst_vec_desc(rv, rm, d),
            Node::Mat(d) => subst_mat_desc(rv, rm, d),
        }
    }
}

// ---------------------------------------------------------------------
// Pass 3: no-op elimination / structural-fact folding.
// ---------------------------------------------------------------------

/// Fold every node whose abstract write-back fact is provably empty
/// (see `crate::sparsity`): the node's result container provably holds
/// zero entries, so its placeholder resolves to a fresh empty store
/// without dispatching. Strictly stronger than the no-op pass's
/// syntactic emptiness checks — facts propagate *through* pending
/// placeholders (an empty mask five nodes upstream still proves this
/// node empty), and masked/accumulated/complemented nodes fold
/// whenever the interval arithmetic pins the result at zero. The
/// operator-presence gate keeps `MissingOperator` errors observable,
/// and region assigns are never folded (their facts are ⊤ anyway).
fn sparsity_pass(dag: &mut Dag, ctx: &mut PassCtx) -> usize {
    let analysis = crate::sparsity::analyze(dag, !ctx.simulate);
    let mut folded = 0;
    for i in 0..dag.nodes.len() {
        let provably_empty = analysis
            .facts
            .get(&i)
            .is_some_and(|nf| nf.fact.provably_empty());
        if !provably_empty {
            continue;
        }
        let eligible = match &dag.nodes[i] {
            Some(Node::Vec(d)) => d.region.is_none() && vec_rhs_ops_present(&d.rhs),
            Some(Node::Mat(d)) => d.region.is_none() && mat_rhs_ops_present(&d.rhs),
            None => false,
        };
        if !eligible {
            continue;
        }
        ctx.provenance.push((
            dag.ids[i],
            "elided by sparsity (provably-empty result)".to_string(),
        ));
        match dag.nodes[i].take().expect("checked above") {
            Node::Vec(d) => {
                let p = vptr(&d.out);
                dag.pending.remove(&p);
                let empty = Arc::new(VectorStore::new(d.out.size(), d.out.dtype()));
                dag.resolved_v.insert(p, (d.out, empty));
                drain_aliases(dag, p);
            }
            Node::Mat(d) => {
                let p = mptr(&d.out);
                dag.pending.remove(&p);
                let empty = Arc::new(MatrixStore::new(
                    d.out.nrows(),
                    d.out.ncols(),
                    d.out.dtype(),
                ));
                dag.resolved_m.insert(p, (d.out, empty));
                drain_aliases(dag, p);
            }
        }
        folded += 1;
    }
    folded
}

enum VecFold {
    /// The node provably writes an empty container.
    Empty,
    /// The node provably writes exactly this store's (eventual) value.
    Alias(Arc<VectorStore>),
}

enum MatFold {
    Empty,
    Alias(Arc<MatrixStore>),
}

/// Fold nodes whose result is structurally forced: an empty
/// non-complemented mask, an accumulation of a known-empty right-hand
/// side, a known-empty result, an identity apply, or an `eWiseAdd`
/// with one empty operand. Folded nodes skip dispatch entirely —
/// their placeholder resolves to an empty store or aliases another
/// container's value. Emptiness is only trusted for non-pending
/// stores, and every gate requires the needed operators to be present
/// so `MissingOperator` errors still surface at eval.
fn noop_pass(dag: &mut Dag, ctx: &mut PassCtx) -> usize {
    let mut folded = 0;
    for i in 0..dag.nodes.len() {
        enum Action {
            V(VecFold, &'static str),
            M(MatFold, &'static str),
        }
        let action = match &dag.nodes[i] {
            Some(Node::Vec(d)) => vec_noop_action(dag, d).map(|(f, why)| Action::V(f, why)),
            Some(Node::Mat(d)) => mat_noop_action(dag, d).map(|(f, why)| Action::M(f, why)),
            None => None,
        };
        let Some(action) = action else { continue };
        let why = match &action {
            Action::V(_, w) | Action::M(_, w) => *w,
        };
        ctx.provenance
            .push((dag.ids[i], format!("elided by noop ({why})")));
        let node = dag.nodes[i].take().expect("checked above");
        match (action, node) {
            (Action::V(VecFold::Empty, _), Node::Vec(d)) => {
                let p = vptr(&d.out);
                dag.pending.remove(&p);
                let empty = Arc::new(VectorStore::new(d.out.size(), d.out.dtype()));
                dag.resolved_v.insert(p, (d.out, empty));
                drain_aliases(dag, p);
            }
            (Action::V(VecFold::Alias(src), _), Node::Vec(d)) => {
                let p = vptr(&d.out);
                let sp = vptr(&src);
                if let Some(store) = dag.resolved_v.get(&sp).map(|(_, s)| Arc::clone(s)) {
                    dag.pending.remove(&p);
                    dag.resolved_v.insert(p, (d.out, store));
                    drain_aliases(dag, p);
                } else if dag.pending.contains_key(&sp) {
                    // Keep this node's own pending entry: readers of its
                    // handle must still trigger the flush, and the alias
                    // drains when the source placeholder resolves.
                    dag.alias_v
                        .entry(sp)
                        .or_insert_with(|| AliasSet {
                            rep: Arc::clone(&src),
                            dups: Vec::new(),
                        })
                        .dups
                        .push(d.out);
                } else {
                    dag.pending.remove(&p);
                    dag.resolved_v.insert(p, (d.out, src));
                    drain_aliases(dag, p);
                }
            }
            (Action::M(MatFold::Empty, _), Node::Mat(d)) => {
                let p = mptr(&d.out);
                dag.pending.remove(&p);
                let empty = Arc::new(MatrixStore::new(
                    d.out.nrows(),
                    d.out.ncols(),
                    d.out.dtype(),
                ));
                dag.resolved_m.insert(p, (d.out, empty));
                drain_aliases(dag, p);
            }
            (Action::M(MatFold::Alias(src), _), Node::Mat(d)) => {
                let p = mptr(&d.out);
                let sp = mptr(&src);
                if let Some(store) = dag.resolved_m.get(&sp).map(|(_, s)| Arc::clone(s)) {
                    dag.pending.remove(&p);
                    dag.resolved_m.insert(p, (d.out, store));
                    drain_aliases(dag, p);
                } else if dag.pending.contains_key(&sp) {
                    dag.alias_m
                        .entry(sp)
                        .or_insert_with(|| AliasSet {
                            rep: Arc::clone(&src),
                            dups: Vec::new(),
                        })
                        .dups
                        .push(d.out);
                } else {
                    dag.pending.remove(&p);
                    dag.resolved_m.insert(p, (d.out, src));
                    drain_aliases(dag, p);
                }
            }
            _ => unreachable!("action built from the same node"),
        }
        folded += 1;
    }
    folded
}

fn vec_noop_action(dag: &Dag, d: &VecOpDesc) -> Option<(VecFold, &'static str)> {
    if d.region.is_some() || !vec_rhs_ops_present(&d.rhs) {
        return None;
    }
    // An empty non-complemented mask admits no writes: with replace the
    // result is empty, without it the target is untouched (under any
    // accumulator — accumulation is also a write).
    if let Some((m, false)) = &d.mask {
        if vec_known_empty(dag, m) {
            return Some(if d.replace {
                (VecFold::Empty, "empty mask with replace")
            } else {
                (
                    VecFold::Alias(Arc::clone(&d.target)),
                    "empty mask, replace off",
                )
            });
        }
    }
    let VecRhs::Expr(e) = &d.rhs else { return None };
    let empty_rhs = vec_expr_known_empty(dag, e);
    // Accumulating an empty right-hand side merges nothing: the target
    // passes through (outside-mask positions are untouched too while
    // replace is off).
    if d.accum.is_some() && !d.replace && empty_rhs {
        return Some((
            VecFold::Alias(Arc::clone(&d.target)),
            "identity accum of empty rhs",
        ));
    }
    if !d.is_plain() {
        return None;
    }
    if empty_rhs {
        return Some((VecFold::Empty, "known-empty result"));
    }
    match &e.kind {
        VectorExprKind::Apply {
            u,
            op: Some(AppliedUnaryKind::Pure(UnaryOpKind::Identity)),
        } if u.dtype() == d.out.dtype() => Some((VecFold::Alias(Arc::clone(u)), "identity apply")),
        VectorExprKind::EWiseAdd { u, v, op: Some(_) }
            if u.dtype() == v.dtype() && u.dtype() == d.out.dtype() =>
        {
            // Union semantics: the operator only combines intersecting
            // entries; with one side empty the other passes through.
            if vec_known_empty(dag, u) {
                Some((VecFold::Alias(Arc::clone(v)), "eWiseAdd with empty operand"))
            } else if vec_known_empty(dag, v) {
                Some((VecFold::Alias(Arc::clone(u)), "eWiseAdd with empty operand"))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn mat_noop_action(dag: &Dag, d: &MatOpDesc) -> Option<(MatFold, &'static str)> {
    if d.region.is_some() || !mat_rhs_ops_present(&d.rhs) {
        return None;
    }
    if let Some((m, false)) = &d.mask {
        if mat_known_empty(dag, m) {
            return Some(if d.replace {
                (MatFold::Empty, "empty mask with replace")
            } else {
                (
                    MatFold::Alias(Arc::clone(&d.target)),
                    "empty mask, replace off",
                )
            });
        }
    }
    let MatRhs::Expr(e) = &d.rhs else { return None };
    let empty_rhs = mat_expr_known_empty(dag, e);
    if d.accum.is_some() && !d.replace && empty_rhs {
        return Some((
            MatFold::Alias(Arc::clone(&d.target)),
            "identity accum of empty rhs",
        ));
    }
    if !d.is_plain() {
        return None;
    }
    if empty_rhs {
        return Some((MatFold::Empty, "known-empty result"));
    }
    match &e.kind {
        MatrixExprKind::Apply {
            a,
            op: Some(AppliedUnaryKind::Pure(UnaryOpKind::Identity)),
        } if !a.transposed && a.store.dtype() == d.out.dtype() => {
            Some((MatFold::Alias(Arc::clone(&a.store)), "identity apply"))
        }
        MatrixExprKind::EWiseAdd { a, b, op: Some(_) }
            if !a.transposed
                && !b.transposed
                && a.store.dtype() == b.store.dtype()
                && a.store.dtype() == d.out.dtype() =>
        {
            if mat_known_empty(dag, &a.store) {
                Some((
                    MatFold::Alias(Arc::clone(&b.store)),
                    "eWiseAdd with empty operand",
                ))
            } else if mat_known_empty(dag, &b.store) {
                Some((
                    MatFold::Alias(Arc::clone(&a.store)),
                    "eWiseAdd with empty operand",
                ))
            } else {
                None
            }
        }
        _ => None,
    }
}
