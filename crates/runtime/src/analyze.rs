//! The DAG half of `pygb-analyze`: aliasing / fusion-legality checks
//! consulted by every rule in the fusion pass, and the [`plan`] /
//! explain API that dumps the analyzed DAG without executing it.
//!
//! ## What fusion must prove
//!
//! A fusion rewrite absorbs a producer node `P` into a consumer `C`:
//! `P`'s expression operands are carried into `C`'s new composite
//! expression, while `P`'s *merge base* (`P.target`, the prior value of
//! the container `P` wrote) is discarded — legal only because `P` is
//! plain (full overwrite). Every store in this runtime is an immutable
//! `Arc` snapshot and the dispatch layer's `take_store` clones any
//! shared buffer before a kernel may mutate it, so an alias between the
//! consumer's output (its merge base `C.target`) and a *carried*
//! producer operand is provably safe: the fused descriptor itself holds
//! the second reference that forces the copy.
//!
//! The alias the analysis cannot discharge is `C.target` against the
//! input the rewrite *discards* — the producer's own merge base
//! `P.target`. After the rewrite no reference to that store survives in
//! the fused node, so the pointer analysis can no longer relate the
//! consumer's merge-read to the producer's overwritten container. That
//! situation arises only when two container handles share one store (a
//! `clone`d vector written through both names). Fusion is refused, the
//! `refused_fusions` statistics counter bumps, the reason is logged
//! (see [`last_refusals`]), and both nodes execute unfused — slower,
//! provably correct.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use pygb::expr::{MatrixExprKind, VectorExprKind};
use pygb::nb::{MatOpDesc, MatRhs, VecOpDesc, VecRhs};
use pygb::store::VectorStore;

use crate::dag::{self, node_inputs, vptr, Dag, Node};

// ---------------------------------------------------------------------
// Node identity.
// ---------------------------------------------------------------------

/// Stable identity of a deferred DAG node, assigned at enqueue and kept
/// through fusion rewrites. Rendered as `n<N>` everywhere a node is
/// named — [`plan`], [`trace_report`], and refusal diagnostics all
/// refer to the same node by the same token, so a plan printed before a
/// flush can be lined up against the trace report printed after it.
/// Numbering restarts at `n0` once a DAG fully drains, matching the
/// per-scope numbering a fresh plan shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

fn fmt_ids(ids: &[NodeId]) -> String {
    let parts: Vec<String> = ids.iter().map(|i| i.to_string()).collect();
    format!("[{}]", parts.join(", "))
}

// ---------------------------------------------------------------------
// Refusal log.
// ---------------------------------------------------------------------

/// Most refusal reasons retained per thread. The log is cleared at the
/// start of every pipeline run, but a single degenerate flush (or a
/// long-lived serve worker that never reads the log) must not grow an
/// unbounded diagnostic buffer — beyond the cap the oldest entries are
/// dropped and counted.
const REFUSAL_CAP: usize = 64;

struct RefusalLog {
    ring: std::collections::VecDeque<String>,
    dropped: u64,
}

thread_local! {
    static REFUSALS: RefCell<RefusalLog> = const {
        RefCell::new(RefusalLog {
            ring: std::collections::VecDeque::new(),
            dropped: 0,
        })
    };
}

/// Clear the refusal log (start of an optimize pipeline).
pub(crate) fn clear_refusals() {
    REFUSALS.with(|r| {
        let mut log = r.borrow_mut();
        log.ring.clear();
        log.dropped = 0;
    });
}

pub(crate) fn record_refusal(reason: String) {
    pygb::runtime().cache().stats().record_refused(1);
    REFUSALS.with(|r| {
        let mut log = r.borrow_mut();
        if log.ring.len() == REFUSAL_CAP {
            log.ring.pop_front();
            log.dropped += 1;
        }
        log.ring.push_back(reason);
    });
}

/// The reasons the aliasing analysis refused fusions during the most
/// recent fusion pass on this thread (empty when everything that
/// matched a rule also proved legal). At most `REFUSAL_CAP` (64)
/// entries are retained; when older ones were dropped, a final
/// synthetic entry reports how many.
pub fn last_refusals() -> Vec<String> {
    REFUSALS.with(|r| {
        let log = r.borrow();
        let mut out: Vec<String> = log.ring.iter().cloned().collect();
        if log.dropped > 0 {
            out.push(format!("({} earlier refusal(s) dropped)", log.dropped));
        }
        out
    })
}

// ---------------------------------------------------------------------
// Producer legality: the check every fusion rule consults.
// ---------------------------------------------------------------------

/// Outcome of analyzing one candidate producer for one consumer.
pub(crate) enum FuseCheck {
    /// Rule may fire; the producer is at this node index.
    Fusible(usize),
    /// The producer matched the rule but the aliasing analysis could
    /// not prove the rewrite safe.
    Refused(usize, String),
    /// No pending plain producer of the wanted shape (not an error —
    /// the consumer simply dispatches unfused).
    No,
}

/// Analyze the pending producer of placeholder `out` as a fusion
/// candidate for consumer `c`. The producer must be a plain vector node
/// (no mask, accumulator, or region) whose expression satisfies `want`,
/// observed only by its own descriptor plus `consumer_refs` slots of
/// the consumer — and the rewrite must pass the aliasing check (see
/// the module docs).
///
/// Observation is established from the frozen external counts (`ext`)
/// plus fresh structural scans, never from `Arc::strong_count` (which
/// is skewed while a plan simulation's clone is alive): the producer's
/// placeholder must have zero external handles, exactly one DAG
/// reference (the producer's own `out` — alias-set entries count and
/// block), and exactly `consumer_refs` references from the consumer's
/// descriptor. `skip` names the consumer's still-attached slot when
/// the caller could not detach it (the read-only plan assessment); the
/// fusion pass detaches consumers, so its slot is already empty.
pub(crate) fn check_producer(
    dag: &Dag,
    ext: &crate::dataflow::ExtRefs,
    c: &VecOpDesc,
    out: &Arc<VectorStore>,
    consumer_refs: usize,
    skip: Option<usize>,
    want: &dyn Fn(&VectorExprKind) -> bool,
) -> FuseCheck {
    let p = vptr(out);
    let Some(&idx) = dag.pending.get(&p) else {
        return FuseCheck::No;
    };
    let Some(Node::Vec(d)) = &dag.nodes[idx] else {
        return FuseCheck::No;
    };
    let plain = d.mask.is_none()
        && d.accum.is_none()
        && d.region.is_none()
        && matches!(&d.rhs, VecRhs::Expr(e) if want(&e.kind));
    if !plain
        || ext.get(p) != 0
        || crate::dataflow::dag_ref_count(dag, p, skip) != 1
        || crate::dataflow::vec_desc_ref_count(c, p) != consumer_refs
    {
        return FuseCheck::No;
    }
    match alias_hazard(c, d) {
        Some(reason) => FuseCheck::Refused(idx, reason),
        None => FuseCheck::Fusible(idx),
    }
}

/// The aliasing rule: the consumer's output (its merge base) must not
/// alias the producer input that fusion discards — the producer's own
/// merge base. Aliases against carried expression operands are proven
/// safe by the copy-on-write argument in the module docs and do not
/// refuse.
fn alias_hazard(c: &VecOpDesc, p: &VecOpDesc) -> Option<String> {
    if vptr(&c.target) == vptr(&p.target) {
        return Some(format!(
            "consumer output [{} {}] aliases the producer's merge base \
             (two container handles share one store); the rewrite discards \
             that input, so copy-on-write protection cannot be proven",
            c.target.size(),
            c.target.dtype(),
        ));
    }
    None
}

// ---------------------------------------------------------------------
// Kernel naming (mirrors the dispatch layer's function selection).
// ---------------------------------------------------------------------

/// The kernel family a deferred vector node will dispatch as.
pub(crate) fn vec_kernel_name(d: &VecOpDesc) -> &'static str {
    match &d.rhs {
        VecRhs::Scalar(_) => "assign_v_const",
        VecRhs::Expr(e) => match &e.kind {
            VectorExprKind::MxV { .. } => "mxv",
            VectorExprKind::VxM { .. } => "vxm",
            VectorExprKind::EWiseAdd { .. } => "ewise_add_v",
            VectorExprKind::EWiseMult { .. } => "ewise_mult_v",
            VectorExprKind::Apply { .. } => "apply_v",
            VectorExprKind::Extract { .. } => "extract_v",
            VectorExprKind::ReduceRows { .. } => "reduce_rows",
            VectorExprKind::FusedMxvApply { vxm: true, .. } => "vxm_apply",
            VectorExprKind::FusedMxvApply { vxm: false, .. } => "mxv_apply",
            VectorExprKind::FusedEwiseChain { .. } => "fused_ewise_chain",
            VectorExprKind::Ref { .. } => {
                if d.region.is_some() {
                    "assign_v"
                } else {
                    "apply_v"
                }
            }
        },
    }
}

/// The kernel family a deferred matrix node will dispatch as.
pub(crate) fn mat_kernel_name(d: &MatOpDesc) -> &'static str {
    match &d.rhs {
        MatRhs::Scalar(_) => "assign_m_const",
        MatRhs::Expr(e) => match &e.kind {
            MatrixExprKind::MxM { .. } => "mxm",
            MatrixExprKind::EWiseAdd { .. } => "ewise_add_m",
            MatrixExprKind::EWiseMult { .. } => "ewise_mult_m",
            MatrixExprKind::Apply { .. } => "apply_m",
            MatrixExprKind::Transpose { .. } => "transpose_m",
            MatrixExprKind::Extract { .. } => "extract_m",
            MatrixExprKind::Ref { .. } => {
                if d.region.is_some() {
                    "assign_m"
                } else {
                    "apply_m"
                }
            }
        },
    }
}

// ---------------------------------------------------------------------
// plan() / explain.
// ---------------------------------------------------------------------

/// One analyzed node of the pending DAG.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Stable node identity (enqueue order; also what `deps` refers
    /// to, and the token [`trace_report`] uses for the same node).
    pub id: NodeId,
    /// The operation, rendered with every operand's shape and dtype.
    pub op: String,
    /// The inferred output, as `[shape dtype]`.
    pub output: String,
    /// The kernel family the dispatch layer will select.
    pub kernel: String,
    /// The node's inferred sparsity/structure fact (see
    /// `pygb::facts`): nnz interval, density bound, structure flags,
    /// and any statically decided kernel hint.
    pub facts: Option<String>,
    /// Whether a mask governs the write.
    pub masked: bool,
    /// Whether the mask is complemented.
    pub complemented: bool,
    /// Whether an accumulator merges into the prior value.
    pub accum: bool,
    /// GraphBLAS replace flag.
    pub replace: bool,
    /// Ids of pending nodes this node reads.
    pub deps: Vec<NodeId>,
    /// Fusion assessment: which producer this node would absorb at
    /// flush, or why the aliasing analysis refuses; `None` when no
    /// fusion rule matches.
    pub fusion: Option<String>,
}

/// The analyzed pending DAG — what a flush would execute right now,
/// in both its raw (as-enqueued) and optimized (post-pipeline) forms.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Analyzed nodes in enqueue order, exactly as enqueued.
    pub nodes: Vec<PlanNode>,
    /// The nodes that would survive the optimization pipeline (the
    /// enabled passes plus fusion), computed by simulating the
    /// pipeline on a copy of the DAG. Node ids match `nodes`.
    pub optimized: Vec<PlanNode>,
    /// The passes the simulation ran, in order (`PYGB_PASSES` or the
    /// per-thread override).
    pub passes: Vec<String>,
    /// Per-node rewrite attribution for every node of `nodes` missing
    /// from `optimized`: which pass removed it and why (e.g. `elided
    /// by cse, dup of n3`), sorted by node id.
    pub provenance: Vec<(NodeId, String)>,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            return writeln!(f, "nonblocking plan: empty (nothing deferred)");
        }
        writeln!(f, "nonblocking plan: {} pending node(s)", self.nodes.len())?;
        for n in &self.nodes {
            write_plan_node(f, "  ", n)?;
        }
        writeln!(
            f,
            "optimized (passes: {}): {} node(s)",
            if self.passes.is_empty() {
                "none".to_string()
            } else {
                self.passes.join(",")
            },
            self.optimized.len()
        )?;
        for n in &self.optimized {
            write_plan_node(f, "  ", n)?;
        }
        for (id, note) in &self.provenance {
            writeln!(f, "  {id}: {note}")?;
        }
        Ok(())
    }
}

fn write_plan_node(f: &mut fmt::Formatter<'_>, indent: &str, n: &PlanNode) -> fmt::Result {
    write!(
        f,
        "{indent}{} {} -> {}  kernel={}",
        n.id, n.op, n.output, n.kernel
    )?;
    if let Some(fa) = &n.facts {
        write!(f, "  facts[{fa}]")?;
    }
    if n.masked {
        write!(f, "  mask{}", if n.complemented { "=~m" } else { "=m" })?;
    }
    if n.accum {
        write!(f, "  accum")?;
    }
    if n.replace {
        write!(f, "  replace")?;
    }
    if !n.deps.is_empty() {
        write!(f, "  deps={}", fmt_ids(&n.deps))?;
    }
    if let Some(fu) = &n.fusion {
        write!(f, "  {fu}")?;
    }
    writeln!(f)
}

/// Analyze the calling thread's pending DAG without executing or
/// rewriting it: per-node inferred shapes and dtypes, the kernel each
/// node would dispatch, dependency edges, and — for every node a fusion
/// rule matches — whether the flush would fuse it or why the aliasing
/// analysis refuses. Also simulates the optimization pipeline on a
/// copy of the DAG, reporting the optimized node set and per-node
/// rewrite provenance. Read-only: statistics counters do not move and
/// the DAG is left exactly as found.
pub fn plan() -> Plan {
    dag::with_dag(|dag| {
        // Freeze external-reference counts before the simulation clone
        // exists: with one descriptor copy alive, multiplicity is 1.
        let ext = crate::dataflow::ExtRefs::freeze(dag, 1);
        // Abstractly interpret the raw DAG (no lints: plan() is a
        // read-only assessment, the real flush reports them) so every
        // node renders its inferred fact next to its kernel verdict.
        let raw_facts = crate::sparsity::analyze(dag, false);
        let nodes = (0..dag.nodes.len())
            .filter_map(|i| {
                dag.nodes[i]
                    .as_ref()
                    .map(|n| plan_node(dag, Some(&ext), i, n, raw_facts.facts.get(&i)))
            })
            .collect();
        // Simulate the pipeline on a clone. The clone doubles every
        // descriptor-held reference, hence multiplicity 2; the real DAG,
        // counters, spans, and refusal log are untouched.
        let mut sim = dag.clone();
        let summary = crate::passes::run_pipeline(&mut sim, 2, true);
        let sim_facts = crate::sparsity::analyze(&sim, false);
        let optimized = (0..sim.nodes.len())
            .filter_map(|i| {
                sim.nodes[i]
                    .as_ref()
                    .map(|n| plan_node(&sim, None, i, n, sim_facts.facts.get(&i)))
            })
            .collect();
        let mut provenance = summary.provenance;
        provenance.sort_by_key(|(id, _)| *id);
        let passes = crate::passes::enabled_passes()
            .iter()
            .map(|p| p.label().to_string())
            .collect();
        Plan {
            nodes,
            optimized,
            passes,
            provenance,
        }
    })
}

/// Shared rendering of a node's operation and kernel family — the
/// `plan` and `trace_report` views describe the same node with the
/// same strings.
pub(crate) fn node_summary(n: &Node) -> (String, String) {
    match n {
        Node::Vec(d) => (
            match &d.rhs {
                VecRhs::Expr(e) => pygb::analyze::describe_vector_expr(e),
                VecRhs::Scalar(v) => format!("assign scalar {}", v.dtype()),
            },
            vec_kernel_name(d).to_string(),
        ),
        Node::Mat(d) => (
            match &d.rhs {
                MatRhs::Expr(e) => pygb::analyze::describe_matrix_expr(e),
                MatRhs::Scalar(v) => format!("assign scalar {}", v.dtype()),
            },
            mat_kernel_name(d).to_string(),
        ),
    }
}

/// Ids of the pending nodes that `n` (at slot `index`) reads.
pub(crate) fn node_dep_ids(dag: &Dag, index: usize, n: &Node) -> Vec<NodeId> {
    let mut deps: Vec<usize> = node_inputs(n)
        .iter()
        .filter_map(|p| dag.pending.get(p).copied())
        .filter(|&i| i != index)
        .collect();
    deps.sort_unstable();
    deps.dedup();
    deps.into_iter().map(|i| dag.ids[i]).collect()
}

/// Render one DAG slot as a [`PlanNode`]. `ext` enables the fusion
/// assessment (raw view); the optimized view passes `None` — its
/// fusion rewrites already happened in the simulation.
fn plan_node(
    dag: &Dag,
    ext: Option<&crate::dataflow::ExtRefs>,
    index: usize,
    n: &Node,
    nf: Option<&crate::sparsity::NodeFacts>,
) -> PlanNode {
    let deps = node_dep_ids(dag, index, n);
    let (op, kernel) = node_summary(n);
    let facts = nf.map(crate::sparsity::render_facts);
    match n {
        Node::Vec(d) => PlanNode {
            id: dag.ids[index],
            op,
            output: format!("[{} {}]", d.out.size(), d.out.dtype()),
            kernel,
            facts: facts.clone(),
            masked: d.mask.is_some(),
            complemented: d.mask.as_ref().is_some_and(|(_, c)| *c),
            accum: d.accum.is_some(),
            replace: d.replace,
            deps,
            fusion: ext.and_then(|e| assess_fusion(dag, e, index, d)),
        },
        Node::Mat(d) => PlanNode {
            id: dag.ids[index],
            op,
            output: format!("[{}x{} {}]", d.out.nrows(), d.out.ncols(), d.out.dtype()),
            kernel,
            facts,
            masked: d.mask.is_some(),
            complemented: d.mask.as_ref().is_some_and(|(_, c)| *c),
            accum: d.accum.is_some(),
            replace: d.replace,
            deps,
            // No matrix fusion rules exist yet; nothing to assess.
            fusion: None,
        },
    }
}

/// Read-only mirror of the fusion pass's candidate matching: report
/// what the optimizer would decide for this consumer without detaching
/// anything or moving counters. The reference reasoning is identical
/// because the structural scan skips the consumer's own slot (`index`)
/// — exactly what detaching it would remove — and counts the
/// consumer's references directly from its descriptor.
fn assess_fusion(
    dag: &Dag,
    ext: &crate::dataflow::ExtRefs,
    index: usize,
    c: &VecOpDesc,
) -> Option<String> {
    if c.region.is_some() {
        return None;
    }
    let VecRhs::Expr(ce) = &c.rhs else {
        return None;
    };
    let is_ewise = |k: &VectorExprKind| {
        matches!(
            k,
            VectorExprKind::EWiseAdd { op: Some(_), .. }
                | VectorExprKind::EWiseMult { op: Some(_), .. }
        )
    };
    let is_spmv =
        |k: &VectorExprKind| matches!(k, VectorExprKind::MxV { .. } | VectorExprKind::VxM { .. });
    let verdict = |check: FuseCheck, rule: &str| match check {
        FuseCheck::Fusible(i) => Some(format!("fuses node {} ({rule})", dag.ids[i])),
        FuseCheck::Refused(i, why) => {
            Some(format!("fusion with node {} refused: {why}", dag.ids[i]))
        }
        FuseCheck::No => None,
    };
    match &ce.kind {
        VectorExprKind::EWiseAdd { u, v, op: Some(_) }
        | VectorExprKind::EWiseMult { u, v, op: Some(_) } => {
            for cand in [u, v] {
                let refs = (vptr(u) == vptr(cand)) as usize + (vptr(v) == vptr(cand)) as usize;
                let res = verdict(
                    check_producer(dag, ext, c, cand, refs, Some(index), &is_ewise),
                    "rule 1: eWise chain",
                );
                if res.is_some() {
                    return res;
                }
            }
            None
        }
        VectorExprKind::Apply { u, op: Some(_) } => verdict(
            check_producer(dag, ext, c, u, 1, Some(index), &is_spmv),
            "rule 2: mxv/vxm + apply",
        ),
        VectorExprKind::Ref { u } => verdict(
            check_producer(dag, ext, c, u, 1, Some(index), &is_spmv),
            "rule 3: ref collapse",
        ),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// trace_report(): the executed DAG, annotated with measured timings.
// ---------------------------------------------------------------------

/// One node the most recent flush executed, with its measured wall
/// time. Node identity ([`NodeId`]) and the `op`/`kernel` strings are
/// shared with [`PlanNode`], so a plan printed before the flush lines
/// up against this report line by line.
#[derive(Debug, Clone)]
pub struct ExecutedNode {
    /// Stable node identity (same token [`plan`] showed for this node).
    pub id: NodeId,
    /// The operation, rendered with every operand's shape and dtype.
    pub op: String,
    /// The kernel family the node dispatched as — after fusion, so a
    /// consumer that absorbed its producer reports the composite
    /// kernel.
    pub kernel: String,
    /// The scheduling wave (0-based) the node executed in.
    pub wave: usize,
    /// Measured wall-clock execution time, nanoseconds.
    pub ns: u64,
    /// Ids of pending nodes this node read (post-fusion edges).
    pub deps: Vec<NodeId>,
}

/// The most recent flush on this thread, annotated with measured
/// per-node timings. Empty unless tracing was enabled
/// ([`pygb_obs::enable`] or `PYGB_TRACE`) when the flush ran.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// The serve request ID this flush executed under, when the worker
    /// tagged it via [`set_request_tag`] — makes the report addressable
    /// through [`trace_report_for`].
    pub request: Option<u64>,
    /// Executed nodes, ordered by wave then id.
    pub nodes: Vec<ExecutedNode>,
    /// Number of scheduling waves the flush took.
    pub waves: usize,
    /// Producer nodes absorbed by the fusion pass.
    pub fused: usize,
    /// Dead nodes removed without executing.
    pub elided: usize,
    /// Duplicate nodes merged by the CSE pass.
    pub cse: usize,
    /// Provably-empty nodes folded by the sparsity pass.
    pub sparsity: usize,
    /// Nodes folded away by the no-op pass.
    pub noop: usize,
    /// Per-node rewrite attribution from the optimization pipeline,
    /// sorted by node id.
    pub rewrites: Vec<(NodeId, String)>,
    /// Why the aliasing analysis refused fusions, if it did.
    pub refusals: Vec<String>,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            return writeln!(
                f,
                "trace report: empty (tracing disabled, or nothing flushed)"
            );
        }
        if let Some(id) = self.request {
            write!(f, "trace report [r{id}]")?;
        } else {
            write!(f, "trace report")?;
        }
        writeln!(
            f,
            ": {} node(s) executed in {} wave(s); {} fused, {} elided, \
             {} cse-deduped, {} sparsity-folded, {} noop-folded",
            self.nodes.len(),
            self.waves,
            self.fused,
            self.elided,
            self.cse,
            self.sparsity,
            self.noop
        )?;
        for n in &self.nodes {
            write!(
                f,
                "  {} {}  kernel={}  wave={}  t={}",
                n.id,
                n.op,
                n.kernel,
                n.wave,
                fmt_ns(n.ns)
            )?;
            if !n.deps.is_empty() {
                write!(f, "  deps={}", fmt_ids(&n.deps))?;
            }
            writeln!(f)?;
        }
        for (id, note) in &self.rewrites {
            writeln!(f, "  rewrite: {id} {note}")?;
        }
        for r in &self.refusals {
            writeln!(f, "  refused: {r}")?;
        }
        Ok(())
    }
}

struct ReportEntry {
    node: ExecutedNode,
    executed: bool,
}

struct ReportState {
    /// DAG slot index → report entry, for every node alive after the
    /// fusion pass.
    entries: Vec<(usize, ReportEntry)>,
    /// The request tag in effect when the flush began, if any.
    request: Option<u64>,
    waves: usize,
    fused: usize,
    elided: usize,
    cse: usize,
    sparsity: usize,
    noop: usize,
    rewrites: Vec<(NodeId, String)>,
    refusals: Vec<String>,
}

thread_local! {
    static REPORT: RefCell<Option<ReportState>> = const { RefCell::new(None) };
    /// Per-thread override that makes flushes collect timed reports
    /// even while global tracing is off — set by serve workers so every
    /// request's per-node timings exist without buffering trace events
    /// process-wide.
    static FORCED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// The serve request ID the current flush executes on behalf of.
    static REQUEST_TAG: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Most recent tagged reports, retrievable cross-thread by request ID
/// (the `EXPLAIN rN` path). Bounded; oldest evicted. Cold: touched once
/// per *tagged* flush and per lookup, never by untagged flushes.
const TAGGED_REPORT_CAP: usize = 128;
static TAGGED_REPORTS: std::sync::Mutex<std::collections::VecDeque<(u64, TraceReport)>> =
    std::sync::Mutex::new(std::collections::VecDeque::new());

/// Force (or stop forcing) timed execution reports on the calling
/// thread, independent of the global tracing flag. While set, every
/// flush on this thread measures per-node wall time and populates
/// [`trace_report`] exactly as if tracing were enabled — but no trace
/// events are buffered unless tracing really is on. Serve workers keep
/// this set for their whole lifetime.
pub fn set_report_forced(on: bool) {
    FORCED.with(|f| f.set(on));
}

/// Whether the calling thread forces timed reports.
pub(crate) fn report_forced() -> bool {
    FORCED.with(|f| f.get())
}

/// Tag (or untag, with `None`) the calling thread with the serve
/// request ID the next flushes execute on behalf of. Tagged flushes
/// publish their [`TraceReport`] into a bounded cross-thread ring keyed
/// by ID (see [`trace_report_for`]); when one request flushes several
/// times (algorithms iterate), the last flush's report wins.
pub fn set_request_tag(tag: Option<u64>) {
    REQUEST_TAG.with(|t| t.set(tag));
}

/// The calling thread's current request tag.
pub(crate) fn request_tag() -> Option<u64> {
    REQUEST_TAG.with(|t| t.get())
}

/// Publish the calling thread's current report into the tagged ring if
/// the flush that produced it carried a request tag. Called by the
/// flush path after the wave loop; a no-op for untagged flushes.
pub(crate) fn publish_tagged_report() {
    let report = trace_report();
    let Some(id) = report.request else { return };
    if report.nodes.is_empty() {
        // An empty flush (nothing pending) would overwrite the report
        // of the flush that did the request's real work.
        return;
    }
    let mut ring = match TAGGED_REPORTS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    ring.retain(|(k, _)| *k != id);
    if ring.len() >= TAGGED_REPORT_CAP {
        ring.pop_front();
    }
    ring.push_back((id, report));
}

/// The published [`TraceReport`] of the flush that executed request
/// `id`, from any thread — `None` when the request was never tagged,
/// executed nothing, or has been evicted from the bounded ring.
pub fn trace_report_for(id: u64) -> Option<TraceReport> {
    let ring = match TAGGED_REPORTS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    ring.iter()
        .rev()
        .find(|(k, _)| *k == id)
        .map(|(_, r)| r.clone())
}

/// Start a fresh execution report for the flush that just finished its
/// optimization pipeline. Captures each surviving node's identity,
/// summary, and dependency edges before any wave runs (the scheduler
/// removes `pending` entries as nodes resolve). No-op — and wipes any
/// previous report — unless tracing is enabled or the thread forces
/// reports ([`set_report_forced`]).
pub(crate) fn begin_report(dag: &Dag, summary: &crate::passes::PipelineSummary) {
    REPORT.with(|r| {
        let mut slot = r.borrow_mut();
        if !pygb_obs::enabled() && !report_forced() {
            *slot = None;
            return;
        }
        let entries = dag
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
            .map(|(i, n)| {
                let (op, kernel) = node_summary(n);
                (
                    i,
                    ReportEntry {
                        node: ExecutedNode {
                            id: dag.ids[i],
                            op,
                            kernel,
                            wave: 0,
                            ns: 0,
                            deps: node_dep_ids(dag, i, n),
                        },
                        executed: false,
                    },
                )
            })
            .collect();
        let mut rewrites = summary.provenance.clone();
        rewrites.sort_by_key(|(id, _)| *id);
        *slot = Some(ReportState {
            entries,
            request: request_tag(),
            waves: 0,
            fused: summary.fused,
            elided: summary.dce,
            cse: summary.cse,
            sparsity: summary.sparsity,
            noop: summary.noop,
            rewrites,
            refusals: last_refusals(),
        });
    });
}

/// Record that the node at DAG slot `idx` executed in `wave`, taking
/// `ns` nanoseconds. Called by the scheduler's merge loop on the
/// flushing thread.
pub(crate) fn record_exec(idx: usize, wave: usize, ns: u64) {
    REPORT.with(|r| {
        let mut slot = r.borrow_mut();
        let Some(state) = slot.as_mut() else { return };
        state.waves = state.waves.max(wave + 1);
        if let Some((_, e)) = state.entries.iter_mut().find(|(i, _)| *i == idx) {
            e.node.wave = wave;
            e.node.ns = ns;
            e.executed = true;
        }
    });
}

/// The execution report of the most recent flush on the calling
/// thread: every executed node with its stable [`NodeId`] (the same
/// token [`plan`] rendered before the flush), post-fusion kernel,
/// scheduling wave, measured wall time, and dependency edges — plus
/// the flush's fusion/elision counts and refusal log. Returns an empty
/// report when neither tracing nor [`set_report_forced`] was on while
/// the flush ran.
pub fn trace_report() -> TraceReport {
    REPORT.with(|r| {
        let slot = r.borrow();
        let Some(state) = slot.as_ref() else {
            return TraceReport::default();
        };
        let mut nodes: Vec<ExecutedNode> = state
            .entries
            .iter()
            .filter(|(_, e)| e.executed)
            .map(|(_, e)| e.node.clone())
            .collect();
        nodes.sort_by_key(|n| (n.wave, n.id));
        TraceReport {
            request: state.request,
            nodes,
            waves: state.waves,
            fused: state.fused,
            elided: state.elided,
            cse: state.cse,
            sparsity: state.sparsity,
            noop: state.noop,
            rewrites: state.rewrites.clone(),
            refusals: state.refusals.clone(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refusal_log_is_a_bounded_ring_that_counts_drops() {
        clear_refusals();
        for i in 0..REFUSAL_CAP + 6 {
            record_refusal(format!("refusal {i}"));
        }
        let out = last_refusals();
        // CAP retained entries plus the synthetic drop summary.
        assert_eq!(out.len(), REFUSAL_CAP + 1);
        // Oldest six were dropped; the ring starts at entry 6.
        assert_eq!(out[0], "refusal 6");
        assert_eq!(out[REFUSAL_CAP - 1], format!("refusal {}", REFUSAL_CAP + 5));
        assert_eq!(out[REFUSAL_CAP], "(6 earlier refusal(s) dropped)");

        // A pipeline reset empties both the ring and the drop counter.
        clear_refusals();
        assert!(last_refusals().is_empty());
        record_refusal("fresh".to_string());
        assert_eq!(last_refusals(), vec!["fresh".to_string()]);
    }
}
