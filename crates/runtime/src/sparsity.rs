//! Plan-time sparsity & structure abstract interpretation over the
//! op-DAG.
//!
//! For every deferred node this module computes a [`Fact`] — an
//! interval `nnz ∈ [lo, hi]` plus structure flags — by interpreting
//! the DAG in enqueue order (which is topological: an operand
//! placeholder is always minted before any consumer snapshots it)
//! with the sound transfer functions of [`pygb::facts`]. The facts
//! feed four consumers:
//!
//! 1. the `sparsity` pipeline pass ([`crate::passes`]) folds nodes
//!    whose write-back fact is provably empty;
//! 2. kernel hints: when a fact is tight enough to decide push/pull
//!    SpMV or the masked-SpGEMM family *statically*, the hint is armed
//!    on the executing thread and consumed by `pygb::kernels` —
//!    counted under `opt/static_kernel_hints`;
//! 3. [`crate::plan`] renders each node's fact next to its kernel
//!    verdict, and the analysis emits lints (provably-empty result
//!    consumed downstream, mask provably disjoint) through
//!    [`pygb::emit_lint`] so serve's `WARN` frames carry them;
//! 4. the checked interpretation: every executed node's concrete
//!    `nvals` is compared against its predicted interval via the
//!    `gbtl` fact-checker hook (`opt/fact_misses`, debug-asserted).
//!
//! ## Soundness argument
//!
//! Operand facts come from three sources, each exact or conservative:
//! a *clean* handle's store is inspected directly (exact `nvals`); a
//! *resolved* placeholder consults the computed store (exact); a
//! *pending* placeholder takes the fact this same walk computed for
//! its producer (sound by induction — the producer's transfer
//! functions are proven sound in `pygb::facts`), or ⊤ when no
//! producer is found. Region-indexed assigns degrade to ⊤ wholesale.
//! Dtype casts inserted by the dispatch layer preserve `nvals`
//! (stored entries are value-mapped, never dropped), so facts survive
//! them unchanged.

use std::collections::HashMap;

use pygb::expr::{MatOperand, MatrixExpr, MatrixExprKind, VectorExpr, VectorExprKind};
use pygb::facts::{self, Fact};
use pygb::nb::{MatOpDesc, MatRhs, VecOpDesc, VecRhs};
use pygb::store::{MatrixStore, VectorStore};
use std::sync::Arc;

use crate::dag::{mptr, node_inputs, vptr, Dag, Node};
use crate::dataflow::{mat_rhs_ops_present, node_out_ptr, vec_rhs_ops_present};

// ---------------------------------------------------------------------
// Per-node analysis results.
// ---------------------------------------------------------------------

/// The analysis verdict for one DAG node: its write-back fact plus any
/// kernel hint the fact was tight enough to justify.
#[derive(Debug, Clone)]
pub(crate) struct NodeFacts {
    /// The abstract fact describing the node's output container after
    /// mask/accumulate/replace write-back.
    pub(crate) fact: Fact,
    /// Statically decided SpMV direction, when the multiplied vector's
    /// density interval falls entirely on one side of the push/pull
    /// threshold.
    pub(crate) spmv_hint: Option<facts::SpmvDirection>,
    /// Statically decided masked-SpGEMM family, when the mask's
    /// density interval is decisive.
    pub(crate) mxm_hint: Option<facts::MxmFamily>,
}

/// The whole-DAG analysis: slot index → [`NodeFacts`] for every live
/// node.
pub(crate) struct Analysis {
    /// Facts keyed by DAG slot index (stable across scheduling waves).
    pub(crate) facts: HashMap<usize, NodeFacts>,
}

// ---------------------------------------------------------------------
// Operand fact resolution.
// ---------------------------------------------------------------------

/// Facts for placeholder addresses computed earlier in this walk.
struct Env {
    vec: HashMap<usize, Fact>,
    mat: HashMap<usize, Fact>,
}

fn vec_fact(dag: &Dag, env: &Env, v: &Arc<VectorStore>) -> Fact {
    let p = vptr(v);
    if let Some(f) = env.vec.get(&p) {
        return *f;
    }
    if let Some((_, s)) = dag.resolved_v.get(&p) {
        return facts::of_vector(s);
    }
    if dag.pending.contains_key(&p) {
        // A pending placeholder whose producer this walk has not seen
        // (e.g. an alias duplicate): unknown.
        return Fact::top(v.size());
    }
    facts::of_vector(v)
}

fn mat_fact(dag: &Dag, env: &Env, m: &Arc<MatrixStore>) -> Fact {
    let p = mptr(m);
    if let Some(f) = env.mat.get(&p) {
        return *f;
    }
    if let Some((_, s)) = dag.resolved_m.get(&p) {
        return facts::of_matrix(s);
    }
    if dag.pending.contains_key(&p) {
        return Fact::top(m.nrows().saturating_mul(m.ncols()));
    }
    facts::of_matrix(m)
}

/// Fact of a matrix operand in its *logical* orientation. Transposition
/// permutes the pattern without changing nnz, so the fact carries over
/// ([`facts::transpose`] is the identity on intervals).
fn operand_fact(dag: &Dag, env: &Env, a: &MatOperand) -> Fact {
    let f = mat_fact(dag, env, &a.store);
    if a.transposed {
        facts::transpose(&f, a.nrows(), a.ncols())
    } else {
        f
    }
}

// ---------------------------------------------------------------------
// Expression transfer functions.
// ---------------------------------------------------------------------

fn vec_expr_fact(dag: &Dag, env: &Env, e: &VectorExpr) -> Fact {
    match &e.kind {
        VectorExprKind::MxV { a, u, .. } => facts::mxv(
            &operand_fact(dag, env, a),
            a.nrows(),
            &vec_fact(dag, env, u),
        ),
        VectorExprKind::VxM { u, a, .. } => facts::vxm(
            &vec_fact(dag, env, u),
            &operand_fact(dag, env, a),
            a.ncols(),
        ),
        VectorExprKind::EWiseAdd { u, v, .. } => {
            facts::ewise_add(&vec_fact(dag, env, u), &vec_fact(dag, env, v))
        }
        VectorExprKind::EWiseMult { u, v, .. } => {
            facts::ewise_mult(&vec_fact(dag, env, u), &vec_fact(dag, env, v))
        }
        VectorExprKind::Apply { u, .. } => facts::apply(&vec_fact(dag, env, u)),
        VectorExprKind::Extract { u, ix } => {
            facts::extract(&vec_fact(dag, env, u), ix.len(u.size()))
        }
        VectorExprKind::ReduceRows { a, .. } => {
            facts::reduce_rows(&operand_fact(dag, env, a), a.nrows(), a.ncols())
        }
        VectorExprKind::Ref { u } => vec_fact(dag, env, u),
        VectorExprKind::FusedMxvApply { a, u, vxm, .. } => {
            let af = operand_fact(dag, env, a);
            let uf = vec_fact(dag, env, u);
            let prod = if *vxm {
                facts::vxm(&uf, &af, a.ncols())
            } else {
                facts::mxv(&af, a.nrows(), &uf)
            };
            facts::apply(&prod)
        }
        VectorExprKind::FusedEwiseChain {
            u,
            v,
            w,
            inner_add,
            outer_add,
            ..
        } => {
            let uf = vec_fact(dag, env, u);
            let vf = vec_fact(dag, env, v);
            let t = if *inner_add {
                facts::ewise_add(&uf, &vf)
            } else {
                facts::ewise_mult(&uf, &vf)
            };
            // Structure bounds are symmetric in operand order, so
            // `inner_left` does not matter here.
            let wf = match w {
                Some(w) => vec_fact(dag, env, w),
                None => t,
            };
            if *outer_add {
                facts::ewise_add(&t, &wf)
            } else {
                facts::ewise_mult(&t, &wf)
            }
        }
    }
}

fn mat_expr_fact(dag: &Dag, env: &Env, e: &MatrixExpr) -> Fact {
    match &e.kind {
        MatrixExprKind::MxM { a, b, .. } => facts::mxm(
            &operand_fact(dag, env, a),
            &operand_fact(dag, env, b),
            a.nrows(),
            b.ncols(),
            a.ncols(),
        ),
        MatrixExprKind::EWiseAdd { a, b, .. } => {
            facts::ewise_add(&operand_fact(dag, env, a), &operand_fact(dag, env, b))
        }
        MatrixExprKind::EWiseMult { a, b, .. } => {
            facts::ewise_mult(&operand_fact(dag, env, a), &operand_fact(dag, env, b))
        }
        MatrixExprKind::Apply { a, .. } => facts::apply(&operand_fact(dag, env, a)),
        MatrixExprKind::Transpose { a } => {
            let f = mat_fact(dag, env, a);
            facts::transpose(&f, a.ncols(), a.nrows())
        }
        MatrixExprKind::Extract { a, rows, cols } => {
            let k = rows.len(a.nrows()).saturating_mul(cols.len(a.ncols()));
            facts::extract(&operand_fact(dag, env, a), k)
        }
        MatrixExprKind::Ref { a } => mat_fact(dag, env, a),
    }
}

// ---------------------------------------------------------------------
// Node facts: expression transfer + write-back.
// ---------------------------------------------------------------------

fn vec_node_fact(dag: &Dag, env: &Env, d: &VecOpDesc) -> Fact {
    let dim = d.out.size();
    if d.region.is_some() {
        // Region-indexed assigns scatter into a sub-selection; model ⊤.
        return Fact::top(dim);
    }
    let t = match &d.rhs {
        VecRhs::Scalar(_) => facts::full_iso(dim),
        VecRhs::Expr(e) if vec_rhs_ops_present(&d.rhs) => vec_expr_fact(dag, env, e),
        VecRhs::Expr(_) => Fact::top(dim),
    };
    let target = vec_fact(dag, env, &d.target);
    let mask = d.mask.as_ref().map(|(m, c)| (vec_fact(dag, env, m), *c));
    facts::write_back(
        &t,
        &target,
        mask.as_ref().map(|(f, c)| (f, *c)),
        d.accum.is_some(),
        d.replace,
    )
}

fn mat_node_fact(dag: &Dag, env: &Env, d: &MatOpDesc) -> Fact {
    let dim = d.out.nrows().saturating_mul(d.out.ncols());
    if d.region.is_some() {
        return Fact::top(dim);
    }
    let t = match &d.rhs {
        MatRhs::Scalar(_) => facts::full_iso(dim),
        MatRhs::Expr(e) if mat_rhs_ops_present(&d.rhs) => mat_expr_fact(dag, env, e),
        MatRhs::Expr(_) => Fact::top(dim),
    };
    let target = mat_fact(dag, env, &d.target);
    let mask = d.mask.as_ref().map(|(m, c)| (mat_fact(dag, env, m), *c));
    facts::write_back(
        &t,
        &target,
        mask.as_ref().map(|(f, c)| (f, *c)),
        d.accum.is_some(),
        d.replace,
    )
}

// ---------------------------------------------------------------------
// Kernel hints from tight facts.
// ---------------------------------------------------------------------

/// Statically decide the SpMV direction when the multiplied vector's
/// density interval lies entirely on one side of the push/pull
/// threshold — the same comparison the runtime probe would make, but
/// proven for every concretization of the fact.
fn spmv_hint_from(u: &Fact) -> Option<facts::SpmvDirection> {
    let thr = gbtl::push_pull_density();
    if u.density_lo() >= thr {
        Some(facts::SpmvDirection::Pull)
    } else if u.density_hi() < thr {
        Some(facts::SpmvDirection::Push)
    } else {
        None
    }
}

fn vec_node_spmv_hint(dag: &Dag, env: &Env, d: &VecOpDesc) -> Option<facts::SpmvDirection> {
    if d.region.is_some() {
        return None;
    }
    let VecRhs::Expr(e) = &d.rhs else { return None };
    match &e.kind {
        VectorExprKind::MxV { u, .. }
        | VectorExprKind::VxM { u, .. }
        | VectorExprKind::FusedMxvApply { u, .. } => spmv_hint_from(&vec_fact(dag, env, u)),
        _ => None,
    }
}

/// Statically decide the masked-SpGEMM family from the mask's density
/// interval: a provably sparse mask favors the mask-driven dot kernel,
/// a provably dense one the Gustavson row kernel. The push/pull
/// threshold doubles as the density cutover here.
fn mat_node_mxm_hint(dag: &Dag, env: &Env, d: &MatOpDesc) -> Option<facts::MxmFamily> {
    if d.region.is_some() || d.mask.is_none() {
        return None;
    }
    let MatRhs::Expr(e) = &d.rhs else { return None };
    if !matches!(&e.kind, MatrixExprKind::MxM { .. }) {
        return None;
    }
    let (m, complemented) = d.mask.as_ref().expect("checked above");
    if *complemented {
        // The dot kernel iterates the mask pattern directly; a
        // complemented mask has no usable pattern to drive it.
        return None;
    }
    let mf = mat_fact(dag, env, m);
    let thr = gbtl::push_pull_density();
    if mf.density_hi() < thr {
        Some(facts::MxmFamily::MaskedDot)
    } else if mf.density_lo() >= thr {
        Some(facts::MxmFamily::MaskedGustavson)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// The analysis walk.
// ---------------------------------------------------------------------

/// Interpret the whole DAG abstractly, in slot order (topological).
/// With `emit_lints` set (real flushes only — `plan()`'s read-only
/// assessment must not double-report), structure diagnostics are
/// pushed through [`pygb::emit_lint`] for the analyzer wire protocol.
pub(crate) fn analyze(dag: &Dag, emit_lints: bool) -> Analysis {
    let mut env = Env {
        vec: HashMap::new(),
        mat: HashMap::new(),
    };
    let mut out = Analysis {
        facts: HashMap::new(),
    };
    for (i, node) in dag.nodes.iter().enumerate() {
        let Some(node) = node else { continue };
        let nf = match node {
            Node::Vec(d) => {
                let fact = vec_node_fact(dag, &env, d);
                let spmv_hint = vec_node_spmv_hint(dag, &env, d);
                env.vec.insert(vptr(&d.out), fact);
                NodeFacts {
                    fact,
                    spmv_hint,
                    mxm_hint: None,
                }
            }
            Node::Mat(d) => {
                let fact = mat_node_fact(dag, &env, d);
                let mxm_hint = mat_node_mxm_hint(dag, &env, d);
                env.mat.insert(mptr(&d.out), fact);
                NodeFacts {
                    fact,
                    spmv_hint: None,
                    mxm_hint,
                }
            }
        };
        out.facts.insert(i, nf);
    }
    if emit_lints {
        emit_structure_lints(dag, &out);
    }
    out
}

/// Render a node's facts for the `plan()` view: the fact interval plus
/// any statically decided kernel hint.
pub(crate) fn render_facts(nf: &NodeFacts) -> String {
    let mut s = nf.fact.to_string();
    if let Some(dir) = nf.spmv_hint {
        s.push_str(match dir {
            facts::SpmvDirection::Pull => " hint=pull",
            facts::SpmvDirection::Push => " hint=push",
        });
    }
    if let Some(fam) = nf.mxm_hint {
        s.push_str(match fam {
            facts::MxmFamily::MaskedDot => " hint=dot",
            facts::MxmFamily::MaskedGustavson => " hint=gustavson",
        });
    }
    s
}

// ---------------------------------------------------------------------
// Lints.
// ---------------------------------------------------------------------

fn emit_structure_lints(dag: &Dag, analysis: &Analysis) {
    let env = Env {
        vec: analysis_env_v(dag, analysis),
        mat: analysis_env_m(dag, analysis),
    };
    for (i, node) in dag.nodes.iter().enumerate() {
        let Some(node) = node else { continue };
        let Some(nf) = analysis.facts.get(&i) else {
            continue;
        };
        // Lint 1: a provably-empty result consumed downstream — the
        // consumer does real work against a container that can never
        // hold an entry.
        if nf.fact.provably_empty() {
            let out = node_out_ptr(node);
            let consumer = dag
                .nodes
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .filter_map(|(j, n)| n.as_ref().map(|n| (j, n)))
                .find(|(_, n)| node_inputs(n).contains(&out));
            if let Some((j, _)) = consumer {
                pygb::emit_lint(format!(
                    "sparsity: {} result is provably empty but {} consumes it",
                    dag.ids[i], dag.ids[j]
                ));
            }
        }
        // Lint 2: a mask provably disjoint from every write — either a
        // provably-empty structural mask, or a provably-full
        // complemented one (its complement admits nothing).
        let mask = match node {
            Node::Vec(d) => d.mask.as_ref().map(|(m, c)| (vec_fact(dag, &env, m), *c)),
            Node::Mat(d) => d.mask.as_ref().map(|(m, c)| (mat_fact(dag, &env, m), *c)),
        };
        if let Some((mf, complemented)) = mask {
            let disjoint = if complemented {
                mf.provably_full()
            } else {
                mf.provably_empty()
            };
            if disjoint {
                pygb::emit_lint(format!(
                    "sparsity: {} mask is provably disjoint from the operand \
                     pattern (no write can land)",
                    dag.ids[i]
                ));
            }
        }
    }
}

/// Rebuild the vector placeholder→fact environment from a finished
/// analysis, for lint-time operand lookups.
fn analysis_env_v(dag: &Dag, analysis: &Analysis) -> HashMap<usize, Fact> {
    analysis
        .facts
        .iter()
        .filter_map(|(&i, nf)| match &dag.nodes[i] {
            Some(Node::Vec(d)) => Some((vptr(&d.out), nf.fact)),
            _ => None,
        })
        .collect()
}

/// Matrix analog of [`analysis_env_v`].
fn analysis_env_m(dag: &Dag, analysis: &Analysis) -> HashMap<usize, Fact> {
    analysis
        .facts
        .iter()
        .filter_map(|(&i, nf)| match &dag.nodes[i] {
            Some(Node::Mat(d)) => Some((mptr(&d.out), nf.fact)),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Checked interpretation: the debug-mode fact checker.
// ---------------------------------------------------------------------

thread_local! {
    /// The (nvals, logical dim) of the most recent container write the
    /// `gbtl` finalize funnel reported on this thread. Record-last: a
    /// fused kernel's intermediate writes are overwritten by the final
    /// one, which is the write the node's fact describes.
    static LAST_WRITE: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

/// The `gbtl` fact-checker hook: remember the write so
/// [`check_prediction`] can compare it against the node's fact.
pub(crate) fn record_write(nvals: usize, dim: usize) {
    LAST_WRITE.with(|c| c.set(Some((nvals, dim))));
}

/// Arm a node's prediction on the executing thread, just before its
/// kernel dispatches: clear the write recorder and hand any static
/// kernel hints to the dispatch layer.
pub(crate) fn arm_prediction(nf: &NodeFacts) {
    LAST_WRITE.with(|c| c.set(None));
    if let Some(dir) = nf.spmv_hint {
        facts::arm_spmv_hint(dir);
    }
    if let Some(fam) = nf.mxm_hint {
        facts::arm_mxm_hint(fam);
    }
}

/// Check a node's prediction after its kernel ran: the recorded
/// concrete `nvals` must lie inside the fact's interval (`γ`
/// membership). A miss bumps `opt/fact_misses` and debug-asserts —
/// release builds keep running with the sound-but-wrong counter
/// visible. Always clears any hint the dispatch layer did not take,
/// so a stale hint can never leak into an unrelated kernel.
pub(crate) fn check_prediction(nf: &NodeFacts, kernel_ok: bool) {
    facts::clear_hints();
    let Some((nvals, dim)) = LAST_WRITE.with(|c| c.take()) else {
        return;
    };
    // A fused kernel's last write can be an intermediate of a different
    // shape when the final write errored; only compare same-extent
    // writes of successful nodes.
    if !kernel_ok || dim != nf.fact.dim {
        return;
    }
    if !nf.fact.admits(nvals) {
        pygb_obs::registry().counter("opt/fact_misses").inc();
        debug_assert!(
            false,
            "sparsity fact miss: concrete nvals {nvals} outside predicted {} (dim {dim})",
            nf.fact
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_checker_flags_interval_violations() {
        let nf = NodeFacts {
            fact: Fact::exact(3, 10),
            spmv_hint: None,
            mxm_hint: None,
        };
        arm_prediction(&nf);
        // No write recorded: silently passes.
        check_prediction(&nf, true);
        // In-interval write: passes.
        arm_prediction(&nf);
        record_write(3, 10);
        check_prediction(&nf, true);
        // Mismatched dim (fused intermediate): skipped.
        arm_prediction(&nf);
        record_write(7, 4);
        check_prediction(&nf, true);
        // Failed kernel: skipped even with a recorded write.
        arm_prediction(&nf);
        record_write(9, 10);
        check_prediction(&nf, false);
    }

    #[test]
    #[should_panic(expected = "sparsity fact miss")]
    #[cfg(debug_assertions)]
    fn prediction_checker_asserts_on_miss() {
        let nf = NodeFacts {
            fact: Fact::exact(3, 10),
            spmv_hint: None,
            mxm_hint: None,
        };
        arm_prediction(&nf);
        record_write(9, 10);
        check_prediction(&nf, true);
    }

    #[test]
    fn render_facts_includes_hints() {
        let nf = NodeFacts {
            fact: Fact::exact(0, 5),
            spmv_hint: Some(facts::SpmvDirection::Push),
            mxm_hint: None,
        };
        let s = render_facts(&nf);
        assert!(s.contains("nnz=[0,0]"), "got: {s}");
        assert!(s.ends_with("hint=push"), "got: {s}");
    }
}
