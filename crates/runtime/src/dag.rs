//! The thread-local operation DAG and its flush scheduler.
//!
//! Each deferred assignment becomes a [`Node`] holding the descriptor
//! the core crate would otherwise have dispatched immediately. Edges
//! are implicit: a node's operand handles that appear as another
//! node's `out` placeholder (tracked in `pending` by `Arc` address)
//! are dependencies. A flush rewrites the DAG (see [`crate::fuse`]),
//! then executes it in *waves*: every node whose inputs are all
//! resolved runs — in parallel via [`gbtl::parallel::run_jobs`] —
//! then the next wave is collected, until the DAG drains.
//!
//! The `RefCell` borrow on the DAG is never held across node
//! execution: executing a node re-enters the core dispatch layer,
//! which probes the resolution maps through the engine hooks.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use gbtl::ops::kind::KindMonoid;
use pygb::expr::{MatrixExpr, MatrixExprKind, VectorExpr, VectorExprKind};
use pygb::nb::{MatOpDesc, MatRhs, Resolution, VecOpDesc, VecRhs};
use pygb::store::{MatrixStore, VectorStore};
use pygb::{DynScalar, PygbError, Result};

use crate::analyze::NodeId;

/// One deferred operation.
#[derive(Clone)]
pub(crate) enum Node {
    /// A deferred vector assignment.
    Vec(VecOpDesc),
    /// A deferred matrix assignment.
    Mat(MatOpDesc),
}

/// Placeholders proven by a pass to carry the same value as a
/// representative placeholder that has not resolved yet (CSE
/// duplicates, no-op aliases of pending sources). When the
/// representative lands, [`drain_aliases`] resolves every duplicate to
/// the same computed store.
#[derive(Clone)]
pub(crate) struct AliasSet<S> {
    /// The representative placeholder (pins its address while the set
    /// is live, and keeps the representative node's output observed so
    /// neither fusion nor DCE may remove it).
    pub(crate) rep: Arc<S>,
    /// Placeholders that resolve to the representative's value.
    pub(crate) dups: Vec<Arc<S>>,
}

/// The per-thread DAG state.
#[derive(Default, Clone)]
pub(crate) struct Dag {
    /// Nodes in enqueue order; executed / fused / elided slots are
    /// `None`.
    pub(crate) nodes: Vec<Option<Node>>,
    /// Stable identity per slot (`ids.len() == nodes.len()` always);
    /// survives a slot being taken, so diagnostics can still name a
    /// fused-away or executed node. Cleared with `nodes`.
    pub(crate) ids: Vec<NodeId>,
    /// The next id to mint; resets to 0 whenever the DAG fully drains
    /// so per-scope numbering is deterministic.
    pub(crate) next_id: u64,
    /// Placeholder address → producing node index. Vector and matrix
    /// placeholders share the map safely: live allocations are
    /// distinct.
    pub(crate) pending: HashMap<usize, usize>,
    /// Placeholder address → (keepalive placeholder, computed store).
    /// The keepalive pins the address so it cannot be reused by a new
    /// allocation while it still keys this map.
    pub(crate) resolved_v: HashMap<usize, (Arc<VectorStore>, Arc<VectorStore>)>,
    /// Matrix analog of `resolved_v`.
    pub(crate) resolved_m: HashMap<usize, (Arc<MatrixStore>, Arc<MatrixStore>)>,
    /// True while a flush is draining this DAG (re-entrant flushes
    /// no-op).
    pub(crate) flushing: bool,
    /// Representative placeholder address → vector placeholders that
    /// resolve to its value (populated by the optimization passes,
    /// drained as results land, cleared by flush cleanup).
    pub(crate) alias_v: HashMap<usize, AliasSet<VectorStore>>,
    /// Matrix analog of `alias_v`.
    pub(crate) alias_m: HashMap<usize, AliasSet<MatrixStore>>,
}

/// Resolve every aliased placeholder reachable from `start`: if an
/// alias set is keyed by a placeholder that has a computed store in the
/// resolution maps, each duplicate resolves to that same store —
/// cascading, since a duplicate may itself key a further set.
pub(crate) fn drain_aliases(dag: &mut Dag, start: usize) {
    let mut work = vec![start];
    while let Some(p) = work.pop() {
        if let Some(set) = dag.alias_v.remove(&p) {
            match dag.resolved_v.get(&p).map(|(_, s)| Arc::clone(s)) {
                Some(store) => {
                    for dup in set.dups {
                        let dp = vptr(&dup);
                        dag.pending.remove(&dp);
                        dag.resolved_v.insert(dp, (dup, Arc::clone(&store)));
                        work.push(dp);
                    }
                }
                None => {
                    dag.alias_v.insert(p, set);
                }
            }
        }
        if let Some(set) = dag.alias_m.remove(&p) {
            match dag.resolved_m.get(&p).map(|(_, s)| Arc::clone(s)) {
                Some(store) => {
                    for dup in set.dups {
                        let dp = mptr(&dup);
                        dag.pending.remove(&dp);
                        dag.resolved_m.insert(dp, (dup, Arc::clone(&store)));
                        work.push(dp);
                    }
                }
                None => {
                    dag.alias_m.insert(p, set);
                }
            }
        }
    }
}

thread_local! {
    static DAG: RefCell<Dag> = RefCell::new(Dag::default());
}

pub(crate) fn vptr(a: &Arc<VectorStore>) -> usize {
    Arc::as_ptr(a) as usize
}

/// Run `f` with a shared borrow of the calling thread's DAG (read-only
/// accessor for the plan/explain API).
pub(crate) fn with_dag<R>(f: impl FnOnce(&Dag) -> R) -> R {
    DAG.with(|d| f(&d.borrow()))
}

pub(crate) fn mptr(a: &Arc<MatrixStore>) -> usize {
    Arc::as_ptr(a) as usize
}

// ---------------------------------------------------------------------
// Engine hooks (installed into `pygb::nb` by `crate::install_engine`).
// ---------------------------------------------------------------------

/// Append `n` to the DAG, minting its stable id.
pub(crate) fn push_node(dag: &mut Dag, key: usize, n: Node) {
    let idx = dag.nodes.len();
    dag.nodes.push(Some(n));
    dag.ids.push(NodeId(dag.next_id));
    dag.next_id += 1;
    dag.pending.insert(key, idx);
}

pub(crate) fn enqueue_vector(desc: VecOpDesc) -> Result<()> {
    DAG.with(|d| {
        let mut dag = d.borrow_mut();
        let key = vptr(&desc.out);
        push_node(&mut dag, key, Node::Vec(desc));
    });
    Ok(())
}

pub(crate) fn enqueue_matrix(desc: MatOpDesc) -> Result<()> {
    DAG.with(|d| {
        let mut dag = d.borrow_mut();
        let key = mptr(&desc.out);
        push_node(&mut dag, key, Node::Mat(desc));
    });
    Ok(())
}

pub(crate) fn resolve_vector(store: &Arc<VectorStore>) -> Resolution<VectorStore> {
    DAG.with(|d| {
        let dag = d.borrow();
        let p = vptr(store);
        if let Some((_, r)) = dag.resolved_v.get(&p) {
            Resolution::Resolved(Arc::clone(r))
        } else if dag.pending.contains_key(&p) {
            Resolution::Pending
        } else {
            Resolution::Clean
        }
    })
}

pub(crate) fn resolve_matrix(store: &Arc<MatrixStore>) -> Resolution<MatrixStore> {
    DAG.with(|d| {
        let dag = d.borrow();
        let p = mptr(store);
        if let Some((_, r)) = dag.resolved_m.get(&p) {
            Resolution::Resolved(Arc::clone(r))
        } else if dag.pending.contains_key(&p) {
            Resolution::Pending
        } else {
            Resolution::Clean
        }
    })
}

/// Try to claim the flush: sets the `flushing` flag and returns true
/// when there is work and no flush is already draining this DAG. The
/// claim-before-drain protocol this implements is model-checked
/// exhaustively in the `model_check` test module.
pub(crate) fn begin_flush(dag: &mut Dag) -> bool {
    if dag.flushing {
        return false;
    }
    if dag.nodes.iter().all(|n| n.is_none()) {
        dag.nodes.clear();
        dag.ids.clear();
        dag.next_id = 0;
        return false;
    }
    dag.flushing = true;
    true
}

/// Indices of nodes whose inputs are all resolved — the next wave the
/// scheduler will run.
pub(crate) fn ready_indices(dag: &Dag) -> Vec<usize> {
    (0..dag.nodes.len())
        .filter(|&i| match &dag.nodes[i] {
            Some(node) => node_inputs(node)
                .iter()
                .all(|p| !dag.pending.contains_key(p)),
            None => false,
        })
        .collect()
}

/// Execute every node in the calling thread's DAG. No-op when empty or
/// already flushing (re-entrancy from node execution).
pub(crate) fn flush() -> Result<()> {
    let proceed = DAG.with(|d| begin_flush(&mut d.borrow_mut()));
    if !proceed {
        return Ok(());
    }
    let _sp = pygb_obs::span(pygb_obs::Cat::Flush, "flush");
    let result = flush_inner();
    // If a serve worker tagged this thread with a request ID, make the
    // finished report retrievable cross-thread (EXPLAIN rN). No-op for
    // untagged flushes.
    crate::analyze::publish_tagged_report();
    DAG.with(|d| {
        let mut dag = d.borrow_mut();
        dag.flushing = false;
        dag.nodes.clear();
        dag.ids.clear();
        dag.next_id = 0;
        if result.is_err() {
            // Abandon whatever could not run; readers of their outputs
            // will report "unresolved" rather than see stale data.
            dag.pending.clear();
        }
        // Alias sets drain as results land; any survivors belong to
        // nodes the error path abandoned.
        dag.alias_v.clear();
        dag.alias_m.clear();
        // Entries whose placeholder only the map itself still holds can
        // never be asked for again — their address has no other owner.
        dag.resolved_v
            .retain(|_, (keep, _)| Arc::strong_count(keep) > 1);
        dag.resolved_m
            .retain(|_, (keep, _)| Arc::strong_count(keep) > 1);
    });
    result
}

fn flush_inner() -> Result<()> {
    let summary = {
        let mut sp = pygb_obs::span(pygb_obs::Cat::Fuse, "fuse");
        let s = DAG.with(|d| crate::passes::run_pipeline(&mut d.borrow_mut(), 1, false));
        if sp.is_active() {
            sp.arg("fused", s.fused.to_string());
            sp.arg("elided", s.dce.to_string());
            sp.arg("cse", s.cse.to_string());
            sp.arg("sparsity", s.sparsity.to_string());
            sp.arg("noop", s.noop.to_string());
        }
        s
    };
    let stats = pygb::runtime().cache().stats();
    if summary.fused > 0 {
        stats.record_fused(summary.fused as u64);
    }
    if summary.dce > 0 {
        stats.record_elided(summary.dce as u64);
        pygb_obs::registry()
            .counter("opt/dce_elided")
            .add(summary.dce as u64);
    }
    if summary.cse > 0 {
        stats.record_cse(summary.cse as u64);
        pygb_obs::registry()
            .counter("opt/cse_deduped")
            .add(summary.cse as u64);
    }
    if summary.sparsity > 0 {
        pygb_obs::registry()
            .counter("opt/empty_folded")
            .add(summary.sparsity as u64);
    }
    if summary.noop > 0 {
        stats.record_noop(summary.noop as u64);
        pygb_obs::registry()
            .counter("opt/noop_folded")
            .add(summary.noop as u64);
    }
    let saved = (summary.dce + summary.cse + summary.sparsity + summary.noop) as u64;
    if saved > 0 {
        pygb_obs::registry()
            .counter("opt/launches_saved")
            .add(saved);
    }
    // Snapshot the post-rewrite DAG for trace_report() before any wave
    // removes pending edges (no-op while tracing is disabled).
    DAG.with(|d| crate::analyze::begin_report(&d.borrow(), &summary));

    // With the sparsity pass enabled, re-analyze the post-pipeline DAG
    // (fused/folded descriptors included) once, before any wave runs:
    // each surviving node's fact arms the checked interpretation and
    // any static kernel hint on the thread that executes it. Slot
    // indices stay stable across waves, so the map survives the loop.
    let mut node_facts =
        if crate::passes::enabled_passes().contains(&crate::passes::PassKind::Sparsity) {
            DAG.with(|d| crate::sparsity::analyze(&d.borrow(), false).facts)
        } else {
            std::collections::HashMap::new()
        };

    let mut wave = 0usize;
    loop {
        let traced = pygb_obs::enabled();
        // Per-node timing also runs when the thread forces reports
        // (serve workers), without buffering any trace events.
        let timed = traced || crate::analyze::report_forced();
        // Collect the wave of ready nodes (no pending inputs) and
        // substitute resolved stores into their descriptors. The DAG
        // borrow is released before anything executes. When tracing,
        // each node also carries its exec-span label (`exec/n<id>
        // <kernel>`), rendered here because the node moves into a job
        // closure that may run on a worker thread.
        let batch: Vec<(usize, Option<String>, Node)> = DAG.with(|d| {
            let mut dag = d.borrow_mut();
            let ready = ready_indices(&dag);
            let Dag {
                nodes,
                ids,
                resolved_v,
                resolved_m,
                ..
            } = &mut *dag;
            ready
                .into_iter()
                .map(|i| {
                    let mut node = nodes[i].take().expect("ready node present");
                    match &mut node {
                        Node::Vec(desc) => subst_vec_desc(resolved_v, resolved_m, desc),
                        Node::Mat(desc) => subst_mat_desc(resolved_v, resolved_m, desc),
                    }
                    let label = traced.then(|| {
                        let kernel = match &node {
                            Node::Vec(d) => crate::analyze::vec_kernel_name(d),
                            Node::Mat(d) => crate::analyze::mat_kernel_name(d),
                        };
                        format!("exec/{} {kernel}", ids[i])
                    });
                    (i, label, node)
                })
                .collect()
        });

        if batch.is_empty() {
            let remaining = DAG.with(|d| d.borrow().nodes.iter().filter(|n| n.is_some()).count());
            if remaining > 0 {
                return Err(PygbError::Unsupported {
                    context: format!(
                        "nonblocking DAG wedged: {remaining} nodes have unresolvable inputs"
                    ),
                });
            }
            return Ok(());
        }

        let _wave_sp = pygb_obs::span_labeled(pygb_obs::Cat::Wave, || format!("wave/{wave}"));

        // Independent nodes of one wave execute in parallel. Operand
        // substitution already happened, so worker threads never touch
        // this thread's DAG (their own DAGs are empty).
        let jobs: Vec<_> = batch
            .into_iter()
            .map(|(i, label, node)| {
                let nf = node_facts.remove(&i);
                move || {
                    let t0 = timed.then(std::time::Instant::now);
                    let sp = label.map(|l| pygb_obs::span_labeled(pygb_obs::Cat::Exec, || l));
                    // Arm the checked interpretation and any static
                    // kernel hint on the thread the node runs on; the
                    // dispatch layer consumes hints one-shot.
                    if let Some(nf) = &nf {
                        crate::sparsity::arm_prediction(nf);
                    }
                    let done = run_node(node);
                    drop(sp);
                    if let Some(nf) = &nf {
                        let ok = match &done {
                            Done::V(_, r) => r.is_ok(),
                            Done::M(_, r) => r.is_ok(),
                        };
                        crate::sparsity::check_prediction(nf, ok);
                    }
                    let ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    (i, ns, done)
                }
            })
            .collect();
        let results = gbtl::parallel::run_jobs(jobs);

        let mut first_err = None;
        DAG.with(|d| {
            let mut dag = d.borrow_mut();
            for (i, ns, done) in results {
                if timed {
                    crate::analyze::record_exec(i, wave, ns);
                }
                match done {
                    Done::V(out, Ok(store)) => {
                        let p = vptr(&out);
                        dag.pending.remove(&p);
                        dag.resolved_v.insert(p, (out, Arc::new(store)));
                        drain_aliases(&mut dag, p);
                    }
                    Done::M(out, Ok(store)) => {
                        let p = mptr(&out);
                        dag.pending.remove(&p);
                        dag.resolved_m.insert(p, (out, Arc::new(store)));
                        drain_aliases(&mut dag, p);
                    }
                    Done::V(out, Err(e)) => {
                        dag.pending.remove(&vptr(&out));
                        first_err.get_or_insert(e);
                    }
                    Done::M(out, Err(e)) => {
                        dag.pending.remove(&mptr(&out));
                        first_err.get_or_insert(e);
                    }
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        wave += 1;
    }
}

enum Done {
    V(Arc<VectorStore>, Result<VectorStore>),
    M(Arc<MatrixStore>, Result<MatrixStore>),
}

fn run_node(node: Node) -> Done {
    match node {
        Node::Vec(desc) => {
            let out = Arc::clone(&desc.out);
            Done::V(out, pygb::nb::run_vec_op(desc))
        }
        Node::Mat(desc) => {
            let out = Arc::clone(&desc.out);
            Done::M(out, pygb::nb::run_mat_op(desc))
        }
    }
}

/// Fuse a pending `reduce(w)` into `w`'s producing eWise node when the
/// producer is plain and otherwise unconsumed — the composite kernel
/// materializes the vector AND folds the scalar in one dispatch.
/// `Ok(None)` tells the caller to reduce through the ordinary path.
pub(crate) fn reduce_vector(
    store: &Arc<VectorStore>,
    monoid: KindMonoid,
) -> Result<Option<DynScalar>> {
    let p = vptr(store);
    let taken: Option<VecOpDesc> = DAG.with(|d| {
        let mut dag = d.borrow_mut();
        if dag.flushing {
            return None;
        }
        let &idx = dag.pending.get(&p)?;
        let fusible = match &dag.nodes[idx] {
            Some(Node::Vec(desc)) => {
                desc.mask.is_none()
                    && desc.accum.is_none()
                    && desc.region.is_none()
                    && matches!(
                        &desc.rhs,
                        VecRhs::Expr(e) if matches!(
                            &e.kind,
                            VectorExprKind::EWiseAdd { op: Some(_), .. }
                                | VectorExprKind::EWiseMult { op: Some(_), .. }
                        )
                    )
                    && !has_other_consumers(&dag, idx, p)
            }
            _ => false,
        };
        if !fusible {
            return None;
        }
        dag.pending.remove(&p);
        match dag.nodes[idx].take() {
            Some(Node::Vec(desc)) => Some(desc),
            _ => unreachable!("checked above"),
        }
    });

    let Some(desc) = taken else {
        // Not pending here, or pending but not fusible: land everything
        // and let the caller dispatch a plain reduction.
        flush()?;
        return Ok(None);
    };

    // Land the rest of the DAG so the producer's operands resolve.
    flush()?;

    let (u, v, op, is_add) = DAG.with(|d| {
        let dag = d.borrow();
        match &desc.rhs {
            VecRhs::Expr(e) => match &e.kind {
                VectorExprKind::EWiseAdd { u, v, op } => (
                    sub_v(&dag.resolved_v, u),
                    sub_v(&dag.resolved_v, v),
                    op.expect("checked above"),
                    true,
                ),
                VectorExprKind::EWiseMult { u, v, op } => (
                    sub_v(&dag.resolved_v, u),
                    sub_v(&dag.resolved_v, v),
                    op.expect("checked above"),
                    false,
                ),
                _ => unreachable!("checked above"),
            },
            VecRhs::Scalar(_) => unreachable!("checked above"),
        }
    });

    let size = desc.out.size();
    let ct = desc.out.dtype();
    let (out_store, scalar) = {
        let _sp = pygb_obs::span(pygb_obs::Cat::Exec, "exec/fused_ewise_reduce");
        pygb::dispatch::dispatch_fused_ewise_reduce(size, ct, u, v, op, is_add, monoid)?
    };
    DAG.with(|d| {
        let mut dag = d.borrow_mut();
        dag.resolved_v
            .insert(p, (Arc::clone(&desc.out), Arc::new(out_store)));
    });
    pygb::runtime().cache().stats().record_fused(1);
    Ok(Some(scalar))
}

/// Does any node other than `idx` read placeholder address `p`?
pub(crate) fn has_other_consumers(dag: &Dag, idx: usize, p: usize) -> bool {
    dag.nodes
        .iter()
        .enumerate()
        .any(|(i, n)| i != idx && n.as_ref().is_some_and(|n| node_inputs(n).contains(&p)))
}

// ---------------------------------------------------------------------
// Descriptor walking: inputs and substitution.
// ---------------------------------------------------------------------

/// Every store address a node reads (target merge input, mask, and
/// expression operands).
pub(crate) fn node_inputs(n: &Node) -> Vec<usize> {
    let mut out = Vec::with_capacity(4);
    match n {
        Node::Vec(d) => {
            out.push(vptr(&d.target));
            if let Some((m, _)) = &d.mask {
                out.push(vptr(m));
            }
            if let VecRhs::Expr(e) = &d.rhs {
                vec_expr_inputs(e, &mut out);
            }
        }
        Node::Mat(d) => {
            out.push(mptr(&d.target));
            if let Some((m, _)) = &d.mask {
                out.push(mptr(m));
            }
            if let MatRhs::Expr(e) = &d.rhs {
                mat_expr_inputs(e, &mut out);
            }
        }
    }
    out
}

fn vec_expr_inputs(e: &VectorExpr, out: &mut Vec<usize>) {
    match &e.kind {
        VectorExprKind::MxV { a, u, .. } => {
            out.push(mptr(&a.store));
            out.push(vptr(u));
        }
        VectorExprKind::VxM { u, a, .. } => {
            out.push(vptr(u));
            out.push(mptr(&a.store));
        }
        VectorExprKind::EWiseAdd { u, v, .. } | VectorExprKind::EWiseMult { u, v, .. } => {
            out.push(vptr(u));
            out.push(vptr(v));
        }
        VectorExprKind::Apply { u, .. }
        | VectorExprKind::Extract { u, .. }
        | VectorExprKind::Ref { u } => out.push(vptr(u)),
        VectorExprKind::ReduceRows { a, .. } => out.push(mptr(&a.store)),
        VectorExprKind::FusedMxvApply { a, u, .. } => {
            out.push(mptr(&a.store));
            out.push(vptr(u));
        }
        VectorExprKind::FusedEwiseChain { u, v, w, .. } => {
            out.push(vptr(u));
            out.push(vptr(v));
            if let Some(w) = w {
                out.push(vptr(w));
            }
        }
    }
}

fn mat_expr_inputs(e: &MatrixExpr, out: &mut Vec<usize>) {
    match &e.kind {
        MatrixExprKind::MxM { a, b, .. }
        | MatrixExprKind::EWiseAdd { a, b, .. }
        | MatrixExprKind::EWiseMult { a, b, .. } => {
            out.push(mptr(&a.store));
            out.push(mptr(&b.store));
        }
        MatrixExprKind::Apply { a, .. } | MatrixExprKind::Extract { a, .. } => {
            out.push(mptr(&a.store))
        }
        MatrixExprKind::Transpose { a } | MatrixExprKind::Ref { a } => out.push(mptr(a)),
    }
}

pub(crate) type ResolvedV = HashMap<usize, (Arc<VectorStore>, Arc<VectorStore>)>;
pub(crate) type ResolvedM = HashMap<usize, (Arc<MatrixStore>, Arc<MatrixStore>)>;

pub(crate) fn sub_v(map: &ResolvedV, a: &Arc<VectorStore>) -> Arc<VectorStore> {
    map.get(&vptr(a))
        .map(|(_, r)| Arc::clone(r))
        .unwrap_or_else(|| Arc::clone(a))
}

pub(crate) fn sub_m(map: &ResolvedM, a: &Arc<MatrixStore>) -> Arc<MatrixStore> {
    map.get(&mptr(a))
        .map(|(_, r)| Arc::clone(r))
        .unwrap_or_else(|| Arc::clone(a))
}

pub(crate) fn subst_vec_desc(rv: &ResolvedV, rm: &ResolvedM, d: &mut VecOpDesc) {
    d.target = sub_v(rv, &d.target);
    if let Some((m, _)) = &mut d.mask {
        *m = sub_v(rv, m);
    }
    if let VecRhs::Expr(e) = &mut d.rhs {
        subst_vec_expr(rv, rm, e);
    }
}

pub(crate) fn subst_mat_desc(rv: &ResolvedV, rm: &ResolvedM, d: &mut MatOpDesc) {
    let _ = rv;
    d.target = sub_m(rm, &d.target);
    if let Some((m, _)) = &mut d.mask {
        *m = sub_m(rm, m);
    }
    if let MatRhs::Expr(e) = &mut d.rhs {
        subst_mat_expr(rm, e);
    }
}

fn subst_vec_expr(rv: &ResolvedV, rm: &ResolvedM, e: &mut VectorExpr) {
    match &mut e.kind {
        VectorExprKind::MxV { a, u, .. } => {
            a.store = sub_m(rm, &a.store);
            *u = sub_v(rv, u);
        }
        VectorExprKind::VxM { u, a, .. } => {
            *u = sub_v(rv, u);
            a.store = sub_m(rm, &a.store);
        }
        VectorExprKind::EWiseAdd { u, v, .. } | VectorExprKind::EWiseMult { u, v, .. } => {
            *u = sub_v(rv, u);
            *v = sub_v(rv, v);
        }
        VectorExprKind::Apply { u, .. }
        | VectorExprKind::Extract { u, .. }
        | VectorExprKind::Ref { u } => *u = sub_v(rv, u),
        VectorExprKind::ReduceRows { a, .. } => a.store = sub_m(rm, &a.store),
        VectorExprKind::FusedMxvApply { a, u, .. } => {
            a.store = sub_m(rm, &a.store);
            *u = sub_v(rv, u);
        }
        VectorExprKind::FusedEwiseChain { u, v, w, .. } => {
            *u = sub_v(rv, u);
            *v = sub_v(rv, v);
            if let Some(w) = w {
                *w = sub_v(rv, w);
            }
        }
    }
}

fn subst_mat_expr(rm: &ResolvedM, e: &mut MatrixExpr) {
    match &mut e.kind {
        MatrixExprKind::MxM { a, b, .. }
        | MatrixExprKind::EWiseAdd { a, b, .. }
        | MatrixExprKind::EWiseMult { a, b, .. } => {
            a.store = sub_m(rm, &a.store);
            b.store = sub_m(rm, &b.store);
        }
        MatrixExprKind::Apply { a, .. } | MatrixExprKind::Extract { a, .. } => {
            a.store = sub_m(rm, &a.store)
        }
        MatrixExprKind::Transpose { a } | MatrixExprKind::Ref { a } => *a = sub_m(rm, a),
    }
}
