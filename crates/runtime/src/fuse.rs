//! DAG rewriting: operation fusion.
//!
//! Runs once per flush as the last step of the optimization pipeline
//! ([`crate::passes::run_pipeline`]), before scheduling. Each rule
//! collapses a producer/consumer pair of nodes into a single node whose
//! expression dispatches one composite kernel, so the flush issues
//! strictly fewer JIT dispatches than blocking mode would have.
//!
//! A producer `P` may be absorbed only when its result is genuinely
//! invisible afterwards:
//!
//! * `P` is *plain* — no mask, no accumulator, no index region, and its
//!   right-hand side is an expression (its target's prior contents are
//!   fully overwritten, so skipping the materialization loses nothing);
//! * `P.out` has no owner besides `P`'s own descriptor and the consumer
//!   expression slots being rewritten — checked against the frozen
//!   external-reference counts plus a fresh structural scan (see
//!   [`crate::dataflow`]): a user-held container handle, any other
//!   node's operand, or an alias-set entry blocks fusion.
//!
//! | rule | producer            | consumer                 | rewrite                  |
//! |------|---------------------|--------------------------|--------------------------|
//! | 1    | eWise add/mult      | eWise add/mult           | `FusedEwiseChain`        |
//! | 2    | `mxv` / `vxm`       | `apply`                  | `FusedMxvApply`          |
//! | 3    | `mxv` / `vxm`       | plain `Ref` assignment   | masked/accum'd SpMV      |
//! | 4    | eWise add/mult      | `reduce`                 | [`crate::dag::reduce_vector`] |

use std::sync::Arc;

use pygb::expr::{VectorExpr, VectorExprKind};
use pygb::nb::{VecOpDesc, VecRhs};

use crate::analyze::{self, FuseCheck, NodeId};
use crate::dag::{vptr, Dag, Node};
use crate::passes::PassCtx;

/// One pass over consumers in enqueue order, attempting rules 1–3.
/// Returns the number of producers absorbed; each absorption records
/// `(producer, "fused into n<C> (rule …)")` provenance into `ctx`.
pub(crate) fn fuse_pass(dag: &mut Dag, ctx: &mut PassCtx) -> usize {
    let mut fused = 0;
    for ci in 0..dag.nodes.len() {
        let candidate = matches!(
            &dag.nodes[ci],
            Some(Node::Vec(d)) if d.region.is_none() && matches!(&d.rhs, VecRhs::Expr(_))
        );
        if !candidate {
            continue;
        }
        let Some(Node::Vec(mut c)) = dag.nodes[ci].take() else {
            unreachable!("checked above");
        };
        if let Some((pid, rule)) = try_fuse_into(dag, ctx, &mut c) {
            fused += 1;
            ctx.provenance
                .push((pid, format!("fused into {} ({rule})", dag.ids[ci])));
        }
        dag.nodes[ci] = Some(Node::Vec(c));
    }
    fused
}

/// Attempt to absorb one producer into consumer `c` (already detached
/// from the DAG). On success the producer node is removed from the DAG
/// and its id plus the rule label are returned for provenance.
fn try_fuse_into(
    dag: &mut Dag,
    ctx: &PassCtx,
    c: &mut VecOpDesc,
) -> Option<(NodeId, &'static str)> {
    let VecRhs::Expr(ce) = &c.rhs else {
        return None;
    };
    match &ce.kind {
        // Rule 1: eWise producer feeding an eWise consumer.
        VectorExprKind::EWiseAdd {
            u,
            v,
            op: Some(outer),
        }
        | VectorExprKind::EWiseMult {
            u,
            v,
            op: Some(outer),
        } => {
            let outer_add = matches!(&ce.kind, VectorExprKind::EWiseAdd { .. });
            let outer = *outer;
            // Prefer the left slot's producer; fall back to the right.
            for (slot_u, inner_left) in [(true, true), (false, false)] {
                let cand = if slot_u { u } else { v };
                let refs = (vptr(u) == vptr(cand)) as usize + (vptr(v) == vptr(cand)) as usize;
                let Some((pid, p)) =
                    take_plain_producer(dag, ctx, c, cand, refs, &|kind: &VectorExprKind| {
                        matches!(
                            kind,
                            VectorExprKind::EWiseAdd { op: Some(_), .. }
                                | VectorExprKind::EWiseMult { op: Some(_), .. }
                        )
                    })
                else {
                    continue;
                };
                let (pu, pv, inner, inner_add) = match p {
                    VectorExprKind::EWiseAdd { u, v, op: Some(op) } => (u, v, op, true),
                    VectorExprKind::EWiseMult { u, v, op: Some(op) } => (u, v, op, false),
                    _ => unreachable!("filtered above"),
                };
                let w = if refs == 2 {
                    // Square form: the inner result fed both slots.
                    None
                } else if inner_left {
                    Some(Arc::clone(v))
                } else {
                    Some(Arc::clone(u))
                };
                c.rhs = VecRhs::Expr(VectorExpr {
                    kind: VectorExprKind::FusedEwiseChain {
                        u: pu,
                        v: pv,
                        w,
                        inner,
                        outer,
                        inner_add,
                        outer_add,
                        inner_left,
                    },
                    build_ns: 0,
                });
                return Some((pid, "rule 1: eWise chain"));
            }
            None
        }
        // Rule 2: `apply(mxv(...))` / `apply(vxm(...))`.
        VectorExprKind::Apply { u, op: Some(op) } => {
            let op = *op;
            let (pid, p) = take_plain_producer(dag, ctx, c, u, 1, &|kind: &VectorExprKind| {
                matches!(
                    kind,
                    VectorExprKind::MxV { .. } | VectorExprKind::VxM { .. }
                )
            })?;
            let (a, pu, semiring, vxm) = match p {
                VectorExprKind::MxV { a, u, semiring } => (a, u, semiring, false),
                VectorExprKind::VxM { u, a, semiring } => (a, u, semiring, true),
                _ => unreachable!("filtered above"),
            };
            c.rhs = VecRhs::Expr(VectorExpr {
                kind: VectorExprKind::FusedMxvApply {
                    a,
                    u: pu,
                    semiring,
                    unary: Some(op),
                    vxm,
                },
                build_ns: 0,
            });
            Some((pid, "rule 2: mxv/vxm + apply"))
        }
        // Rule 3: assigning a materialized product under the consumer's
        // mask/accumulator collapses into one masked SpMV. The rewritten
        // node carries the consumer's mask into the single dispatch, so
        // the substrate's kernel selection sees a structural mask probe
        // and picks a masked pull/push kernel — fusion upgrades the
        // unmasked product to a mask-confined one for free.
        VectorExprKind::Ref { u } => {
            let (pid, p) = take_plain_producer(dag, ctx, c, u, 1, &|kind: &VectorExprKind| {
                matches!(
                    kind,
                    VectorExprKind::MxV { .. } | VectorExprKind::VxM { .. }
                )
            })?;
            c.rhs = VecRhs::Expr(VectorExpr {
                kind: p,
                build_ns: 0,
            });
            Some((pid, "rule 3: ref collapse"))
        }
        _ => None,
    }
}

/// Look up the pending producer of placeholder `out` and consult the
/// aliasing analysis ([`crate::analyze::check_producer`]). When the
/// producer is a plain vector node whose expression satisfies `want`,
/// whose result is observed only by its own descriptor plus
/// `consumer_refs` slots of the (detached) consumer `c`, and the
/// rewrite is proven alias-safe, remove it from the DAG and return its
/// expression kind. A producer refused by the aliasing analysis is
/// counted and logged, and stays in the DAG.
fn take_plain_producer(
    dag: &mut Dag,
    ctx: &PassCtx,
    c: &VecOpDesc,
    out: &Arc<pygb::store::VectorStore>,
    consumer_refs: usize,
    want: &dyn Fn(&VectorExprKind) -> bool,
) -> Option<(NodeId, VectorExprKind)> {
    let idx = match analyze::check_producer(dag, &ctx.ext, c, out, consumer_refs, None, want) {
        FuseCheck::Fusible(idx) => idx,
        FuseCheck::Refused(idx, reason) => {
            if !ctx.simulate {
                analyze::record_refusal(format!("producer node {}: {reason}", dag.ids[idx]));
            }
            return None;
        }
        FuseCheck::No => return None,
    };
    dag.pending.remove(&vptr(out));
    match dag.nodes[idx].take() {
        Some(Node::Vec(d)) => match d.rhs {
            VecRhs::Expr(e) => Some((dag.ids[idx], e.kind)),
            VecRhs::Scalar(_) => unreachable!("checked by the analysis"),
        },
        _ => unreachable!("checked by the analysis"),
    }
}
