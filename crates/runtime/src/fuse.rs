//! DAG rewriting: operation fusion and dead-code elimination.
//!
//! Runs once at the start of every flush, before scheduling. Each rule
//! collapses a producer/consumer pair of nodes into a single node whose
//! expression dispatches one composite kernel, so the flush issues
//! strictly fewer JIT dispatches than blocking mode would have.
//!
//! A producer `P` may be absorbed only when its result is genuinely
//! invisible afterwards:
//!
//! * `P` is *plain* — no mask, no accumulator, no index region, and its
//!   right-hand side is an expression (its target's prior contents are
//!   fully overwritten, so skipping the materialization loses nothing);
//! * `P.out` has no owner besides `P`'s own descriptor and the consumer
//!   expression slots being rewritten (checked by `Arc::strong_count`:
//!   a user-held container handle or any other node's operand keeps the
//!   count too high and blocks fusion).
//!
//! | rule | producer            | consumer                 | rewrite                  |
//! |------|---------------------|--------------------------|--------------------------|
//! | 1    | eWise add/mult      | eWise add/mult           | `FusedEwiseChain`        |
//! | 2    | `mxv` / `vxm`       | `apply`                  | `FusedMxvApply`          |
//! | 3    | `mxv` / `vxm`       | plain `Ref` assignment   | masked/accum'd SpMV      |
//! | 4    | eWise add/mult      | `reduce`                 | [`crate::dag::reduce_vector`] |
//! | DCE  | any                 | none, container dropped  | node removed             |

use std::sync::Arc;

use pygb::expr::{VectorExpr, VectorExprKind};
use pygb::nb::{VecOpDesc, VecRhs};

use crate::analyze::{self, FuseCheck};
use crate::dag::{mptr, vptr, Dag, Node};

/// Rewrite the DAG in place; returns `(fused, elided)` node counts for
/// the dispatch-statistics counters. Refused fusions are recorded by
/// the aliasing analysis as they are encountered (see
/// [`crate::analyze::last_refusals`]).
pub(crate) fn optimize(dag: &mut Dag) -> (usize, usize) {
    analyze::clear_refusals();
    let fused = fuse_pass(dag);
    let elided = dce_pass(dag);
    (fused, elided)
}

/// One pass over consumers in enqueue order, attempting rules 1–3.
fn fuse_pass(dag: &mut Dag) -> usize {
    let mut fused = 0;
    for ci in 0..dag.nodes.len() {
        let candidate = matches!(
            &dag.nodes[ci],
            Some(Node::Vec(d)) if d.region.is_none() && matches!(&d.rhs, VecRhs::Expr(_))
        );
        if !candidate {
            continue;
        }
        let Some(Node::Vec(mut c)) = dag.nodes[ci].take() else {
            unreachable!("checked above");
        };
        if try_fuse_into(dag, &mut c) {
            fused += 1;
        }
        dag.nodes[ci] = Some(Node::Vec(c));
    }
    fused
}

/// Attempt to absorb one producer into consumer `c` (already detached
/// from the DAG). Returns true when a rewrite happened; the producer
/// node is removed from the DAG.
fn try_fuse_into(dag: &mut Dag, c: &mut VecOpDesc) -> bool {
    let VecRhs::Expr(ce) = &c.rhs else {
        return false;
    };
    match &ce.kind {
        // Rule 1: eWise producer feeding an eWise consumer.
        VectorExprKind::EWiseAdd {
            u,
            v,
            op: Some(outer),
        }
        | VectorExprKind::EWiseMult {
            u,
            v,
            op: Some(outer),
        } => {
            let outer_add = matches!(&ce.kind, VectorExprKind::EWiseAdd { .. });
            let outer = *outer;
            // Prefer the left slot's producer; fall back to the right.
            for (slot_u, inner_left) in [(true, true), (false, false)] {
                let cand = if slot_u { u } else { v };
                let refs = (vptr(u) == vptr(cand)) as usize + (vptr(v) == vptr(cand)) as usize;
                let Some(p) = take_plain_producer(dag, c, cand, refs, &|kind: &VectorExprKind| {
                    matches!(
                        kind,
                        VectorExprKind::EWiseAdd { op: Some(_), .. }
                            | VectorExprKind::EWiseMult { op: Some(_), .. }
                    )
                }) else {
                    continue;
                };
                let (pu, pv, inner, inner_add) = match p {
                    VectorExprKind::EWiseAdd { u, v, op: Some(op) } => (u, v, op, true),
                    VectorExprKind::EWiseMult { u, v, op: Some(op) } => (u, v, op, false),
                    _ => unreachable!("filtered above"),
                };
                let w = if refs == 2 {
                    // Square form: the inner result fed both slots.
                    None
                } else if inner_left {
                    Some(Arc::clone(v))
                } else {
                    Some(Arc::clone(u))
                };
                c.rhs = VecRhs::Expr(VectorExpr {
                    kind: VectorExprKind::FusedEwiseChain {
                        u: pu,
                        v: pv,
                        w,
                        inner,
                        outer,
                        inner_add,
                        outer_add,
                        inner_left,
                    },
                    build_ns: 0,
                });
                return true;
            }
            false
        }
        // Rule 2: `apply(mxv(...))` / `apply(vxm(...))`.
        VectorExprKind::Apply { u, op: Some(op) } => {
            let op = *op;
            let Some(p) = take_plain_producer(dag, c, u, 1, &|kind: &VectorExprKind| {
                matches!(
                    kind,
                    VectorExprKind::MxV { .. } | VectorExprKind::VxM { .. }
                )
            }) else {
                return false;
            };
            let (a, pu, semiring, vxm) = match p {
                VectorExprKind::MxV { a, u, semiring } => (a, u, semiring, false),
                VectorExprKind::VxM { u, a, semiring } => (a, u, semiring, true),
                _ => unreachable!("filtered above"),
            };
            c.rhs = VecRhs::Expr(VectorExpr {
                kind: VectorExprKind::FusedMxvApply {
                    a,
                    u: pu,
                    semiring,
                    unary: Some(op),
                    vxm,
                },
                build_ns: 0,
            });
            true
        }
        // Rule 3: assigning a materialized product under the consumer's
        // mask/accumulator collapses into one masked SpMV. The rewritten
        // node carries the consumer's mask into the single dispatch, so
        // the substrate's kernel selection sees a structural mask probe
        // and picks a masked pull/push kernel — fusion upgrades the
        // unmasked product to a mask-confined one for free.
        VectorExprKind::Ref { u } => {
            let Some(p) = take_plain_producer(dag, c, u, 1, &|kind: &VectorExprKind| {
                matches!(
                    kind,
                    VectorExprKind::MxV { .. } | VectorExprKind::VxM { .. }
                )
            }) else {
                return false;
            };
            c.rhs = VecRhs::Expr(VectorExpr {
                kind: p,
                build_ns: 0,
            });
            true
        }
        _ => false,
    }
}

/// Look up the pending producer of placeholder `out` and consult the
/// aliasing analysis ([`crate::analyze::check_producer`]). When the
/// producer is a plain vector node whose expression satisfies `want`,
/// whose result is observed only by its own descriptor plus
/// `consumer_refs` slots of the (detached) consumer `c`, and the
/// rewrite is proven alias-safe, remove it from the DAG and return its
/// expression kind. A producer refused by the aliasing analysis is
/// counted and logged, and stays in the DAG.
fn take_plain_producer(
    dag: &mut Dag,
    c: &VecOpDesc,
    out: &Arc<pygb::store::VectorStore>,
    consumer_refs: usize,
    want: &dyn Fn(&VectorExprKind) -> bool,
) -> Option<VectorExprKind> {
    let idx = match analyze::check_producer(dag, c, out, consumer_refs, want) {
        FuseCheck::Fusible(idx) => idx,
        FuseCheck::Refused(idx, reason) => {
            analyze::record_refusal(format!("producer node {}: {reason}", dag.ids[idx]));
            return None;
        }
        FuseCheck::No => return None,
    };
    dag.pending.remove(&vptr(out));
    match dag.nodes[idx].take() {
        Some(Node::Vec(d)) => match d.rhs {
            VecRhs::Expr(e) => Some(e.kind),
            VecRhs::Scalar(_) => unreachable!("checked by the analysis"),
        },
        _ => unreachable!("checked by the analysis"),
    }
}

/// Remove nodes whose output nobody can ever observe: the only owner of
/// the placeholder is the node's own descriptor (every container handle
/// was dropped and no other node reads it). Cascades to fixpoint — an
/// elided node drops its operand handles, which may orphan upstream
/// producers.
fn dce_pass(dag: &mut Dag) -> usize {
    let mut elided = 0;
    loop {
        let mut any = false;
        for i in 0..dag.nodes.len() {
            let dead = match &dag.nodes[i] {
                Some(Node::Vec(d)) => Arc::strong_count(&d.out) == 1,
                Some(Node::Mat(d)) => Arc::strong_count(&d.out) == 1,
                None => false,
            };
            if !dead {
                continue;
            }
            match dag.nodes[i].take() {
                Some(Node::Vec(d)) => {
                    dag.pending.remove(&vptr(&d.out));
                }
                Some(Node::Mat(d)) => {
                    dag.pending.remove(&mptr(&d.out));
                }
                None => {}
            }
            elided += 1;
            any = true;
        }
        if !any {
            return elided;
        }
    }
}
